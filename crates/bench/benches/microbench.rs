//! Hot-path microbenchmarks: the structures TUS adds (WOQ, WCB,
//! authorization unit), the SB forwarding CAM, the TSO enumerator, and
//! raw simulation throughput per policy.

use std::hint::black_box;

use tus::{AuthorizationUnit, WcbSet, Woq};
use tus_bench::Bench;
use tus_cpu::StoreBuffer;
use tus_mem::ByteMask;
use tus_sim::{Addr, Cycle, LineAddr, PolicyKind};
use tus_tso::{all_litmus_tests, tso_outcomes};

fn main() {
    let mut b = Bench::from_args();

    b.bench("woq/push_find_pop", || {
        let mut w = Woq::new(64);
        for i in 0..64u64 {
            w.push(LineAddr::new(i), (i % 64) as usize, (i % 12) as usize, ByteMask::FULL);
        }
        for i in 0..64u64 {
            black_box(w.find((i % 64) as usize, (i % 12) as usize));
            w.mark_ready((i % 64) as usize, (i % 12) as usize);
        }
        while !w.is_empty() && w.head_group_ready() {
            black_box(w.pop_head_group());
        }
    });

    b.bench("woq/merge_to_tail", || {
        let mut w = Woq::new(64);
        for i in 0..32u64 {
            w.push(LineAddr::new(i), i as usize, 0, ByteMask::FULL);
        }
        black_box(w.merge_to_tail(0));
    });

    b.bench("wcb/coalesce_64_stores", || {
        let mut w = WcbSet::new(2);
        for i in 0..64u64 {
            let _ = w.write(Addr::new(0x1000 + (i % 8) * 8), 8, i, Cycle::new(i));
        }
        black_box(w.occupied())
    });

    {
        let unit = AuthorizationUnit::new(16);
        let mut w = Woq::new(64);
        for i in 0..64u64 {
            w.push(LineAddr::new(i * 7), i as usize, 0, ByteMask::FULL);
            if i % 2 == 0 {
                w.mark_ready(i as usize, 0);
            }
        }
        b.bench("auth_unit/decide_64_entries", || black_box(unit.decide(&w, 63)));
    }

    {
        let mut sb = StoreBuffer::new(114, 5);
        for i in 0..114u64 {
            sb.push(Addr::new(i * 8), 8, i, i).expect("room");
            sb.mark_executed(i);
        }
        b.bench("sb/forward_114_entries", || {
            black_box(sb.forward(Addr::new(56 * 8), 8, 200))
        });
    }

    for t in all_litmus_tests().into_iter().take(4) {
        b.bench(&format!("tso_enumeration/{}", t.name), || {
            black_box(tso_outcomes(&t.program).len())
        });
    }

    for policy in PolicyKind::ALL {
        b.bench(&format!("sim_throughput_10k_insts/{}", policy.label()), || {
            black_box(tus_bench::short_run("523.xalancbmk-like", policy, 114, 10_000).cycles)
        });
    }

    // Lockstep vs idle-skipping kernel on a latency-bound workload (long
    // DRAM waits — the skip kernel's best case) and a compute-bound one
    // (its worst case: every cycle has due work, the scan is pure
    // overhead).
    for workload in ["505.mcf-like", "523.xalancbmk-like"] {
        for kernel in tus_sim::KernelKind::ALL {
            b.bench(&format!("kernel/{workload}/{kernel}"), || {
                black_box(
                    tus_bench::short_run_kernel(workload, PolicyKind::Baseline, 114, 10_000, kernel)
                        .cycles,
                )
            });
        }
    }
}
