//! Memory hierarchy for the TUS reproduction.
//!
//! This crate models the full data-side memory system of the simulated
//! machine (Table I of the paper):
//!
//! * [`mod@line`] — cache-line data and byte masks.
//! * [`mesi`] — MESI coherence states.
//! * [`cache`] — generic set-associative arrays with LRU and the
//!   victim-filtering the TUS mechanism needs (unauthorized lines are never
//!   eviction candidates).
//! * [`msgs`] / [`net`] — coherence messages and the latency-modeling
//!   interconnect with per-channel FIFO ordering.
//! * [`backend`] — the pluggable coherence-backend contract
//!   ([`backend::CoherenceBackend`]) with two home-node implementations:
//!   the paper's full-map MESI directory ([`backend::mesi`], an atomic
//!   per-line transaction model backed by the shared L3 and DRAM) and a
//!   Tardis-style logical-timestamp backend ([`backend::tardis`], leases
//!   instead of invalidations).
//! * [`mainmem`] — functional backing store.
//! * [`prefetch`] — the baseline stream (stride) prefetcher and the SPB
//!   page-burst store prefetcher.
//! * [`percore`] — the per-core private cache controller (L1D + private
//!   L2, inclusive), including the L1D *not-visible*/*ready* bit
//!   extensions the TUS mechanism relies on.
//! * [`system`] — [`MemorySystem`], wiring controllers, directory,
//!   network and DRAM together, ticked once per cycle.
//!
//! The TUS decision logic itself (WOQ, atomic groups, lex order) lives in
//! the `tus` crate; this crate exposes the mechanisms (unauthorized writes,
//! combine-on-arrival, relinquish, external-conflict events) it drives.

pub mod backend;
pub mod cache;
pub mod line;
pub mod mainmem;
pub mod mesi;
pub mod msgs;
pub mod net;
pub mod percore;
pub mod prefetch;
pub mod system;

pub use backend::{CoherenceBackend, DirBackend, Directory, Replay, TardisDirectory};
pub use cache::{CacheArray, CacheLineState, L3Cache};
pub use line::{ByteMask, LineData};
pub use mainmem::MainMemory;
pub use mesi::Mesi;
pub use msgs::{CacheEvent, ConflictKind, FwdKind, Lease, Msg, ReqKind};
pub use net::Network;
pub use percore::{PrivateCache, ProbeResult, StoreAttemptClass, StoreWriteOutcome, UnauthAllocError};
pub use system::{CoreMemSnapshot, MemDeadlockSnapshot, MemorySystem};
