//! The unified store buffer (SB).
//!
//! A FIFO of stores from dispatch until the drain policy writes them to
//! the memory system. It is modeled as x86 processors build it (a unified
//! buffer for non-committed and committed stores, searched associatively
//! by every load for store-to-load forwarding). The forwarding latency
//! depends on the SB size (5 cycles at 114 entries, 4 at 64, 3 at ≤32 —
//! Table I / Fog), which is the micro-architectural payoff of TUS running
//! well with a small SB.

use std::collections::VecDeque;

use tus_sim::Addr;

/// One store held in the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEntry {
    /// Store address.
    pub addr: Addr,
    /// Store size in bytes.
    pub size: u8,
    /// Store data.
    pub value: u64,
    /// The producing instruction has executed (address + data valid).
    pub executed: bool,
    /// The store instruction has committed (may update memory).
    pub committed: bool,
    /// Global instruction sequence number (program order).
    pub seq: u64,
}

impl SbEntry {
    fn overlaps(&self, addr: Addr, size: usize) -> bool {
        let (a0, a1) = (self.addr.raw(), self.addr.raw() + self.size as u64);
        let (b0, b1) = (addr.raw(), addr.raw() + size as u64);
        a0 < b1 && b0 < a1
    }

    fn covers(&self, addr: Addr, size: usize) -> bool {
        self.addr.raw() <= addr.raw()
            && addr.raw() + size as u64 <= self.addr.raw() + self.size as u64
    }
}

/// Result of a store-to-load forwarding search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older store overlaps the load.
    Miss,
    /// The youngest overlapping older store fully covers the load: the
    /// value can be forwarded.
    Hit {
        /// Forwarded value (little-endian slice of the store data).
        value: u64,
    },
    /// The youngest overlapping older store has not produced its data yet;
    /// the load must retry.
    NotReady,
    /// The load overlaps a store that does not fully cover it; the load
    /// must wait until that store drains.
    Partial,
}

/// The unified store buffer.
///
/// # Example
///
/// ```
/// use tus_cpu::{ForwardResult, StoreBuffer};
/// use tus_sim::Addr;
///
/// let mut sb = StoreBuffer::new(4, 3);
/// sb.push(Addr::new(0x100), 8, 7, 0).expect("room");
/// sb.mark_executed(0);
/// assert_eq!(sb.forward(Addr::new(0x100), 8, 1), ForwardResult::Hit { value: 7 });
/// assert_eq!(sb.forward(Addr::new(0x100), 8, 0), ForwardResult::Miss); // older load
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
    cap: usize,
    fwd_lat: u64,
    searches: u64,
    peak: usize,
    occupancy_sum: u64,
    occupancy_samples: u64,
    /// Per-line-hash occupancy counts: a zero bucket proves no buffered
    /// store touches any line hashing there, so the associative walks
    /// (`forward`, `older_store_to_line`) can answer Miss without
    /// scanning. Counts, not bits, so removal stays exact.
    line_filter: [u16; LINE_FILTER_BUCKETS],
    /// Committed entries currently buffered (`has_committed` in O(1);
    /// fences and the drain loop poll it every cycle).
    committed_count: usize,
}

/// Bucket count for [`StoreBuffer::line_filter`] (power of two).
const LINE_FILTER_BUCKETS: usize = 128;

/// Filter bucket of a line address.
#[inline]
fn line_bucket(line: tus_sim::LineAddr) -> usize {
    let l = line.raw();
    ((l ^ (l >> 7)) as usize) & (LINE_FILTER_BUCKETS - 1)
}

impl StoreBuffer {
    /// Creates a buffer with `cap` entries and the given forwarding
    /// latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize, fwd_lat: u64) -> Self {
        assert!(cap > 0, "SB must have at least one entry");
        StoreBuffer {
            entries: VecDeque::with_capacity(cap),
            cap,
            fwd_lat,
            searches: 0,
            peak: 0,
            occupancy_sum: 0,
            occupancy_samples: 0,
            line_filter: [0; LINE_FILTER_BUCKETS],
            committed_count: 0,
        }
    }

    /// Applies `delta` to the filter buckets of every line the byte range
    /// `[addr, addr+size)` touches (a store may straddle a line boundary).
    #[inline]
    fn filter_adjust(&mut self, addr: Addr, size: u8, delta: i32) {
        let first = line_bucket(addr.line());
        let b = &mut self.line_filter[first];
        *b = (*b as i32 + delta) as u16;
        let last = line_bucket(Addr::new(addr.raw() + size as u64 - 1).line());
        if last != first {
            let b = &mut self.line_filter[last];
            *b = (*b as i32 + delta) as u16;
        }
    }

    /// Whether any buffered store could touch a line in `[addr, addr+size)`.
    #[inline]
    fn filter_may_overlap(&self, addr: Addr, size: usize) -> bool {
        if self.line_filter[line_bucket(addr.line())] != 0 {
            return true;
        }
        let last = Addr::new(addr.raw() + size.max(1) as u64 - 1).line();
        self.line_filter[line_bucket(last)] != 0
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Store-to-load forwarding latency in cycles.
    pub fn forward_latency(&self) -> u64 {
        self.fwd_lat
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no stores.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a dispatch would be refused.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// Appends a store at dispatch.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` when the buffer is full (dispatch must stall —
    /// the SB-induced stall the paper measures).
    pub fn push(&mut self, addr: Addr, size: u8, value: u64, seq: u64) -> Result<(), ()> {
        if self.is_full() {
            return Err(());
        }
        self.entries.push_back(SbEntry {
            addr,
            size,
            value,
            executed: false,
            committed: false,
            seq,
        });
        self.filter_adjust(addr, size, 1);
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Index of the entry with sequence number `seq` (entries are pushed
    /// in program order, so they are sorted by `seq`).
    #[inline]
    fn index_of(&self, seq: u64) -> Option<usize> {
        let i = self.entries.partition_point(|e| e.seq < seq);
        (self.entries.get(i).map(|e| e.seq) == Some(seq)).then_some(i)
    }

    /// Marks the store with sequence number `seq` as executed.
    pub fn mark_executed(&mut self, seq: u64) {
        if let Some(i) = self.index_of(seq) {
            self.entries[i].executed = true;
        }
    }

    /// Marks the store with sequence number `seq` as committed.
    pub fn mark_committed(&mut self, seq: u64) {
        if let Some(i) = self.index_of(seq) {
            let e = &mut self.entries[i];
            debug_assert!(e.executed, "commit of a non-executed store");
            if !e.committed {
                e.committed = true;
                self.committed_count += 1;
            }
        }
    }

    /// The oldest store, if any.
    pub fn head(&self) -> Option<&SbEntry> {
        self.entries.front()
    }

    /// Pops the oldest store (the drain policy has accepted its write).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or the head is not committed.
    pub fn pop_head(&mut self) -> SbEntry {
        let e = self.entries.pop_front().expect("pop from empty SB");
        assert!(e.committed, "draining a non-committed store");
        self.filter_adjust(e.addr, e.size, -1);
        self.committed_count -= 1;
        e
    }

    /// Associative search for store-to-load forwarding: finds the youngest
    /// store older than `load_seq` overlapping `[addr, addr+size)`.
    pub fn forward(&mut self, addr: Addr, size: usize, load_seq: u64) -> ForwardResult {
        self.searches += 1;
        if !self.filter_may_overlap(addr, size) {
            return ForwardResult::Miss;
        }
        for e in self.entries.iter().rev() {
            if e.seq >= load_seq || !e.overlaps(addr, size) {
                continue;
            }
            if !e.executed {
                return ForwardResult::NotReady;
            }
            if e.covers(addr, size) {
                let shift = (addr.raw() - e.addr.raw()) * 8;
                let v = e.value >> shift;
                let mask = if size >= 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
                return ForwardResult::Hit { value: v & mask };
            }
            return ForwardResult::Partial;
        }
        ForwardResult::Miss
    }

    /// Whether any committed store is still buffered (fences wait for
    /// these — and only these — to drain; younger, uncommitted stores sit
    /// behind the fence in program order).
    pub fn has_committed(&self) -> bool {
        self.committed_count > 0
    }

    /// Whether any store older than `seq` to the same line is still
    /// buffered (used by drain policies that preserve per-line order).
    pub fn older_store_to_line(&self, line: tus_sim::LineAddr, seq: u64) -> bool {
        self.line_filter[line_bucket(line)] != 0
            && self
                .entries
                .iter()
                .any(|e| e.seq < seq && e.addr.line() == line)
    }

    /// Samples occupancy (call once per cycle) for utilization statistics.
    pub fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.entries.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Samples occupancy for `n` cycles at once (the idle-skipping kernel
    /// charging a stretch of cycles during which the SB did not change).
    pub fn sample_occupancy_n(&mut self, n: u64) {
        self.occupancy_sum += n * self.entries.len() as u64;
        self.occupancy_samples += n;
    }

    /// Number of associative searches performed (the SB energy driver).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Peak occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Mean occupancy over the sampled cycles.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Iterates entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &SbEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> StoreBuffer {
        StoreBuffer::new(4, 5)
    }

    #[test]
    fn fills_and_refuses() {
        let mut b = sb();
        for i in 0..4 {
            b.push(Addr::new(i * 8), 8, i, i).expect("room");
        }
        assert!(b.is_full());
        assert!(b.push(Addr::new(64), 8, 9, 9).is_err());
    }

    #[test]
    fn pop_requires_commit() {
        let mut b = sb();
        b.push(Addr::new(0), 8, 1, 0).expect("room");
        b.mark_executed(0);
        b.mark_committed(0);
        let e = b.pop_head();
        assert_eq!(e.value, 1);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-committed")]
    fn pop_uncommitted_panics() {
        let mut b = sb();
        b.push(Addr::new(0), 8, 1, 0).expect("room");
        b.pop_head();
    }

    #[test]
    fn forwards_youngest_older_store() {
        let mut b = sb();
        b.push(Addr::new(0x10), 8, 0xAAAA, 0).expect("room");
        b.push(Addr::new(0x10), 8, 0xBBBB, 2).expect("room");
        b.mark_executed(0);
        b.mark_executed(2);
        // Load at seq 5 sees the youngest (seq 2).
        assert_eq!(b.forward(Addr::new(0x10), 8, 5), ForwardResult::Hit { value: 0xBBBB });
        // Load at seq 1 only sees seq 0.
        assert_eq!(b.forward(Addr::new(0x10), 8, 1), ForwardResult::Hit { value: 0xAAAA });
        // Load at seq 0 sees nothing.
        assert_eq!(b.forward(Addr::new(0x10), 8, 0), ForwardResult::Miss);
    }

    #[test]
    fn forwards_subword_with_shift() {
        let mut b = sb();
        b.push(Addr::new(0x20), 8, 0x8877_6655_4433_2211, 0).expect("room");
        b.mark_executed(0);
        // Little-endian: byte 0x22 holds 0x33, byte 0x23 holds 0x44.
        assert_eq!(
            b.forward(Addr::new(0x22), 2, 1),
            ForwardResult::Hit { value: 0x4433 }
        );
        assert_eq!(
            b.forward(Addr::new(0x27), 1, 1),
            ForwardResult::Hit { value: 0x88 }
        );
    }

    #[test]
    fn partial_and_not_ready() {
        let mut b = sb();
        b.push(Addr::new(0x10), 4, 0xAA, 0).expect("room");
        // Not yet executed.
        assert_eq!(b.forward(Addr::new(0x10), 4, 1), ForwardResult::NotReady);
        b.mark_executed(0);
        // 8-byte load only half-covered by the 4-byte store.
        assert_eq!(b.forward(Addr::new(0x10), 8, 1), ForwardResult::Partial);
    }

    #[test]
    fn miss_on_disjoint_addresses() {
        let mut b = sb();
        b.push(Addr::new(0x10), 8, 1, 0).expect("room");
        b.mark_executed(0);
        assert_eq!(b.forward(Addr::new(0x18), 8, 1), ForwardResult::Miss);
        assert_eq!(b.forward(Addr::new(0x08), 8, 1), ForwardResult::Miss);
        assert_eq!(b.searches(), 2);
    }

    #[test]
    fn older_store_to_line_detects() {
        let mut b = sb();
        b.push(Addr::new(0x40), 8, 1, 3).expect("room");
        assert!(b.older_store_to_line(Addr::new(0x44).line(), 10));
        assert!(!b.older_store_to_line(Addr::new(0x44).line(), 3));
        assert!(!b.older_store_to_line(Addr::new(0x80).line(), 10));
    }

    #[test]
    fn occupancy_stats() {
        let mut b = sb();
        b.sample_occupancy();
        b.push(Addr::new(0), 8, 1, 0).expect("room");
        b.push(Addr::new(8), 8, 1, 1).expect("room");
        b.sample_occupancy();
        assert_eq!(b.peak(), 2);
        assert!((b.mean_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bulk_occupancy_sample_matches_repeated() {
        let mut a = sb();
        let mut b = sb();
        for buf in [&mut a, &mut b] {
            buf.push(Addr::new(0), 8, 1, 0).expect("room");
            buf.push(Addr::new(8), 8, 1, 1).expect("room");
        }
        for _ in 0..7 {
            a.sample_occupancy();
        }
        b.sample_occupancy_n(7);
        assert!((a.mean_occupancy() - b.mean_occupancy()).abs() < 1e-12);
        assert_eq!(a.peak(), b.peak());
    }
}
