//! Cache-line data and byte masks.
//!
//! TUS tracks which bytes of an unauthorized line were written by local
//! stores with a byte mask ([`ByteMask`], one bit per byte of a 64-byte
//! line). When write permission and data arrive from the memory subsystem,
//! the incoming line is *combined* with the locally written bytes using the
//! mask ([`combine`]).

use std::fmt;

use tus_sim::LINE_BYTES;

/// The payload of one 64-byte cache line.
pub type LineData = [u8; LINE_BYTES];

/// Returns an all-zero line.
pub fn zero_line() -> Box<LineData> {
    Box::new([0u8; LINE_BYTES])
}

/// A per-byte written mask for one cache line (bit *i* set ⇔ byte *i*
/// holds locally written data).
///
/// The paper stores a 16-bit mask per WOQ entry by restricting coalescing
/// to 32/64-bit stores; we keep full byte granularity (the 16-bit encoding
/// is a compression of this) — see `tus::woq` for the encoded width used in
/// the storage-overhead accounting.
///
/// # Example
///
/// ```
/// use tus_mem::ByteMask;
/// let mut m = ByteMask::EMPTY;
/// m.set_range(8, 4);
/// assert!(m.covers(8, 4));
/// assert!(!m.covers(7, 2));
/// assert_eq!(m.count(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ByteMask(pub u64);

impl ByteMask {
    /// No bytes written.
    pub const EMPTY: ByteMask = ByteMask(0);

    /// All 64 bytes written.
    pub const FULL: ByteMask = ByteMask(u64::MAX);

    /// Mask with `len` bytes starting at `offset` set.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > 64`.
    pub fn range(offset: usize, len: usize) -> ByteMask {
        let mut m = ByteMask::EMPTY;
        m.set_range(offset, len);
        m
    }

    /// Marks `len` bytes starting at `offset` as written.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > 64`.
    pub fn set_range(&mut self, offset: usize, len: usize) {
        assert!(offset + len <= LINE_BYTES, "range escapes line");
        if len == 0 {
            return;
        }
        let bits = if len >= 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << offset
        };
        self.0 |= bits;
    }

    /// Whether all `len` bytes starting at `offset` are written.
    pub fn covers(&self, offset: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        if offset + len > LINE_BYTES {
            return false;
        }
        let bits = if len >= 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << offset
        };
        self.0 & bits == bits
    }

    /// Whether any of the `len` bytes starting at `offset` is written.
    pub fn overlaps(&self, offset: usize, len: usize) -> bool {
        if len == 0 || offset >= LINE_BYTES {
            return false;
        }
        let len = len.min(LINE_BYTES - offset);
        let bits = if len >= 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << offset
        };
        self.0 & bits != 0
    }

    /// Union with another mask.
    pub fn union(self, other: ByteMask) -> ByteMask {
        ByteMask(self.0 | other.0)
    }

    /// Whether no byte is written.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of written bytes.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Debug for ByteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteMask({:#018x})", self.0)
    }
}

impl fmt::Display for ByteMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Overlays the bytes selected by `mask` from `written` onto `base`.
///
/// This is the TUS *combine* operation performed when write permission and
/// data arrive at the L1D for an unauthorized line: memory supplies `base`,
/// the locally written bytes win.
pub fn combine(base: &mut LineData, written: &LineData, mask: ByteMask) {
    for i in 0..LINE_BYTES {
        if mask.0 & (1u64 << i) != 0 {
            base[i] = written[i];
        }
    }
}

/// Writes `size` bytes of `value` (little-endian) into `data` at `offset`.
///
/// # Panics
///
/// Panics if `offset + size > 64` or `size > 8`.
pub fn write_value(data: &mut LineData, offset: usize, size: usize, value: u64) {
    assert!(size <= 8, "stores are at most 8 bytes");
    assert!(offset + size <= LINE_BYTES, "store escapes line");
    let bytes = value.to_le_bytes();
    data[offset..offset + size].copy_from_slice(&bytes[..size]);
}

/// Reads `size` bytes (little-endian) from `data` at `offset`.
///
/// # Panics
///
/// Panics if `offset + size > 64` or `size > 8`.
pub fn read_value(data: &LineData, offset: usize, size: usize) -> u64 {
    assert!(size <= 8, "loads are at most 8 bytes");
    assert!(offset + size <= LINE_BYTES, "load escapes line");
    let mut bytes = [0u8; 8];
    bytes[..size].copy_from_slice(&data[offset..offset + size]);
    u64::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_range_edges() {
        assert_eq!(ByteMask::range(0, 64), ByteMask::FULL);
        assert_eq!(ByteMask::range(0, 0), ByteMask::EMPTY);
        assert_eq!(ByteMask::range(63, 1).0, 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "escapes line")]
    fn mask_range_overflow() {
        ByteMask::range(60, 8);
    }

    #[test]
    fn covers_and_overlaps() {
        let m = ByteMask::range(8, 8);
        assert!(m.covers(8, 8));
        assert!(m.covers(10, 2));
        assert!(!m.covers(7, 2));
        assert!(m.overlaps(15, 4));
        assert!(!m.overlaps(16, 4));
        assert!(!m.overlaps(0, 8));
        // Degenerate.
        assert!(m.covers(0, 0));
        assert!(!m.overlaps(0, 0));
    }

    #[test]
    fn union_counts() {
        let m = ByteMask::range(0, 4).union(ByteMask::range(2, 4));
        assert_eq!(m.count(), 6);
    }

    #[test]
    fn combine_overlays_written_bytes() {
        let mut base = [0xAAu8; LINE_BYTES];
        let mut written = [0u8; LINE_BYTES];
        written[4] = 0x11;
        written[5] = 0x22;
        combine(&mut base, &written, ByteMask::range(4, 2));
        assert_eq!(base[3], 0xAA);
        assert_eq!(base[4], 0x11);
        assert_eq!(base[5], 0x22);
        assert_eq!(base[6], 0xAA);
    }

    #[test]
    fn value_roundtrip() {
        let mut d = [0u8; LINE_BYTES];
        write_value(&mut d, 16, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(read_value(&d, 16, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(read_value(&d, 16, 4), 0x89ab_cdef);
        write_value(&mut d, 0, 1, 0xff);
        assert_eq!(read_value(&d, 0, 1), 0xff);
        assert_eq!(read_value(&d, 0, 2), 0xff);
    }

    #[test]
    #[should_panic(expected = "at most 8 bytes")]
    fn oversized_store_rejected() {
        let mut d = [0u8; LINE_BYTES];
        write_value(&mut d, 0, 9, 0);
    }
}
