//! Full-system assembly: cores + drain policies + memory hierarchy.
//!
//! [`System`] owns one [`tus_cpu::Core`] and one [`Policy`] per core plus
//! the shared [`tus_mem::MemorySystem`], and advances everything one cycle
//! at a time:
//!
//! 1. the memory system delivers due messages (producing cache events),
//! 2. cache events are routed — load completions to the core,
//!    TUS events (`PermissionReady`, `ExternalConflict`) to the policy,
//! 3. the policy drains committed stores from the SB,
//! 4. the core ticks (dispatch/issue/commit), reaching memory through a
//!    [`MemPort`] adapter.
//!
//! Run loops come with a progress watchdog: a deadlock in the coherence
//! protocol or the drain policy aborts the run with diagnostics instead
//! of hanging.

use std::sync::atomic::{AtomicBool, Ordering};

use tus_cpu::{Core, MemPort, TraceSource};
use tus_mem::{CacheEvent, MemDeadlockSnapshot, MemorySystem, Network, PrivateCache};
use tus_sim::calendar::Calendar;
use tus_sim::sched::earliest;
use tus_sim::trace::{Attribution, TraceEvent, TraceRecord, Tracer};
use tus_sim::{Addr, CoreId, Cycle, KernelKind, PolicyKind, Schedulable, SimConfig, SimRng, StatSet};

use crate::policy::{Policy, PolicyOccupancy};

/// Cycles without global progress after which a run aborts.
const WATCHDOG_CYCLES: u64 = 500_000;

/// Ring capacity used when tracing is armed through the process-wide
/// default ([`set_trace_default`]) rather than an explicit
/// [`System::enable_trace`] call.
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// Process-wide default-tracing switch. When set, every subsequently
/// constructed [`System`] arms tracing on itself (ring capacity
/// [`DEFAULT_TRACE_CAP`]). This exists for harness paths that build
/// systems deep inside other crates (the differential fuzzer constructs
/// its own `System`s), where threading a flag through every call site
/// would churn APIs for an observation-only feature.
static TRACE_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default-tracing switch (see [`TRACE_DEFAULT`]).
pub fn set_trace_default(on: bool) {
    TRACE_DEFAULT.store(on, Ordering::Relaxed);
}

/// Reads the process-wide default-tracing switch.
pub fn trace_default() -> bool {
    TRACE_DEFAULT.load(Ordering::Relaxed)
}

/// After a next-work scan finds due work, the **legacy skip kernel** ticks
/// this many further cycles without re-scanning (see `System::advance`).
/// Busy stretches pay the machine-wide scan once per `SCAN_BACKOFF + 1`
/// cycles instead of every cycle; entering an idle jump is deferred by at
/// most this many ticks, which the jump itself then absorbs. The default
/// event-driven kernel has no scan and therefore no backoff: per-unit
/// calendar keys replace the machine-wide `next_work` walk entirely.
const SCAN_BACKOFF: u32 = 7;

/// Why a run loop gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockKind {
    /// The caller-provided cycle budget elapsed before completion.
    BudgetExhausted {
        /// The budget that elapsed.
        budget: u64,
    },
    /// The progress watchdog fired: no instruction committed and no
    /// network message was sent for this many consecutive cycles.
    NoProgress {
        /// Length of the progress-free window.
        cycles: u64,
    },
    /// A caller-imposed *wall-clock* deadline elapsed before completion
    /// (the daemon's `wall_ms=` per-request budget). The simulator itself
    /// never reads the host clock — callers driving [`System::run_step`]
    /// detect expiry and assemble the report via [`System::abort_report`].
    WallClockExpired {
        /// The wall-clock budget that elapsed, in milliseconds.
        ms: u64,
    },
}

/// Per-core pipeline/store-path occupancy at the moment a run stalled.
#[derive(Debug, Clone, Default)]
pub struct CoreDeadlockState {
    /// Instructions committed so far.
    pub committed: u64,
    /// Whether the trace was already exhausted.
    pub finished: bool,
    /// Store-buffer entries still queued.
    pub sb_len: usize,
    /// Policy-side buffer occupancy (WOQ/WCB/TSOB).
    pub policy: PolicyOccupancy,
}

/// Structured diagnostics for a hung or over-budget run: per-core SB/WOQ/
/// WCB occupancy, pending lex-order retries and in-flight directory
/// traffic, plus a rendered state dump. Returned by the `try_run_*`
/// loops so one stuck case is a recorded counterexample rather than an
/// aborted process.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// What tripped.
    pub kind: DeadlockKind,
    /// Cycle at which the run gave up.
    pub cycle: u64,
    /// Per-core pipeline and policy state.
    pub cores: Vec<CoreDeadlockState>,
    /// Memory-side (controller/directory/network) state.
    pub mem: MemDeadlockSnapshot,
    /// Full human-readable state dump (`System::dump_state`).
    pub dump: String,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            DeadlockKind::BudgetExhausted { budget } => {
                writeln!(f, "cycle budget of {budget} exhausted at cycle {}", self.cycle)?
            }
            DeadlockKind::NoProgress { cycles } => {
                writeln!(f, "no progress for {cycles} cycles (at cycle {})", self.cycle)?
            }
            DeadlockKind::WallClockExpired { ms } => {
                writeln!(f, "wall-clock budget of {ms} ms exhausted at cycle {}", self.cycle)?
            }
        }
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "core{i}: committed={} finished={} sb={} woq={} (ready={} retry={}) wcb={} tsob={}",
                c.committed,
                c.finished,
                c.sb_len,
                c.policy.woq_len,
                c.policy.woq_ready,
                c.policy.woq_retries,
                c.policy.wcb_occupied,
                c.policy.tsob_len
            )?;
        }
        write!(f, "{}", self.mem)
    }
}

/// What a stepping run is driving towards (the `done` condition of the
/// former closure-based run loop, reified so it can be stored in a
/// [`RunCtl`] and carried across [`System::run_step`] calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunGoal {
    /// Run until [`System::finished`]: traces exhausted, stores drained,
    /// memory quiesced.
    Completion,
    /// Run until every core has committed at least this many instructions
    /// (or finished its trace) — the fixed-work measurement condition.
    Committed(u64),
}

impl RunGoal {
    fn met(self, sys: &System) -> bool {
        match self {
            RunGoal::Completion => sys.finished(),
            RunGoal::Committed(insts) => sys
                .cores
                .iter()
                .all(|c| c.committed() >= insts || c.finished()),
        }
    }
}

/// Per-run control state extracted from the run loop so a run can be
/// advanced one kernel step at a time: the progress watchdog, the legacy
/// skip kernel's scan backoff, and the run's goal and cycle budget.
/// Created by [`System::begin_run`], consumed by [`System::run_step`].
#[derive(Debug)]
pub struct RunCtl {
    watchdog: Watchdog,
    unscanned: u32,
    goal: RunGoal,
    max_cycles: u64,
}

/// What one [`System::run_step`] call did.
#[derive(Debug)]
pub enum StepOutcome {
    /// The machine advanced (a tick or an idle jump); the goal is not yet
    /// met. Step again.
    Running,
    /// The goal was met; statistics ledgers are materialized and the
    /// snapshot equals what the monolithic run loop would return.
    Done(StatSet),
    /// The run gave up (budget exhausted or the progress watchdog
    /// fired); the report equals the monolithic loop's.
    Dead(Box<DeadlockReport>),
}

/// The complete simulated machine.
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    policies: Vec<Policy>,
    mem: MemorySystem,
    now: Cycle,
    /// System-level tracer (bulk-idle spans from the idle-aware kernels).
    tracer: Tracer,
    /// Reused buffer for the per-core cache-event drain (bounded by the
    /// events one controller can raise in a cycle).
    event_scratch: Vec<CacheEvent>,
    /// Event-kernel calendar: unit 0 is the memory fabric, unit `1 + i`
    /// is core `i`'s slice. Re-seeded conservatively at every run-loop
    /// entry; unused by the lockstep and skip kernels.
    cal: Calendar,
    /// Event-kernel idle accounting: `charged[i]` is the first cycle core
    /// `i`'s stall/occupancy counters have *not* yet absorbed. The gap up
    /// to the current cycle is charged in bulk right before the core's
    /// next slice (or before the fabric mutates its controller).
    charged: Vec<Cycle>,
    /// Running total of instructions committed across all cores, kept in
    /// lockstep with the per-core counters by [`System::core_slice`] (the
    /// only place commits happen). Turns the per-cycle watchdog progress
    /// signature from an O(cores) sum into one load.
    committed_total: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("now", &self.now)
            .finish()
    }
}

struct Port<'a> {
    policy: &'a mut Policy,
    ctrl: &'a mut PrivateCache,
    net: &'a mut Network,
}

impl MemPort for Port<'_> {
    fn forward_load(&mut self, addr: Addr, size: usize) -> Option<(u64, u64)> {
        self.policy.forward_load(addr, size)
    }
    fn issue_load(&mut self, addr: Addr, size: usize, token: u64, now: Cycle) {
        self.ctrl.load(addr, size, token, now, self.net);
    }
    fn store_committed(&mut self, addr: Addr, _size: usize, now: Cycle) {
        self.policy.store_committed(self.ctrl, self.net, addr, now);
    }
    fn fence_drained(&mut self) -> bool {
        self.policy.drained()
    }
}

impl System {
    /// Builds a system running one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces does not match `cfg.cores`.
    pub fn new(cfg: &SimConfig, traces: Vec<Box<dyn TraceSource>>, seed: u64) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one trace per core");
        let mut rng = SimRng::seed(seed);
        let mem = MemorySystem::new(cfg, &mut rng);
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::new(CoreId::new(i as u16), cfg, t))
            .collect();
        let policies = (0..cfg.cores).map(|_| Policy::new(cfg)).collect();
        let mut sys = System {
            cfg: *cfg,
            cores,
            policies,
            mem,
            now: Cycle::ZERO,
            tracer: Tracer::default(),
            event_scratch: Vec::new(),
            cal: Calendar::new(cfg.cores + 1),
            charged: vec![Cycle::ZERO; cfg.cores],
            committed_total: 0,
        };
        if trace_default() {
            sys.enable_trace(DEFAULT_TRACE_CAP);
        }
        sys
    }

    /// Arms structured tracing on every component (cores, policies,
    /// memory side, the system itself), each with a ring of `cap`
    /// records. Tracing is observation-only: it never changes simulated
    /// state, statistics, or timing.
    pub fn enable_trace(&mut self, cap: usize) {
        self.tracer.enable(cap);
        for c in &mut self.cores {
            c.trace_enable(cap);
        }
        for p in &mut self.policies {
            p.trace_enable(cap);
        }
        self.mem.enable_trace(cap);
    }

    /// Whether tracing has been armed on this system.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Drains every component's trace buffer as named tracks, each a
    /// timestamp-ordered record list: `core<i>.cpu`, `core<i>.policy`,
    /// `mem.core<i>`, `dir`, `net`, and `system` (bulk-idle spans).
    pub fn take_traces(&mut self) -> Vec<(String, Vec<TraceRecord>)> {
        let now = self.now;
        let mut out = Vec::new();
        for (i, c) in self.cores.iter_mut().enumerate() {
            out.push((format!("core{i}.cpu"), c.take_trace(now)));
        }
        for (i, p) in self.policies.iter_mut().enumerate() {
            out.push((format!("core{i}.policy"), p.take_trace()));
        }
        out.extend(self.mem.take_traces());
        out.push(("system".to_owned(), self.tracer.take()));
        out
    }

    /// Per-core cycle-attribution ledgers (always on, independent of
    /// tracing).
    pub fn attributions(&self) -> Vec<Attribution> {
        self.cores.iter().map(|c| c.attribution()).collect()
    }

    /// Asserts the accountant's partition invariant: on every core, the
    /// attribution categories sum to exactly the cycles that core has
    /// run. Cheap (six additions per core); called at the end of every
    /// run loop.
    pub fn check_attribution(&self) {
        for (i, c) in self.cores.iter().enumerate() {
            let total = c.attribution().total();
            assert_eq!(
                total,
                self.now.raw(),
                "core{i}: stall-attribution categories sum to {total}, expected {} cycles",
                self.now.raw()
            );
        }
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// A core, for inspection.
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable core access (e.g. to enable load recording).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// A policy, for inspection.
    pub fn policy(&self, i: usize) -> &Policy {
        &self.policies[i]
    }

    /// The memory system, for inspection.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory-system access (debug tracing hooks).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.mem.tick(now);
        let mut events = std::mem::take(&mut self.event_scratch);
        for i in 0..self.cores.len() {
            self.core_slice(i, now, &mut events);
        }
        self.event_scratch = events;
        self.now += 1;
    }

    /// Core `i`'s share of one cycle: drain its controller's cache events,
    /// route them (load completions to the core, TUS events to the
    /// policy), drain committed stores, then tick the pipeline. Both the
    /// lockstep tick and the event kernel run exactly this, so per-unit
    /// scheduling cannot diverge from the per-cycle order.
    fn core_slice(&mut self, i: usize, now: Cycle, events: &mut Vec<CacheEvent>) {
        let MemorySystem { ctrls, net, .. } = &mut self.mem;
        let ctrl = &mut ctrls[i];
        events.clear();
        ctrl.drain_events_into(events);
        Self::route_events(&mut self.cores[i], &mut self.policies[i], ctrl, net, now, events);
        self.policies[i].drain(self.cores[i].sb_mut(), ctrl, net, now);
        // Tardis only: the store drain above can advance `pts` and fire
        // the lease-expiry sweep, dropping a leased line whose bound load
        // is sitting behind a fence that this very drain unblocks. The
        // resulting `Invalidated` must squash that load *before* this
        // cycle's commit, or the stale value retires. MESI generates no
        // events during the drain (its invalidations arrive via the
        // network tick), and its one-cycle delivery of policy events is
        // part of the golden timing, so the second flush is gated.
        if ctrl.is_tardis() {
            events.clear();
            ctrl.drain_events_into(events);
            Self::route_events(&mut self.cores[i], &mut self.policies[i], ctrl, net, now, events);
        }
        let mut port = Port {
            policy: &mut self.policies[i],
            ctrl,
            net,
        };
        let before = self.cores[i].committed();
        self.cores[i].tick(now, &mut port);
        self.committed_total += self.cores[i].committed() - before;
    }

    /// Routes drained controller events: load completions and line
    /// invalidations to the core, everything else (TUS authorization
    /// traffic) to the drain policy.
    fn route_events(
        core: &mut Core,
        policy: &mut Policy,
        ctrl: &mut PrivateCache,
        net: &mut Network,
        now: Cycle,
        events: &mut Vec<CacheEvent>,
    ) {
        for ev in events.drain(..) {
            match ev {
                CacheEvent::LoadDone { token, at, value } => {
                    core.load_complete(token, at, value);
                }
                CacheEvent::Invalidated { line } => {
                    core.on_line_invalidated(line, now);
                }
                other => policy.on_event(&other, ctrl, net, now),
            }
        }
    }

    /// Machine-wide earliest next-work cycle: the minimum over the memory
    /// system (network, directory, per-core controllers), every drain
    /// policy, and every core pipeline. `None` means no component will
    /// ever act again without external input — the watchdog's domain.
    /// Returns early once any component claims work at or before `now`.
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        // Cheapest checks first: an actively dispatching core answers
        // `Some(now)` after one or two branch tests, and this function
        // runs before every tick — the memory walk (network queues,
        // directory, every controller) must only be paid once the cores
        // are actually quiet.
        let mut next: Option<Cycle> = None;
        for i in 0..self.cores.len() {
            let drained = self.policies[i].drained();
            next = earliest(next, self.cores[i].next_work_at(now, drained));
            if next.is_some_and(|c| c <= now) {
                return next;
            }
            next = earliest(
                next,
                self.policies[i].next_work(self.cores[i].sb(), &self.mem.ctrls[i], now),
            );
            if next.is_some_and(|c| c <= now) {
                return next;
            }
        }
        earliest(next, self.mem.next_work(now))
    }

    /// Charges `n` skipped cycles to every component's stall/occupancy
    /// counters — exactly what `n` lockstep ticks would have recorded in
    /// this (idle) state — and advances the clock past them.
    fn skip_idle(&mut self, n: u64) {
        let now = self.now;
        for i in 0..self.cores.len() {
            let drained = self.policies[i].drained();
            self.policies[i].charge_idle(self.cores[i].sb(), &mut self.mem.ctrls[i], n);
            self.cores[i].charge_idle(n, now, drained);
        }
        // One bulk-idle span per jump keeps traced timelines gap-free
        // under the skip kernel.
        self.tracer.emit(now, n, TraceEvent::BulkIdle);
        self.now += n;
    }

    // --- event-driven kernel --------------------------------------------
    //
    // Unit 0 is the memory fabric (the whole `MemorySystem::tick`, kept
    // atomic so its internal delivery order is untouched); unit `1 + i`
    // is core `i`'s slice. The calendar's `(due, id)` pop order therefore
    // reproduces the lockstep intra-cycle order — fabric first, cores
    // ascending — and a unit only runs on cycles where its `next_work`
    // key is due, with skipped spans charged in bulk (per unit, deferred
    // until just before the unit's state can change).

    /// Conservatively re-seeds the calendar: every unit scheduled *now*,
    /// every idle ledger marked charged-up-to-now. The first cycle then
    /// runs as a full lockstep tick, which is always equivalence-safe, and
    /// the per-unit keys take over from there. Called at every run-loop
    /// entry so manual `tick()` calls or back-to-back warm-up/measure
    /// loops never leave stale keys behind.
    fn seed_calendar(&mut self) {
        let units = 1 + self.cores.len();
        if self.cal.units() != units {
            self.cal = Calendar::new(units);
        }
        self.cal.clear();
        for id in 0..units {
            self.cal.schedule(id, self.now);
        }
        for c in &mut self.charged {
            *c = self.now;
        }
    }

    /// Charges core `i`'s un-materialized idle span `[charged[i], upto)`
    /// to the same stall/occupancy counters lockstep ticks would have
    /// bumped. Must run before anything mutates the core, its policy or
    /// its cache controller — the charge classifies against the state
    /// that actually held during the span.
    fn flush_idle(&mut self, i: usize, upto: Cycle) {
        let since = self.charged[i];
        if since >= upto {
            return;
        }
        let n = upto - since;
        let drained = self.policies[i].drained();
        self.policies[i].charge_idle(self.cores[i].sb(), &mut self.mem.ctrls[i], n);
        self.cores[i].charge_idle(n, since, drained);
        self.charged[i] = upto;
    }

    /// Flushes every core's pending idle span up to the current cycle
    /// (event kernel only; a no-op otherwise). Called whenever a run loop
    /// hands control back — statistics exports and the attribution
    /// invariant both need fully materialized ledgers.
    fn flush_all_idle(&mut self) {
        if self.cfg.kernel != KernelKind::Event {
            return;
        }
        for i in 0..self.cores.len() {
            self.flush_idle(i, self.now);
        }
    }

    /// Recomputes core `i`'s calendar key right after its slice ran at
    /// `now`. Events its own slice pushed (an L1-hit load completion, a
    /// same-cycle visibility flip) are consumed by the *next* cycle's
    /// drain, so pending controller events force a key of `now + 1`;
    /// otherwise the pipeline and drain policy report their next state
    /// change. `None` from both leaves the unit unscheduled until the
    /// fabric wakes it (a reply, grant or invalidation reschedules the
    /// core through the pre-delivery pass in [`System::advance_event`]).
    fn reschedule_core(&mut self, i: usize, now: Cycle) {
        let t = now + 1;
        if self.mem.ctrls[i].has_pending_events() {
            self.cal.schedule(1 + i, t);
            return;
        }
        let drained = self.policies[i].drained();
        let key = earliest(
            self.cores[i].next_work_at(t, drained),
            self.policies[i].next_work(self.cores[i].sb(), &self.mem.ctrls[i], t),
        );
        match key {
            Some(k) => self.cal.schedule(1 + i, k.max(t)),
            None => self.cal.unschedule(1 + i),
        }
    }

    /// One step of the event-driven kernel: runs every unit whose key is
    /// due this cycle (fabric first, then cores ascending — the lockstep
    /// order), or jumps the clock to the earliest future key. Returns the
    /// deadlock kind when the progress watchdog fires; the caller keeps
    /// the budget check, like [`System::advance`].
    fn advance_event(&mut self, watchdog: &mut Watchdog, max_cycles: u64) -> Option<DeadlockKind> {
        let no_progress = DeadlockKind::NoProgress { cycles: WATCHDOG_CYCLES };
        let now = self.now;
        match self.cal.next_key() {
            Some(k) if k <= now => {
                // Pre-delivery pass: every core the fabric is about to
                // touch gets its idle span charged against the
                // pre-delivery state and a slice this cycle — exactly
                // when lockstep would have processed the delivery.
                if self.cal.key(0).is_some_and(|k| k <= now) {
                    for i in 0..self.cores.len() {
                        if self.mem.core_touched_by_fabric(i, now) {
                            self.flush_idle(i, now);
                            self.cal.schedule(1 + i, now);
                        }
                    }
                }
                let sent_before = self.mem.net.sent_count();
                let mut fabric_ran = false;
                let mut events = std::mem::take(&mut self.event_scratch);
                while let Some(id) = self.cal.pop_due(now) {
                    if id == 0 {
                        self.mem.tick(now);
                        fabric_ran = true;
                    } else {
                        let i = id - 1;
                        self.flush_idle(i, now);
                        self.core_slice(i, now, &mut events);
                        self.charged[i] = now + 1;
                        self.reschedule_core(i, now);
                    }
                }
                self.event_scratch = events;
                // Refresh the fabric key: its own pop consumed it, and
                // core slices may have queued new messages (always for a
                // future cycle — the hop latency is at least 1).
                if fabric_ran || self.mem.net.sent_count() != sent_before {
                    match self.mem.fabric_next_work(now) {
                        Some(k) => {
                            debug_assert!(k > now, "fabric work left behind at {now}");
                            self.cal.schedule(0, k);
                        }
                        None => self.cal.unschedule(0),
                    }
                }
                #[cfg(debug_assertions)]
                for i in 0..self.cores.len() {
                    debug_assert!(
                        !self.mem.ctrls[i].has_pending_events()
                            || self.cal.key(1 + i).is_some_and(|k| k <= now + 1),
                        "core{i}: pending cache events but no due calendar key"
                    );
                }
                self.now += 1;
                (!watchdog.check(self)).then_some(no_progress)
            }
            horizon => {
                // No unit is due: jump to the earliest key (or, when the
                // machine is quiesced, to the budget/watchdog bound),
                // with the same clamping arithmetic as the skip kernel.
                // Nothing is charged here — idle spans are materialized
                // per unit by `flush_idle` when the unit next runs.
                let sig = self.progress_signature();
                let until_work = match horizon {
                    Some(at) => at.raw() - now.raw(),
                    None => u64::MAX,
                };
                let until_budget = max_cycles - now.raw();
                let cap = watchdog.idle_capacity(sig);
                let n = until_work.min(until_budget).min(cap);
                self.tracer.emit(now, n, TraceEvent::BulkIdle);
                self.now += n;
                watchdog.advance_idle(sig, n);
                (n == cap).then_some(no_progress)
            }
        }
    }

    /// Advances the machine: one lockstep tick, or — under the
    /// idle-skipping kernel — a bulk-charged jump over a span in which no
    /// component has work. Returns the deadlock kind when the progress
    /// watchdog fires. The caller is responsible for the budget check
    /// (`now < max_cycles`) before each call.
    ///
    /// `unscanned` is the caller-kept scan-backoff budget: when a scan
    /// finds due work, the next [`SCAN_BACKOFF`] calls tick without
    /// re-scanning. Ticking is exactly what lockstep does, so this is
    /// equivalence-preserving by construction; it only defers *entering*
    /// an idle jump by at most [`SCAN_BACKOFF`] cycles, trading a sliver
    /// of each long skip window for not paying the machine-wide scan on
    /// every busy cycle.
    fn advance(
        &mut self,
        watchdog: &mut Watchdog,
        max_cycles: u64,
        unscanned: &mut u32,
    ) -> Option<DeadlockKind> {
        let no_progress = DeadlockKind::NoProgress { cycles: WATCHDOG_CYCLES };
        if self.cfg.kernel == KernelKind::Lockstep {
            self.tick();
            return (!watchdog.check(self)).then_some(no_progress);
        }
        if *unscanned > 0 {
            *unscanned -= 1;
            self.tick();
            return (!watchdog.check(self)).then_some(no_progress);
        }
        match self.next_work(self.now) {
            Some(at) if at <= self.now => {
                *unscanned = SCAN_BACKOFF;
                self.tick();
                (!watchdog.check(self)).then_some(no_progress)
            }
            horizon => {
                // Nothing will change before `horizon`: lockstep would
                // spend pure idle ticks up to there with the progress
                // signature frozen, each one charged to the same stall
                // counters and each one advancing the watchdog. Charge
                // them in bulk, bounded by the cycle budget and by the
                // tick on which the watchdog would fire.
                let sig = self.progress_signature();
                let until_work = match horizon {
                    Some(at) => at.raw() - self.now.raw(),
                    None => u64::MAX,
                };
                let until_budget = max_cycles - self.now.raw();
                let cap = watchdog.idle_capacity(sig);
                let n = until_work.min(until_budget).min(cap);
                self.skip_idle(n);
                watchdog.advance_idle(sig, n);
                (n == cap).then_some(no_progress)
            }
        }
    }

    /// Begins a stepping run towards `goal`: resets the per-run control
    /// state (progress watchdog, scan backoff) and — under the event
    /// kernel — conservatively re-seeds the calendar, exactly as the
    /// monolithic run loop did at entry. Drive the run with
    /// [`System::run_step`]; the `try_run_*` convenience loops are thin
    /// wrappers over this pair, so a stepped run is bit-identical to a
    /// monolithic one by construction (a gang interleaving many systems'
    /// steps relies on exactly this).
    pub fn begin_run(&mut self, goal: RunGoal, max_cycles: u64) -> RunCtl {
        if self.cfg.kernel == KernelKind::Event {
            self.seed_calendar();
        }
        RunCtl {
            watchdog: Watchdog::new(),
            unscanned: 0,
            goal,
            max_cycles,
        }
    }

    /// One iteration of the run loop started by [`System::begin_run`]:
    /// checks the goal, then the cycle budget, then advances the machine
    /// one kernel step (a tick, or an idle jump). Statistics ledgers are
    /// fully materialized on every exit, so a [`StepOutcome::Done`]
    /// snapshot or [`StepOutcome::Dead`] report equals what the
    /// monolithic loop would have produced. After `Done` the system
    /// remains runnable — begin another run to continue (the
    /// warm-up/measure pattern).
    pub fn run_step(&mut self, ctl: &mut RunCtl) -> StepOutcome {
        if ctl.goal.met(self) {
            self.flush_all_idle();
            self.check_attribution();
            return StepOutcome::Done(self.export_stats());
        }
        if self.now.raw() >= ctl.max_cycles {
            let budget = ctl.max_cycles;
            return StepOutcome::Dead(Box::new(
                self.abort_report(DeadlockKind::BudgetExhausted { budget }),
            ));
        }
        let step = if self.cfg.kernel == KernelKind::Event {
            self.advance_event(&mut ctl.watchdog, ctl.max_cycles)
        } else {
            self.advance(&mut ctl.watchdog, ctl.max_cycles, &mut ctl.unscanned)
        };
        match step {
            Some(kind) => StepOutcome::Dead(Box::new(self.abort_report(kind))),
            None => StepOutcome::Running,
        }
    }

    /// Materializes every idle ledger and assembles the deadlock report
    /// for an abandoned run — the exit path [`System::run_step`] uses,
    /// public so callers imposing limits the simulator cannot see (a
    /// wall-clock deadline) produce identical diagnostics.
    pub fn abort_report(&mut self, kind: DeadlockKind) -> DeadlockReport {
        self.flush_all_idle();
        self.deadlock_report(kind)
    }

    fn run_loop(&mut self, max_cycles: u64, goal: RunGoal) -> Result<StatSet, Box<DeadlockReport>> {
        let mut ctl = self.begin_run(goal, max_cycles);
        loop {
            match self.run_step(&mut ctl) {
                StepOutcome::Running => {}
                StepOutcome::Done(stats) => return Ok(stats),
                StepOutcome::Dead(report) => return Err(report),
            }
        }
    }

    /// Whether every trace has finished, every store has reached the
    /// memory system and it has quiesced.
    pub fn finished(&self) -> bool {
        self.cores.iter().all(|c| c.finished() && c.sb().is_empty())
            && self.policies.iter().all(|p| p.drained())
            && self.mem.quiesced()
    }

    /// Assembles the structured deadlock diagnostics for the current
    /// machine state.
    pub fn deadlock_report(&self, kind: DeadlockKind) -> DeadlockReport {
        DeadlockReport {
            kind,
            cycle: self.now.raw(),
            cores: self
                .cores
                .iter()
                .zip(&self.policies)
                .map(|(c, p)| CoreDeadlockState {
                    committed: c.committed(),
                    finished: c.finished(),
                    sb_len: c.sb().len(),
                    policy: p.occupancy(),
                })
                .collect(),
            mem: self.mem.deadlock_snapshot(),
            dump: self.dump_state(),
        }
    }

    /// Runs until [`System::finished`], giving up after `max_cycles` or
    /// when the progress watchdog fires. A stuck run returns a
    /// [`DeadlockReport`] instead of aborting the process, so callers
    /// (the fuzzer in particular) can record it as a counterexample.
    pub fn try_run_to_completion(&mut self, max_cycles: u64) -> Result<StatSet, Box<DeadlockReport>> {
        self.run_loop(max_cycles, RunGoal::Completion)
    }

    /// Runs until [`System::finished`], aborting after `max_cycles` or on
    /// a progress watchdog.
    ///
    /// # Panics
    ///
    /// Panics when the cycle budget is exhausted or no global progress is
    /// made for a long time (deadlock diagnostics). Use
    /// [`System::try_run_to_completion`] to get a [`DeadlockReport`]
    /// instead.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> StatSet {
        self.try_run_to_completion(max_cycles)
            .unwrap_or_else(|r| panic!("{r}\n{}", r.dump))
    }

    /// Fallible variant of [`System::run_committed`]: runs until every
    /// core has committed at least `insts` instructions (or finished its
    /// trace), returning a [`DeadlockReport`] on budget exhaustion or a
    /// watchdog trip.
    pub fn try_run_committed(
        &mut self,
        insts: u64,
        max_cycles: u64,
    ) -> Result<StatSet, Box<DeadlockReport>> {
        self.run_loop(max_cycles, RunGoal::Committed(insts))
    }

    /// Runs until every core has committed at least `insts` instructions
    /// (or finished its trace), then returns statistics. This is the
    /// fixed-work measurement loop the performance experiments use.
    ///
    /// # Panics
    ///
    /// Panics on the progress watchdog or when `max_cycles` elapse first.
    /// Use [`System::try_run_committed`] for structured diagnostics.
    pub fn run_committed(&mut self, insts: u64, max_cycles: u64) -> StatSet {
        self.try_run_committed(insts, max_cycles)
            .unwrap_or_else(|r| panic!("{r}\n{}", r.dump))
    }

    /// Exports all statistics: `cycles`, per-core `coreN.cpu.*` and
    /// `coreN.policy.*`, and memory-side `mem.*`.
    pub fn export_stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("cycles", self.now.raw() as f64);
        let mut committed = 0.0;
        for (i, c) in self.cores.iter().enumerate() {
            s.absorb(&format!("core{i}.cpu"), &c.export_stats());
            committed += c.committed() as f64;
        }
        for (i, p) in self.policies.iter().enumerate() {
            s.absorb(&format!("core{i}.policy"), &p.export_stats());
        }
        s.absorb("mem", &self.mem.export_stats());
        s.set("total_committed", committed);
        if self.now.raw() > 0 {
            s.set("system_ipc", committed / self.now.raw() as f64);
        }
        s
    }

    fn progress_signature(&self) -> (u64, u64) {
        debug_assert_eq!(
            self.committed_total,
            self.cores.iter().map(|c| c.committed()).sum::<u64>(),
            "cached commit total out of sync"
        );
        (self.committed_total, self.mem.net.sent_count())
    }

    /// Renders a human-readable snapshot of per-core pipeline and store
    /// state (used by the deadlock watchdog and available for debugging).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycle {}", self.now);
        for (i, c) in self.cores.iter().enumerate() {
            let _ = writeln!(
                out,
                "core{i}: {:?} sb_len={} sb_head={:?}",
                c,
                c.sb().len(),
                c.sb().head().map(|e| (e.addr, e.committed))
            );
            let _ = writeln!(out, "core{i} rob head: {}", c.describe_head());
            let _ = writeln!(out, "core{i} policy: {:?}", PolicyKind::ALL.iter().find(|_| true).map(|_| match &self.policies[i] { Policy::Baseline(_) => "base", Policy::Spb(_) => "spb", Policy::Ssb(_) => "ssb", Policy::Csb(_) => "csb", Policy::Tus(_) => "tus" }));
            if let Some(h) = c.sb().head() {
                let _ = writeln!(out, "core{i} sb head line state: {:?}", self.mem.ctrls[i].line_state(h.addr.line()));
            }
            let _ = writeln!(out, "core{i} ctrl: {:?}", self.mem.ctrls[i]);
            if let Policy::Tus(p) = &self.policies[i] {
                let _ = writeln!(
                    out,
                    "core{i} wcbs: occupied={} woq_len={}",
                    p.wcbs().occupied(),
                    p.woq().len()
                );
                for (j, e) in p.woq().iter().enumerate().take(16) {
                    let st = self.mem.ctrls[i].line_state(e.line);
                    let _ = writeln!(
                        out,
                        "  woq[{j}] line={} group={:?} ready={} retry={} can_cycle={} l1d={:?}",
                        e.line, e.group, e.ready, e.retry, e.can_cycle, st
                    );
                }
            }
        }
        let _ = writeln!(out, "dir: {:?}", self.mem.dir);
        out
    }
}

#[derive(Debug)]
struct Watchdog {
    last: Option<(u64, u64)>,
    since: u64,
}

impl Watchdog {
    fn new() -> Self {
        Watchdog { last: None, since: 0 }
    }

    /// Returns `false` when no progress has been made for
    /// [`WATCHDOG_CYCLES`] consecutive cycles.
    fn check(&mut self, sys: &System) -> bool {
        let sig = sys.progress_signature();
        if self.last == Some(sig) {
            self.since += 1;
            self.since < WATCHDOG_CYCLES
        } else {
            self.last = Some(sig);
            self.since = 0;
            true
        }
    }

    /// How many consecutive idle (signature-frozen) ticks can elapse
    /// until — and including — the one whose [`Watchdog::check`] would
    /// fire, given the current signature. Always at least 1.
    fn idle_capacity(&self, sig: (u64, u64)) -> u64 {
        if self.last == Some(sig) {
            WATCHDOG_CYCLES - self.since
        } else {
            // The first check records the new signature without counting,
            // then WATCHDOG_CYCLES more checks run before firing.
            WATCHDOG_CYCLES + 1
        }
    }

    /// Accounts for `n` consecutive idle ticks at signature `sig` in one
    /// step — the arithmetic image of `n` sequential [`Watchdog::check`]
    /// calls that all see the same signature.
    fn advance_idle(&mut self, sig: (u64, u64), n: u64) {
        debug_assert!(n >= 1);
        if self.last == Some(sig) {
            self.since += n;
        } else {
            self.last = Some(sig);
            self.since = n - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_cpu::{TraceInst, VecTrace};
    use tus_sim::PolicyKind;

    fn cfg_with(policy: PolicyKind, sb: usize) -> SimConfig {
        SimConfig::builder()
            .policy(policy)
            .sb_entries(sb)
            .scale_caches_down(64)
            .build()
    }

    fn burst_trace(lines: u64, stores_per_line: u64, base: u64) -> VecTrace {
        let mut v = Vec::new();
        for l in 0..lines {
            for s in 0..stores_per_line {
                v.push(TraceInst::store(
                    Addr::new(base + l * 64 + s * 8),
                    8,
                    l * 100 + s,
                ));
            }
        }
        // Read everything back.
        for l in 0..lines {
            for s in 0..stores_per_line {
                v.push(TraceInst::load(Addr::new(base + l * 64 + s * 8), 8));
            }
        }
        VecTrace::new(v)
    }

    /// Every policy must produce sequentially-correct values on a single
    /// core: loads observe the latest prior store.
    #[test]
    fn single_core_value_correctness_all_policies() {
        for policy in PolicyKind::ALL {
            let cfg = cfg_with(policy, 16);
            let trace = burst_trace(8, 4, 0x10_000);
            let mut sys = System::new(&cfg, vec![Box::new(trace)], 7);
            sys.core_mut(0).record_loads(true);
            sys.run_to_completion(2_000_000);
            let vals = sys.core(0).loaded_values();
            let mut expect = Vec::new();
            for l in 0..8u64 {
                for s in 0..4u64 {
                    expect.push(l * 100 + s);
                }
            }
            assert_eq!(vals, &expect[..], "policy {policy} returned wrong values");
        }
    }

    /// Memory must hold the stored values after the run drains.
    #[test]
    fn stores_reach_memory_after_drain() {
        for policy in PolicyKind::ALL {
            let cfg = cfg_with(policy, 8);
            let trace = VecTrace::new(vec![
                TraceInst::store(Addr::new(0x4000), 8, 0xABCD),
                TraceInst::fence(),
            ]);
            let mut sys = System::new(&cfg, vec![Box::new(trace)], 3);
            sys.run_to_completion(1_000_000);
            // After a fence commits, the store is globally visible: a
            // *remote* observer (main memory after quiesce, via the
            // directory view) is checked indirectly here through the
            // system invariant that everything drained.
            assert!(sys.finished(), "policy {policy} failed to drain");
            assert_eq!(sys.core(0).committed(), 2, "policy {policy}");
        }
    }

    /// TUS must form unauthorized lines and flip them visible.
    #[test]
    fn tus_visibility_flips_happen() {
        let cfg = cfg_with(PolicyKind::Tus, 8);
        let trace = burst_trace(16, 2, 0x20_000);
        let mut sys = System::new(&cfg, vec![Box::new(trace)], 11);
        let stats = sys.run_to_completion(2_000_000);
        assert!(
            stats.get("core0.policy.visibility_flips") > 0.0,
            "no visibility flips: {stats}"
        );
        assert!(stats.get("core0.policy.atomic_groups") > 0.0);
    }

    /// Without prefetch-at-commit, stores must take the
    /// unauthorized-allocation (always-hit illusion) path.
    #[test]
    fn tus_unauthorized_alloc_path_without_prefetch() {
        let cfg = SimConfig::builder()
            .policy(PolicyKind::Tus)
            .sb_entries(8)
            .prefetch_at_commit(false)
            .stream_prefetcher(false)
            .scale_caches_down(64)
            .build();
        let trace = burst_trace(16, 2, 0x30_000);
        let mut sys = System::new(&cfg, vec![Box::new(trace)], 11);
        let stats = sys.run_to_completion(2_000_000);
        assert!(
            stats.get("mem.core0.unauth_allocs") > 0.0,
            "no unauthorized allocations: {stats}"
        );
    }

    /// Coalescing reduces L1D store writes relative to the baseline.
    #[test]
    fn tus_reduces_l1d_writes() {
        let run = |policy| {
            let cfg = cfg_with(policy, 16);
            let trace = burst_trace(32, 8, 0x40_000);
            let mut sys = System::new(&cfg, vec![Box::new(trace)], 5);
            let s = sys.run_to_completion(4_000_000);
            s.get("mem.core0.l1d_writes")
        };
        let base = run(PolicyKind::Baseline);
        let tus = run(PolicyKind::Tus);
        assert!(
            tus < base / 2.0,
            "expected >=2x write reduction: baseline {base}, TUS {tus}"
        );
    }

    /// Two cores fighting over the same lines must make progress and end
    /// with coherent values under TUS (delay/relinquish paths).
    #[test]
    fn two_core_conflict_progress_tus() {
        let cfg = SimConfig::builder()
            .policy(PolicyKind::Tus)
            .cores(2)
            .sb_entries(8)
            // Without prefetch-at-commit the unauthorized window spans the
            // full permission round trip, so external conflicts are
            // guaranteed under this contention.
            .prefetch_at_commit(false)
            .scale_caches_down(64)
            .build();
        let mk = |salt: u64| {
            let mut v = Vec::new();
            for i in 0..600u64 {
                // Both cores hammer the same 4 lines.
                let line = (i + salt) % 4;
                v.push(TraceInst::store(Addr::new(0x8000 + line * 64), 8, salt * 1000 + i));
            }
            VecTrace::new(v)
        };
        let mut sys = System::new(&cfg, vec![Box::new(mk(0)), Box::new(mk(1))], 13);
        let stats = sys.run_to_completion(4_000_000);
        assert!(sys.finished());
        // The conflict machinery must actually have been exercised.
        let conflicts = stats.get("core0.policy.conflict_delays")
            + stats.get("core0.policy.conflict_relinquishes")
            + stats.get("core1.policy.conflict_delays")
            + stats.get("core1.policy.conflict_relinquishes");
        assert!(conflicts > 0.0, "no external conflicts exercised: {stats}");
    }

    /// All five policies survive a two-core true-sharing stress run.
    #[test]
    fn two_core_stress_all_policies() {
        for policy in PolicyKind::ALL {
            let cfg = SimConfig::builder()
                .policy(policy)
                .cores(2)
                .sb_entries(8)
                .scale_caches_down(64)
                .build();
            let mk = |salt: u64| {
                let mut v = Vec::new();
                for i in 0..100u64 {
                    let line = (i * 7 + salt) % 8;
                    v.push(TraceInst::store(Addr::new(0xC000 + line * 64), 8, i));
                    if i % 3 == 0 {
                        v.push(TraceInst::load(Addr::new(0xC000 + ((line + 1) % 8) * 64), 8));
                    }
                }
                VecTrace::new(v)
            };
            let mut sys = System::new(&cfg, vec![Box::new(mk(0)), Box::new(mk(3))], 17);
            sys.run_to_completion(4_000_000);
            assert!(sys.finished(), "policy {policy} did not finish");
        }
    }

    /// The fixed-work loop stops at the instruction target.
    #[test]
    fn run_committed_stops_at_target() {
        let cfg = cfg_with(PolicyKind::Baseline, 16);
        let trace = VecTrace::new(vec![TraceInst::alu(); 10_000]);
        let mut sys = System::new(&cfg, vec![Box::new(trace)], 1);
        let stats = sys.run_committed(1_000, 100_000);
        assert!(stats.get("core0.cpu.committed") >= 1_000.0);
        assert!(stats.get("core0.cpu.committed") < 10_000.0);
        assert!(stats.get("system_ipc") > 0.0);
    }

    // --- kernel equivalence ---------------------------------------------
    //
    // The idle-skipping and event-driven kernels must be observationally
    // identical to the lockstep kernel: same StatSet (every counter,
    // including stall and occupancy integrals), same final cycle, same
    // deadlock verdicts.

    use tus_cpu::TraceSource;
    use tus_sim::KernelKind;

    fn run_kernel(
        cfg: &SimConfig,
        traces: Vec<Box<dyn TraceSource>>,
        seed: u64,
        kernel: KernelKind,
        max_cycles: u64,
    ) -> Result<StatSet, (DeadlockKind, u64)> {
        let mut c = *cfg;
        c.kernel = kernel;
        let mut sys = System::new(&c, traces, seed);
        sys.try_run_to_completion(max_cycles)
            .map_err(|r| (r.kind, r.cycle))
    }

    fn assert_kernels_agree(cfg: &SimConfig, mk: impl Fn() -> Vec<Box<dyn TraceSource>>, seed: u64) {
        let lock = run_kernel(cfg, mk(), seed, KernelKind::Lockstep, 4_000_000);
        let skip = run_kernel(cfg, mk(), seed, KernelKind::Skip, 4_000_000);
        assert_eq!(lock, skip, "skip kernel diverged for {:?}", cfg.policy);
        let event = run_kernel(cfg, mk(), seed, KernelKind::Event, 4_000_000);
        assert_eq!(lock, event, "event kernel diverged for {:?}", cfg.policy);
    }

    /// Single-core store/load bursts: both kernels produce identical
    /// statistics for every policy.
    #[test]
    fn kernels_agree_single_core_all_policies() {
        for policy in PolicyKind::ALL {
            let cfg = cfg_with(policy, 16);
            assert_kernels_agree(&cfg, || vec![Box::new(burst_trace(12, 4, 0x50_000))], 23);
        }
    }

    /// Fences force full drains (long idle windows while the SB/WCB
    /// empties); both kernels must charge the wait identically.
    #[test]
    fn kernels_agree_with_fences() {
        for policy in PolicyKind::ALL {
            let cfg = cfg_with(policy, 8);
            let mk = || -> Vec<Box<dyn TraceSource>> {
                let mut v = Vec::new();
                for i in 0..40u64 {
                    v.push(TraceInst::store(Addr::new(0x60_000 + (i % 6) * 64), 8, i));
                    if i % 5 == 4 {
                        v.push(TraceInst::fence());
                    }
                }
                vec![Box::new(VecTrace::new(v))]
            };
            assert_kernels_agree(&cfg, mk, 29);
        }
    }

    /// Two cores contending for the same lines exercise the conflict,
    /// relinquish and grant-hold paths under TUS; the skip kernel must
    /// not perturb any of them.
    #[test]
    fn kernels_agree_two_core_contention() {
        for policy in PolicyKind::ALL {
            let cfg = SimConfig::builder()
                .policy(policy)
                .cores(2)
                .sb_entries(8)
                .prefetch_at_commit(false)
                .scale_caches_down(64)
                .build();
            let mk = || -> Vec<Box<dyn TraceSource>> {
                let tr = |salt: u64| {
                    let mut v = Vec::new();
                    for i in 0..300u64 {
                        let line = (i + salt) % 4;
                        v.push(TraceInst::store(Addr::new(0x9000 + line * 64), 8, salt * 1000 + i));
                        if i % 7 == 2 {
                            v.push(TraceInst::load(Addr::new(0x9000 + ((line + 2) % 4) * 64), 8));
                        }
                    }
                    VecTrace::new(v)
                };
                vec![Box::new(tr(0)), Box::new(tr(1))]
            };
            assert_kernels_agree(&cfg, mk, 31);
        }
    }

    /// The fixed-instruction-count loop must stop at the same cycle with
    /// the same counters under both kernels.
    #[test]
    fn kernels_agree_run_committed() {
        for policy in PolicyKind::ALL {
            let run = |kernel| {
                let mut cfg = cfg_with(policy, 8);
                cfg.kernel = kernel;
                let mut v = Vec::new();
                for i in 0..500u64 {
                    v.push(TraceInst::store(Addr::new(0x70_000 + (i % 10) * 64), 8, i));
                    v.push(TraceInst::alu());
                }
                let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(v))], 37);
                sys.try_run_committed(400, 2_000_000).map(|s| (sys.now(), s))
            };
            let lock = run(KernelKind::Lockstep).expect("lockstep deadlock");
            for kernel in [KernelKind::Skip, KernelKind::Event] {
                let other = run(kernel).expect("kernel deadlock");
                assert_eq!(lock, other, "run_committed diverged for {policy} under {kernel:?}");
            }
        }
    }

    /// Tracing must be observation-only (bit-identical statistics with it
    /// on or off), and the stall-attribution ledger must partition every
    /// cycle, under both kernels.
    #[test]
    fn tracing_is_observation_only_and_partitions_cycles() {
        for kernel in KernelKind::ALL {
            let mut cfg = cfg_with(PolicyKind::Tus, 8);
            cfg.kernel = kernel;
            let run = |trace: bool| {
                let mut sys = System::new(&cfg, vec![Box::new(burst_trace(8, 4, 0x90_000))], 3);
                if trace {
                    sys.enable_trace(4096);
                }
                let stats = sys.run_to_completion(2_000_000);
                sys.check_attribution();
                (stats, sys)
            };
            let (s_off, _) = run(false);
            let (s_on, mut sys_on) = run(true);
            assert_eq!(s_off, s_on, "tracing changed statistics under {kernel:?}");
            let tracks = sys_on.take_traces();
            assert!(
                tracks.iter().any(|(_, recs)| !recs.is_empty()),
                "tracing armed but no records captured under {kernel:?}"
            );
            // The idle-aware kernels must explain idle jumps with
            // bulk-idle spans.
            if kernel != KernelKind::Lockstep {
                let sys_track = tracks.iter().find(|(n, _)| n == "system").expect("system track");
                assert!(
                    sys_track.1.iter().any(|r| matches!(r.ev, tus_sim::TraceEvent::BulkIdle)),
                    "no bulk-idle span under the {kernel:?} kernel"
                );
            }
        }
    }

    /// A too-small cycle budget must trip `BudgetExhausted` at the same
    /// cycle under both kernels (the skip kernel clamps its jumps to the
    /// budget horizon rather than overshooting it).
    #[test]
    fn kernels_agree_on_budget_exhaustion() {
        let cfg = cfg_with(PolicyKind::Tus, 8);
        let mk = || -> Vec<Box<dyn TraceSource>> { vec![Box::new(burst_trace(16, 4, 0x80_000))] };
        let lock = run_kernel(&cfg, mk(), 41, KernelKind::Lockstep, 200);
        assert!(lock.is_err(), "budget of 200 cycles unexpectedly sufficed");
        for kernel in [KernelKind::Skip, KernelKind::Event] {
            let other = run_kernel(&cfg, mk(), 41, kernel, 200);
            assert_eq!(
                lock.as_ref().map_err(|e| *e).err(),
                other.as_ref().map_err(|e| *e).err(),
                "budget verdicts diverged under {kernel:?}"
            );
        }
    }

    /// A genuine no-progress hang (a fence that can never drain is not
    /// constructible here, so instead: budget far beyond the watchdog with
    /// an empty machine cannot happen — `finished()` short-circuits; use a
    /// two-core livelock-free case and just assert the watchdog arithmetic
    /// matches check()'s step behaviour).
    #[test]
    fn watchdog_idle_capacity_matches_check_steps() {
        // Fresh watchdog, unseen signature: capacity counts the recording
        // check plus WATCHDOG_CYCLES counting checks.
        let w = Watchdog::new();
        let sig = (3, 4);
        assert_eq!(w.idle_capacity(sig), WATCHDOG_CYCLES + 1);

        // Advancing by n then asking again is consistent: total capacity
        // consumed never changes.
        let mut w2 = Watchdog::new();
        w2.advance_idle(sig, 100);
        assert_eq!(w2.idle_capacity(sig), WATCHDOG_CYCLES - 99);
        w2.advance_idle(sig, WATCHDOG_CYCLES - 100);
        // One idle tick of capacity left: the next check fires.
        assert_eq!(w2.idle_capacity(sig), 1);
        // A new signature resets the window.
        assert_eq!(w2.idle_capacity((9, 9)), WATCHDOG_CYCLES + 1);
    }
}
