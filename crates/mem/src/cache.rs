//! Generic set-associative cache array.
//!
//! [`CacheArray`] stores tags, MESI state, data and the TUS line-state
//! extensions (Figure 6 of the paper): a *not visible* bit (`unauth` here,
//! with the opposite sense — `unauth == true` means the line holds
//! temporarily unauthorized store data that the coherence protocol must not
//! see) and a *ready* bit (write permission acquired and data combined).
//!
//! Victim selection is LRU with a filter: unauthorized and locked
//! (transient) lines are never eviction candidates, which implements both
//! the paper's "cannot be selected for replacement" rule at the L1D and the
//! NACK-refresh replacement rule at the L2.

use tus_sim::LineAddr;

use crate::line::{ByteMask, LineData};
use crate::mesi::Mesi;

/// Builds a length-`n` `Vec<T>` directly from zeroed pages.
///
/// # Safety
///
/// The all-zero byte pattern must be a valid `T`. A large L3 is hundreds
/// of thousands of ways; building its backing store element-by-element
/// (or as one `Box` per way) dominated short runs. With zeroed pages,
/// construction is O(1) page mapping, sets that are never touched never
/// cost physical memory, and teardown is one unmap.
unsafe fn zeroed_vec<T>(n: usize) -> Vec<T> {
    let layout = std::alloc::Layout::array::<T>(n).expect("cache geometry overflows a Layout");
    if layout.size() == 0 {
        return Vec::new();
    }
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout).cast::<T>();
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, n, n)
    }
}

/// State of one cache line (tag array + TUS extensions). The payload
/// lives in a parallel array inside [`CacheArray`] — tag/state scans
/// (lookup, victim search, writability probes) are the per-cycle hot
/// path and must not drag 64-byte payloads through the host cache.
#[derive(Debug, Clone)]
pub struct CacheLineState {
    /// Line address stored in this way (valid only if `state != Invalid`
    /// or `unauth`).
    pub line: LineAddr,
    /// Coherence permission actually held for the line.
    pub state: Mesi,
    /// Dirty with respect to the next level (write-back).
    pub dirty: bool,
    /// TUS: the line holds unauthorized store data not visible to the
    /// coherence protocol (the paper's *not visible* bit, inverted name).
    pub unauth: bool,
    /// TUS: write permission acquired and data combined with memory.
    pub ready: bool,
    /// TUS: the non-written bytes of the line are valid (a base copy was
    /// present when the unauthorized write happened). When true, a
    /// permission-only upgrade completes the line without a data transfer.
    pub base_valid: bool,
    /// TUS: which bytes hold locally written (unauthorized) data.
    pub mask: ByteMask,
    /// Transient: a fill for this way is outstanding; the way cannot be
    /// used or evicted.
    pub locked: bool,
    /// Cycle at which the last coherence grant installed/upgraded this
    /// line (external requests arriving within a few cycles of a grant
    /// are deferred so the local drain can perform at least one write —
    /// the minimal fairness window real cores provide).
    pub granted_at: tus_sim::Cycle,
    lru: u64,
}

impl CacheLineState {
    /// Only referenced by the debug-build check in [`CacheArray::new`] that
    /// the all-zero bit pattern really is the empty state.
    #[cfg(debug_assertions)]
    fn empty() -> Self {
        CacheLineState {
            line: LineAddr::new(0),
            state: Mesi::Invalid,
            dirty: false,
            unauth: false,
            ready: false,
            base_valid: false,
            mask: ByteMask::EMPTY,
            locked: false,
            granted_at: tus_sim::Cycle::ZERO,
            lru: 0,
        }
    }

    /// Whether the way holds anything (coherent copy, unauthorized data or
    /// an in-flight fill).
    pub fn occupied(&self) -> bool {
        self.state != Mesi::Invalid || self.unauth || self.locked
    }

    /// Whether this way may be chosen as an eviction victim.
    pub fn evictable(&self) -> bool {
        !self.unauth && !self.locked
    }

    /// Resets the way's metadata to empty. Callers almost always want
    /// [`CacheArray::clear_way`], which also zeroes the payload.
    pub fn clear(&mut self) {
        self.line = LineAddr::new(0);
        self.state = Mesi::Invalid;
        self.dirty = false;
        self.unauth = false;
        self.ready = false;
        self.base_valid = false;
        self.mask = ByteMask::EMPTY;
        self.locked = false;
        self.granted_at = tus_sim::Cycle::ZERO;
    }
}

/// A set-associative cache array with LRU replacement.
///
/// # Example
///
/// ```
/// use tus_mem::CacheArray;
/// use tus_sim::LineAddr;
///
/// let mut c = CacheArray::new(4, 2);
/// assert_eq!(c.sets(), 4);
/// let (set, way) = c.allocate(LineAddr::new(0x10)).expect("empty set has room");
/// c.way_mut(set, way).state = tus_mem::Mesi::Shared;
/// assert!(c.lookup(LineAddr::new(0x10)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    lines: Vec<CacheLineState>,
    /// Line payloads, parallel to `lines` (structure-of-arrays split).
    data: Vec<LineData>,
    tick: u64,
}

impl CacheArray {
    /// Creates an array with `sets` sets (power of two) and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        assert!(ways > 0, "ways must be positive");
        // A large L3 is hundreds of thousands of ways; building the
        // backing store element-by-element dominated short runs (and one
        // `Box` per way before that made teardown just as bad). The empty
        // way is all-zero bytes — `Mesi::Invalid` is pinned to
        // discriminant 0 (`repr(u8)`), the address/cycle/mask newtypes are
        // plain `u64`s, and the payload is zeroed — so take zeroed pages
        // straight from the allocator: construction is O(1) page mapping,
        // sets that are never touched never cost physical memory, and
        // teardown is one unmap.
        let n = sets * ways;
        let lines: Vec<CacheLineState> = unsafe { zeroed_vec(n) };
        // All-zero is trivially valid for a byte array.
        let data: Vec<LineData> = unsafe { zeroed_vec(n) };
        #[cfg(debug_assertions)]
        {
            let z = &lines[0];
            let e = CacheLineState::empty();
            debug_assert!(
                z.line == e.line
                    && z.state == e.state
                    && !z.dirty
                    && !z.unauth
                    && !z.ready
                    && !z.base_valid
                    && z.mask == e.mask
                    && !z.locked
                    && z.granted_at == e.granted_at
                    && z.lru == e.lru,
                "zeroed CacheLineState is not the empty state"
            );
        }
        CacheArray {
            sets,
            ways,
            lines,
            data,
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a line address.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets - 1)
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.sets && way < self.ways);
        set * self.ways + way
    }

    /// Immutable access to a way.
    pub fn way(&self, set: usize, way: usize) -> &CacheLineState {
        &self.lines[self.idx(set, way)]
    }

    /// Mutable access to a way.
    pub fn way_mut(&mut self, set: usize, way: usize) -> &mut CacheLineState {
        let i = self.idx(set, way);
        &mut self.lines[i]
    }

    /// The payload of a way.
    pub fn data(&self, set: usize, way: usize) -> &LineData {
        &self.data[self.idx(set, way)]
    }

    /// Mutable payload of a way.
    pub fn data_mut(&mut self, set: usize, way: usize) -> &mut LineData {
        let i = self.idx(set, way);
        &mut self.data[i]
    }

    /// Metadata and payload of a way, mutably, in one borrow.
    pub fn way_and_data_mut(
        &mut self,
        set: usize,
        way: usize,
    ) -> (&mut CacheLineState, &mut LineData) {
        let i = self.idx(set, way);
        (&mut self.lines[i], &mut self.data[i])
    }

    /// Resets a way to empty: metadata cleared and payload zeroed.
    pub fn clear_way(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.lines[i].clear();
        self.data[i] = [0u8; tus_sim::LINE_BYTES];
    }

    /// Finds the way holding `line` (occupied ways only). Does not update
    /// LRU — use [`CacheArray::touch`] on an actual access.
    pub fn lookup(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let l = self.way(set, way);
            if l.occupied() && l.line == line {
                return Some((set, way));
            }
        }
        None
    }

    /// LRU stamp of a way (higher = more recently used), for callers that
    /// implement filtered victim selection.
    pub fn lru_stamp(&self, set: usize, way: usize) -> u64 {
        self.way(set, way).lru
    }

    /// Marks `(set, way)` as most recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let t = self.tick;
        self.way_mut(set, way).lru = t;
    }

    /// Finds a way to hold `line`: an invalid way if available, otherwise
    /// the LRU *evictable* way. Returns `None` when every way is pinned
    /// (locked or unauthorized).
    ///
    /// The returned way may still hold a valid victim; the caller must
    /// handle the eviction (write-back, coherence notification) before
    /// overwriting it. This is intentional — see C-INTERMEDIATE.
    pub fn victim(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        // Prefer an unoccupied way.
        for way in 0..self.ways {
            if !self.way(set, way).occupied() {
                return Some((set, way));
            }
        }
        // Otherwise evict the least recently used evictable way.
        let mut best: Option<(usize, u64)> = None;
        for way in 0..self.ways {
            let l = self.way(set, way);
            if l.evictable() && best.is_none_or(|(_, lru)| l.lru < lru) {
                best = Some((way, l.lru));
            }
        }
        best.map(|(way, _)| (set, way))
    }

    /// Convenience: finds a way for `line` and clears it, returning the
    /// coordinates. The caller is responsible for having handled any
    /// victim first (checked in debug builds via [`CacheArray::victim`]).
    pub fn allocate(&mut self, line: LineAddr) -> Option<(usize, usize)> {
        let (set, way) = self.victim(line)?;
        self.clear_way(set, way);
        self.way_mut(set, way).line = line;
        self.touch(set, way);
        Some((set, way))
    }

    /// Number of ways in `line`'s set that can currently be (re)allocated:
    /// unoccupied ways plus evictable occupied ways.
    pub fn free_or_evictable_ways(&self, line: LineAddr) -> usize {
        let set = self.set_of(line);
        (0..self.ways)
            .filter(|&w| {
                let l = self.way(set, w);
                !l.occupied() || l.evictable()
            })
            .count()
    }

    /// Iterates over all occupied lines as `(set, way, &state)`.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, usize, &CacheLineState)> {
        self.lines.iter().enumerate().filter_map(move |(i, l)| {
            if l.occupied() {
                Some((i / self.ways, i % self.ways, l))
            } else {
                None
            }
        })
    }

    /// Counts occupied ways (for occupancy statistics and tests).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.occupied()).count()
    }
}

/// Tag-split set-associative array for the very large shared L3.
///
/// The directory's L3 only ever needs four operations — lookup, LRU
/// touch, payload access and allocate-with-LRU-eviction — and its lines
/// carry no per-line coherence metadata (a resident line is always a
/// clean `Shared` copy of memory; `unauth`/`locked`/`dirty` never apply,
/// so every occupied way is evictable). [`CacheArray`] pays for that
/// generality on every probe: a 16-way set drags sixteen ~48-byte
/// [`CacheLineState`] records (≈12 host cache lines, almost always cold
/// at L3 footprints) through the scan loop. Here the scan state is one
/// packed tag word per way — a 16-way set is 128 bytes, two host lines —
/// and the LRU stamps and payloads live in parallel arrays that are only
/// touched on a hit or an eviction decision.
///
/// Victim selection reproduces [`CacheArray::victim`] exactly for the
/// all-evictable case (first empty way, else the first way with the
/// strictly-lowest LRU stamp), and the stamp stream is the same
/// one-counter-per-array sequence, so swapping the directory's L3 from
/// `CacheArray` to `L3Cache` is statistically invisible: identical hits,
/// identical victims, identical grants, bit-identical results.
pub struct L3Cache {
    sets: usize,
    ways: usize,
    /// `line.raw() + 1` per way; `0` = empty. The shift keeps the
    /// all-zero byte pattern as the empty array so construction stays
    /// O(1) zeroed-page mapping (see [`zeroed_vec`]).
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags` (higher = more recently used).
    lru: Vec<u64>,
    /// Line payloads, parallel to `tags`.
    data: Vec<LineData>,
    tick: u64,
}

impl std::fmt::Debug for L3Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L3Cache")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("touches", &self.tick)
            .finish()
    }
}

impl L3Cache {
    /// Creates an array with `sets` sets (power of two) and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        assert!(ways > 0, "ways must be positive");
        let n = sets * ways;
        // All-zero is the empty tag, stamp zero and a zero payload.
        let tags: Vec<u64> = unsafe { zeroed_vec(n) };
        let lru: Vec<u64> = unsafe { zeroed_vec(n) };
        let data: Vec<LineData> = unsafe { zeroed_vec(n) };
        L3Cache {
            sets,
            ways,
            tags,
            lru,
            data,
            tick: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets - 1)
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.sets && way < self.ways);
        set * self.ways + way
    }

    /// Finds the way holding `line`. Does not update LRU — use
    /// [`L3Cache::touch`] on an actual access.
    pub fn lookup(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        let tag = line.raw() + 1;
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
            .map(|way| (set, way))
    }

    /// Marks `(set, way)` as most recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let t = self.tick;
        let i = self.idx(set, way);
        self.lru[i] = t;
    }

    /// The payload of a way.
    pub fn data(&self, set: usize, way: usize) -> &LineData {
        &self.data[self.idx(set, way)]
    }

    /// Mutable payload of a way.
    pub fn data_mut(&mut self, set: usize, way: usize) -> &mut LineData {
        let i = self.idx(set, way);
        &mut self.data[i]
    }

    /// Installs `line` in its set — the first empty way, else evicting
    /// the least-recently-used one (ties broken towards the lowest way,
    /// as in [`CacheArray::victim`]) — marks it most recently used and
    /// returns its coordinates. The payload is *not* cleared; the caller
    /// overwrites it in full.
    pub fn insert(&mut self, line: LineAddr) -> (usize, usize) {
        let set = self.set_of(line);
        let base = set * self.ways;
        let ts = &self.tags[base..base + self.ways];
        let way = match ts.iter().position(|&t| t == 0) {
            Some(way) => way,
            None => {
                let mut best = (0, self.lru[base]);
                for (way, &stamp) in self.lru[base..base + self.ways].iter().enumerate().skip(1) {
                    if stamp < best.1 {
                        best = (way, stamp);
                    }
                }
                best.0
            }
        };
        self.tags[base + way] = line.raw() + 1;
        self.touch(set, way);
        (set, way)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(c: &mut CacheArray, line: u64, state: Mesi) -> (usize, usize) {
        let (s, w) = c.allocate(LineAddr::new(line)).expect("room");
        c.way_mut(s, w).state = state;
        (s, w)
    }

    #[test]
    fn lookup_hits_only_same_line() {
        let mut c = CacheArray::new(4, 2);
        filled(&mut c, 0x10, Mesi::Shared);
        assert!(c.lookup(LineAddr::new(0x10)).is_some());
        assert!(c.lookup(LineAddr::new(0x14)).is_none()); // same set (0x10 & 3 == 0x14 & 3)
        assert!(c.lookup(LineAddr::new(0x11)).is_none());
    }

    #[test]
    fn set_mapping() {
        let c = CacheArray::new(8, 1);
        assert_eq!(c.set_of(LineAddr::new(0)), 0);
        assert_eq!(c.set_of(LineAddr::new(7)), 7);
        assert_eq!(c.set_of(LineAddr::new(8)), 0);
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let mut c = CacheArray::new(1, 2);
        let (s0, w0) = filled(&mut c, 0, Mesi::Shared);
        let (_s1, w1) = filled(&mut c, 1, Mesi::Shared);
        // Touch way0 so way1 is LRU.
        c.touch(s0, w0);
        let (_, v) = c.victim(LineAddr::new(2)).expect("victim");
        assert_eq!(v, w1);
    }

    #[test]
    fn unauth_and_locked_never_victims() {
        let mut c = CacheArray::new(1, 2);
        let (s, w0) = filled(&mut c, 0, Mesi::Modified);
        let (_, w1) = filled(&mut c, 1, Mesi::Modified);
        c.way_mut(s, w0).unauth = true;
        c.way_mut(s, w1).locked = true;
        assert!(c.victim(LineAddr::new(2)).is_none());
        assert_eq!(c.free_or_evictable_ways(LineAddr::new(2)), 0);
        c.way_mut(s, w1).locked = false;
        assert_eq!(c.victim(LineAddr::new(2)), Some((s, w1)));
        assert_eq!(c.free_or_evictable_ways(LineAddr::new(2)), 1);
    }

    #[test]
    fn allocate_prefers_empty_way() {
        let mut c = CacheArray::new(1, 4);
        filled(&mut c, 0, Mesi::Shared);
        let (_, w) = c.allocate(LineAddr::new(1)).expect("room");
        assert_ne!(w, 0, "should pick an empty way, not evict");
        assert_eq!(c.occupancy(), 1); // allocate cleared the way; caller sets state
    }

    #[test]
    fn unauth_line_counts_as_occupied() {
        let mut c = CacheArray::new(1, 1);
        let (s, w) = c.allocate(LineAddr::new(5)).expect("room");
        let l = c.way_mut(s, w);
        l.unauth = true; // state stays Invalid (e.g. relinquished line)
        assert!(c.lookup(LineAddr::new(5)).is_some());
        assert!(c.victim(LineAddr::new(9)).is_none());
    }

    #[test]
    fn iter_occupied_reports_coordinates() {
        let mut c = CacheArray::new(2, 2);
        filled(&mut c, 0, Mesi::Shared);
        filled(&mut c, 1, Mesi::Modified);
        let v: Vec<_> = c.iter_occupied().map(|(s, w, l)| (s, w, l.line)).collect();
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|&(s, _, l)| s == 0 && l == LineAddr::new(0)));
        assert!(v.iter().any(|&(s, _, l)| s == 1 && l == LineAddr::new(1)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheArray::new(3, 1);
    }

    /// Replays the directory's exact L3 usage pattern (lookup-hit →
    /// touch+overwrite, miss → allocate+fill, interleaved with read
    /// probes) against both arrays and demands identical coordinates and
    /// payloads at every step — the bit-equivalence argument for swapping
    /// the directory's L3 to [`L3Cache`].
    #[test]
    fn l3cache_matches_cachearray_decisions() {
        let (sets, ways) = (8, 4);
        let mut a = CacheArray::new(sets, ways);
        let mut b = L3Cache::new(sets, ways);
        let mut rng = 0x5eed_cafe_u64;
        let mut bits = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for step in 0..4000 {
            let line = LineAddr::new(bits() % 64);
            if bits() % 2 == 0 {
                // fill_l3(line, data)
                let data = [(step % 251) as u8; tus_sim::LINE_BYTES];
                let at_a = match a.lookup(line) {
                    Some((s, w)) => {
                        *a.data_mut(s, w) = data;
                        a.touch(s, w);
                        (s, w)
                    }
                    None => {
                        let (s, w) = a.allocate(line).expect("all ways evictable");
                        let (l, d) = a.way_and_data_mut(s, w);
                        l.state = Mesi::Shared;
                        *d = data;
                        (s, w)
                    }
                };
                let at_b = match b.lookup(line) {
                    Some((s, w)) => {
                        *b.data_mut(s, w) = data;
                        b.touch(s, w);
                        (s, w)
                    }
                    None => b.insert(line),
                };
                *b.data_mut(at_b.0, at_b.1) = data;
                assert_eq!(at_a, at_b, "step {step}: placement diverged");
            } else {
                // fetch_then_grant's probe: hit → touch + read payload.
                let got_a = a.lookup(line);
                let got_b = b.lookup(line);
                assert_eq!(got_a, got_b, "step {step}: hit/miss diverged");
                if let (Some((s, w)), Some(_)) = (got_a, got_b) {
                    a.touch(s, w);
                    b.touch(s, w);
                    assert_eq!(a.data(s, w), b.data(s, w), "step {step}: payload diverged");
                }
            }
        }
    }
}
