//! MESI coherence states.

use std::fmt;

/// The four MESI states as seen by a private cache hierarchy.
///
/// `Modified`/`Exclusive` imply write permission; `Shared` implies read
/// permission only; `Invalid` implies no permission. The TUS *not visible*
/// bit is orthogonal to this state (an unauthorized line can hold written
/// data while its MESI state is anything — the state records the coherence
/// permission the core *actually* holds for the line).
/// `repr(u8)` with `Invalid = 0` is load-bearing: [`crate::CacheArray`]
/// materializes its backing store from zeroed pages, relying on the
/// all-zero byte pattern being a valid (Invalid) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Mesi {
    /// No valid copy.
    #[default]
    Invalid = 0,
    /// Read-only copy; other caches may also hold it.
    Shared,
    /// Clean exclusive copy; no other cache holds it; may be written
    /// without a coherence transaction.
    Exclusive,
    /// Dirty exclusive copy.
    Modified,
}

impl Mesi {
    /// Whether the state grants read permission.
    pub fn can_read(self) -> bool {
        self != Mesi::Invalid
    }

    /// Whether the state grants write permission.
    pub fn can_write(self) -> bool {
        matches!(self, Mesi::Exclusive | Mesi::Modified)
    }

    /// Whether the copy differs from memory.
    pub fn is_dirty(self) -> bool {
        self == Mesi::Modified
    }

    /// One-letter label ("I", "S", "E", "M").
    pub fn letter(self) -> &'static str {
        match self {
            Mesi::Invalid => "I",
            Mesi::Shared => "S",
            Mesi::Exclusive => "E",
            Mesi::Modified => "M",
        }
    }
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(!Mesi::Invalid.can_read());
        assert!(Mesi::Shared.can_read());
        assert!(!Mesi::Shared.can_write());
        assert!(Mesi::Exclusive.can_write());
        assert!(Mesi::Modified.can_write());
        assert!(Mesi::Modified.is_dirty());
        assert!(!Mesi::Exclusive.is_dirty());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(Mesi::default(), Mesi::Invalid);
    }

    #[test]
    fn letters_unique() {
        let set: std::collections::BTreeSet<_> =
            [Mesi::Invalid, Mesi::Shared, Mesi::Exclusive, Mesi::Modified]
                .iter()
                .map(|m| m.letter())
                .collect();
        assert_eq!(set.len(), 4);
    }
}
