//! Every named workload archetype must run end-to-end under TUS and the
//! baseline, and the suites must have the qualitative properties the
//! figures rely on (SB-bound workloads actually stall the baseline;
//! compute-bound ones do not).

use tus::System;
use tus_sim::{PolicyKind, SimConfig, StatSet};
use tus_workloads::{all_single, parsec16};

fn quick_run(w: &tus_workloads::Workload, policy: PolicyKind, cores: usize, insts: u64) -> StatSet {
    quick_run_at(w, policy, cores, insts, 32)
}

fn quick_run_at(
    w: &tus_workloads::Workload,
    policy: PolicyKind,
    cores: usize,
    insts: u64,
    sb: usize,
) -> StatSet {
    let cfg = SimConfig::builder()
        .cores(cores)
        .policy(policy)
        .sb_entries(sb)
        .build();
    let mut sys = System::new(&cfg, w.traces(cores, 7, insts), 7);
    sys.run_committed(insts, 200_000_000)
}

#[test]
fn every_single_thread_workload_runs_under_tus() {
    for w in all_single() {
        let s = quick_run(&w, PolicyKind::Tus, 1, 4_000);
        assert!(
            s.get("core0.cpu.committed") >= 4_000.0,
            "{} under-committed",
            w.name
        );
        assert!(s.get("system_ipc") > 0.01, "{} IPC collapsed", w.name);
    }
}

#[test]
fn every_parallel_workload_runs_on_16_cores() {
    for w in parsec16() {
        let s = quick_run(&w, PolicyKind::Tus, 16, 1_500);
        assert!(
            s.get("total_committed") >= 16.0 * 1_500.0,
            "{} under-committed",
            w.name
        );
    }
}

/// The paper classifies SB-bound applications as those with >1% of
/// SB-induced stalls under the baseline configuration (114-entry SB).
#[test]
fn sb_bound_classification_holds_at_baseline_sb() {
    let mut misclassified = Vec::new();
    for w in all_single() {
        // Warmed window, as in the paper's methodology (cold-start
        // upgrade misses would otherwise tag every program as SB-bound).
        let cfg = SimConfig::builder().sb_entries(114).build();
        let mut sys = System::new(&cfg, w.traces(1, 7, 40_000), 7);
        let warm = sys.run_committed(16_000, 200_000_000);
        let end = sys.run_committed(40_000, 200_000_000);
        let s = end.minus(&warm);
        let stall = s.get("core0.cpu.stall_sb") / s.get("cycles");
        if w.sb_bound && stall < 0.01 {
            misclassified.push(format!("{} marked SB-bound but stalls {:.2}%", w.name, stall * 100.0));
        }
        if !w.sb_bound && stall > 0.05 {
            misclassified.push(format!(
                "{} marked compute-bound but stalls {:.2}%",
                w.name,
                stall * 100.0
            ));
        }
    }
    // Allow a small number of borderline archetypes, as in the paper
    // (e.g. 503.bw2 is listed SB-bound with no gain).
    assert!(
        misclassified.len() <= 3,
        "suite classification drifted:\n{}",
        misclassified.join("\n")
    );
}

/// Sharing archetypes generate real cross-core coherence traffic.
#[test]
fn parallel_workloads_generate_coherence_traffic() {
    let w = parsec16()
        .into_iter()
        .find(|w| w.name == "canneal-like")
        .expect("exists");
    let s = quick_run(&w, PolicyKind::Baseline, 16, 10_000);
    assert!(
        s.get("mem.dir.fwds") + s.get("mem.dir.invs") > 10.0,
        "no invalidation traffic on a high-sharing workload: fwds {} invs {}",
        s.get("mem.dir.fwds"),
        s.get("mem.dir.invs")
    );
}
