//! Regression tests over the committed seed corpus.
//!
//! `results/fuzz-corpus/` holds generator-produced litmus cases
//! (persisted by `tus-harness fuzz --save-corpus`) that CI sweeps with
//! `tus-harness check --corpus`. These tests pin the corpus itself:
//! every committed entry must keep decoding, the text codec must keep
//! round-tripping byte-for-byte, and every case must still run to a
//! verdict on the real simulator — so a drift in `prog`, the corpus
//! format, or the conformance compiler shows up here, not as a silently
//! skipped CI sweep.

use std::path::PathBuf;

use tus_sim::{CoherenceKind, KernelKind, PolicyKind};
use tus_tso::conformance::try_run_once_matrix;
use tus_tso::fuzz::{decode_case, encode_case};
use tus_tso::RunVerdict;

/// The committed corpus directory, resolved from the workspace layout.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/fuzz-corpus")
}

/// Every committed `.txt` entry, sorted for stable iteration order.
fn corpus_files() -> Vec<PathBuf> {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("committed corpus dir {} must exist: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "committed corpus must not be empty");
    files
}

/// Every committed entry decodes, and re-encoding the decoded entry
/// reproduces the committed bytes exactly — the codec has not drifted
/// since the corpus was persisted.
#[test]
fn every_committed_entry_round_trips_byte_exact() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("read corpus entry");
        let entry = decode_case(&text)
            .unwrap_or_else(|e| panic!("{} no longer decodes: {e}", path.display()));
        let reencoded = encode_case(&entry.case, entry.policy, entry.seeds);
        assert_eq!(
            reencoded,
            text,
            "{} re-encodes differently — corpus codec drift",
            path.display()
        );
    }
}

/// Every committed case still compiles onto the simulator and runs to a
/// clean outcome (no deadlock, no truncated registers) under every
/// policy — the corpus stays sweepable.
#[test]
fn every_committed_case_still_runs_to_a_verdict() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("read corpus entry");
        let entry = decode_case(&text).expect("decodes (covered above)");
        assert!(
            entry.case.program.threads.len() <= 3 && entry.case.program.ops() <= 8,
            "{} exceeds the check bounds the corpus is committed for",
            path.display()
        );
        for policy in PolicyKind::ALL {
            let verdict = try_run_once_matrix(
                &entry.case.program,
                &entry.case.addrs,
                policy,
                1,
                KernelKind::default(),
                CoherenceKind::default(),
            );
            assert!(
                matches!(verdict, RunVerdict::Outcome(_)),
                "{} under {} no longer runs to an outcome: {verdict:?}",
                path.display(),
                policy.label()
            );
        }
    }
}
