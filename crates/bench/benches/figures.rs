//! One benchmark per paper table/figure.
//!
//! Each benchmark runs the minimal simulation slice that regenerates the
//! corresponding result (full tables come from `tus-harness <figN>`);
//! together they exercise every experiment code path under `cargo bench`
//! and track end-to-end simulator throughput.

use std::hint::black_box;

use tus_bench::{short_run, Bench};
use tus_sim::{PolicyKind, SimConfig};

const INSTS: u64 = 4_000;

fn main() {
    let mut b = Bench::from_args();

    b.bench("table1/render", || {
        black_box(SimConfig::default().render_table1())
    });

    // Fig. 8: one point of the SB-size scalability sweep per policy.
    for policy in PolicyKind::ALL {
        for sb in [32usize, 114] {
            b.bench(&format!("fig08_sb_scaling/{}_sb{}", policy.label(), sb), || {
                black_box(short_run("502.gcc3-like", policy, sb, INSTS).ipc)
            });
        }
    }

    // Fig. 9: SB-stall attribution on the burstiest workload.
    for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
        b.bench(&format!("fig09_sb_stalls/{}", policy.label()), || {
            black_box(short_run("502.gcc5-like", policy, 114, INSTS).sb_stall_frac)
        });
    }

    // Figs. 10/13: speedup measurement (one SB-bound, one compute-bound
    // S-curve point) at both baseline SB sizes.
    for (name, wl) in [("sb_bound", "502.gcc2-like"), ("flat", "541.leela-like")] {
        for sb in [114usize, 32] {
            b.bench(&format!("fig10_13_speedup/{name}_sb{sb}"), || {
                black_box(short_run(wl, PolicyKind::Tus, sb, INSTS).ipc)
            });
        }
    }

    // Figs. 11/15: the EDP pipeline (simulation + energy accounting).
    for policy in [PolicyKind::Baseline, PolicyKind::Ssb, PolicyKind::Tus] {
        b.bench(&format!("fig11_15_edp/{}", policy.label()), || {
            black_box(short_run("557.xz-like", policy, 114, INSTS).edp)
        });
    }

    // Figs. 12/14: a 16-core PARSEC slice (speedup + EDP inputs).
    for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
        b.bench(&format!("fig12_14_parsec16/dedup_{}", policy.label()), || {
            black_box(short_run("dedup-like", policy, 114, 2_000).ipc)
        });
    }

    // In-text: energy/area model evaluation.
    b.bench("intext/structure_models", || {
        let mut acc = 0.0;
        for sb in [32usize, 64, 114] {
            acc += tus_energy::sb_area(sb) + tus_energy::sb_search_energy(sb);
        }
        acc += tus_energy::woq_area(64) + tus_energy::woq_search_energy(64);
        black_box(acc)
    });
}
