//! Named workloads and the three evaluation suites.
//!
//! Names mirror the paper's benchmarks with a `-like` suffix: each entry
//! is a synthetic archetype calibrated to the store-traffic behaviour the
//! paper attributes to that benchmark (see the crate docs and DESIGN.md
//! for the substitution argument). `sb_bound_single()` is the set used in
//! the per-benchmark figures (9, 10-right, 11, 13-right, 15);
//! `all_single()` adds the non-SB-bound programs for the S-curves (10,
//! 13); `parsec16()` is the 16-thread suite (Figures 12, 14).

use tus_cpu::TraceSource;

use crate::archetype::{ArchetypeParams, ArchetypeTrace, SharingParams};

/// A named, runnable workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (paper benchmark + `-like`).
    pub name: &'static str,
    /// Whether the paper classifies it as SB-bound (>1% SB stalls).
    pub sb_bound: bool,
    /// Whether it is a multi-threaded (PARSEC) workload.
    pub parallel: bool,
    /// Generator parameters.
    pub params: ArchetypeParams,
    /// Sharing behaviour (parallel workloads).
    pub sharing: SharingParams,
}

impl Workload {
    /// Builds one trace per core (all identical archetype, disjoint
    /// private regions, shared region per `sharing`).
    pub fn traces(&self, cores: usize, seed: u64, limit: u64) -> Vec<Box<dyn TraceSource>> {
        (0..cores)
            .map(|tid| {
                Box::new(ArchetypeTrace::new(
                    self.params.clone(),
                    self.sharing,
                    tid,
                    seed,
                    limit,
                )) as Box<dyn TraceSource>
            })
            .collect()
    }
}

fn single(
    name: &'static str,
    sb_bound: bool,
    params: ArchetypeParams,
) -> Workload {
    Workload {
        name,
        sb_bound,
        parallel: false,
        params,
        sharing: SharingParams::default(),
    }
}

fn parallel(name: &'static str, params: ArchetypeParams, sharing: SharingParams) -> Workload {
    Workload {
        name,
        sb_bound: true,
        parallel: true,
        params,
        sharing,
    }
}

fn gcc_like(burst: f64, store_fraction: f64) -> ArchetypeParams {
    ArchetypeParams {
        mem_ratio: 0.38,
        store_fraction,
        burst_len_mean: burst,
        burst_stride: 8,
        working_set: 24 << 20,
        // Loads are cache-friendly (real gcc hits >95% in L1D); the SB
        // pressure comes from the cold store bursts, not load MLP.
        locality: 0.995,
        store_locality: Some(0.85),
        hot_set: 32 << 10,
        pointer_chase: 0.05,
        dep_mean: 5.0,
        fp_fraction: 0.05,
        div_fraction: 0.005,
    }
}

fn compute_bound(fp: f64) -> ArchetypeParams {
    ArchetypeParams {
        mem_ratio: 0.28,
        store_fraction: 0.20,
        burst_len_mean: 1.5,
        burst_stride: 8,
        working_set: 2 << 20,
        locality: 0.96,
        // Stores are effectively always cache-resident: these programs
        // show <1% SB stalls at any SB size (the flat S-curve region).
        store_locality: Some(1.0),
        hot_set: 24 << 10,
        pointer_chase: 0.02,
        dep_mean: 3.0,
        fp_fraction: fp,
        div_fraction: 0.01,
    }
}

/// The single-threaded SB-bound suite (SPEC CPU2017 + TensorFlow
/// archetypes the paper's detailed figures break out).
pub fn sb_bound_single() -> Vec<Workload> {
    vec![
        single("502.gcc1-like", true, gcc_like(12.0, 0.44)),
        single("502.gcc2-like", true, gcc_like(20.0, 0.46)),
        single("502.gcc3-like", true, gcc_like(28.0, 0.49)),
        single("502.gcc4-like", true, gcc_like(40.0, 0.52)),
        single("502.gcc5-like", true, gcc_like(56.0, 0.56)),
        single(
            "505.mcf-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.42,
                store_fraction: 0.32,
                burst_len_mean: 1.5,
                burst_stride: 8,
                working_set: 256 << 20,
                locality: 0.93,
                // Long-latency stores: pointer-chasing updates miss deep
                // in the 256 MiB arc/node arrays while most loads hit —
                // the paper attributes mcf's SB stalls to exactly this.
                store_locality: Some(0.10),
                hot_set: 48 << 10,
                pointer_chase: 0.40,
                dep_mean: 4.0,
                fp_fraction: 0.0,
                div_fraction: 0.002,
            },
        ),
        single(
            "503.bw2-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.34,
                store_fraction: 0.18,
                burst_len_mean: 4.0,
                burst_stride: 8,
                working_set: 12 << 20,
                locality: 0.9,
                store_locality: None,
                hot_set: 64 << 10,
                pointer_chase: 0.0,
                dep_mean: 3.5,
                fp_fraction: 0.7,
                div_fraction: 0.01,
            },
        ),
        single(
            "507.cactuBSSN-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.40,
                store_fraction: 0.30,
                burst_len_mean: 6.0,
                burst_stride: 8,
                working_set: 160 << 20,
                locality: 0.93,
                store_locality: Some(0.60),
                hot_set: 48 << 10,
                pointer_chase: 0.10,
                dep_mean: 4.0,
                fp_fraction: 0.6,
                div_fraction: 0.01,
            },
        ),
        single(
            "523.xalancbmk-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.40,
                store_fraction: 0.35,
                burst_len_mean: 2.5,
                burst_stride: 8,
                working_set: 48 << 20,
                locality: 0.94,
                store_locality: Some(0.65),
                hot_set: 32 << 10,
                pointer_chase: 0.40,
                dep_mean: 4.0,
                fp_fraction: 0.0,
                div_fraction: 0.002,
            },
        ),
        single(
            "519.lbm-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.40,
                store_fraction: 0.45,
                burst_len_mean: 48.0,
                burst_stride: 8,
                working_set: 96 << 20,
                locality: 0.92,
                store_locality: Some(0.25),
                hot_set: 32 << 10,
                pointer_chase: 0.0,
                dep_mean: 3.0,
                fp_fraction: 0.5,
                div_fraction: 0.002,
            },
        ),
        single(
            "520.omnetpp-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.42,
                store_fraction: 0.34,
                burst_len_mean: 2.0,
                burst_stride: 8,
                working_set: 128 << 20,
                locality: 0.93,
                store_locality: Some(0.60),
                hot_set: 32 << 10,
                pointer_chase: 0.50,
                dep_mean: 4.0,
                fp_fraction: 0.0,
                div_fraction: 0.004,
            },
        ),
        single(
            "557.xz-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.40,
                store_fraction: 0.45,
                burst_len_mean: 8.0,
                burst_stride: 8,
                working_set: 64 << 20,
                locality: 0.95,
                store_locality: Some(0.50),
                hot_set: 64 << 10,
                pointer_chase: 0.15,
                dep_mean: 4.0,
                fp_fraction: 0.0,
                div_fraction: 0.002,
            },
        ),
        single(
            "510.parest-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.36,
                store_fraction: 0.28,
                burst_len_mean: 5.0,
                burst_stride: 8,
                working_set: 40 << 20,
                locality: 0.8,
                store_locality: None,
                hot_set: 48 << 10,
                pointer_chase: 0.05,
                dep_mean: 4.0,
                fp_fraction: 0.7,
                div_fraction: 0.01,
            },
        ),
        single(
            "tf_matmul-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.36,
                store_fraction: 0.30,
                burst_len_mean: 32.0,
                burst_stride: 8,
                working_set: 64 << 20,
                locality: 0.95,
                store_locality: Some(0.50),
                hot_set: 96 << 10,
                pointer_chase: 0.0,
                dep_mean: 3.0,
                fp_fraction: 0.8,
                div_fraction: 0.0,
            },
        ),
        single(
            "tf_conv-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.38,
                store_fraction: 0.32,
                burst_len_mean: 16.0,
                burst_stride: 8,
                working_set: 96 << 20,
                locality: 0.94,
                store_locality: Some(0.45),
                hot_set: 64 << 10,
                pointer_chase: 0.02,
                dep_mean: 3.0,
                fp_fraction: 0.8,
                div_fraction: 0.0,
            },
        ),
        single(
            "tf_embed-like",
            true,
            ArchetypeParams {
                mem_ratio: 0.38,
                store_fraction: 0.45,
                burst_len_mean: 1.3,
                burst_stride: 8,
                working_set: 192 << 20,
                locality: 0.90,
                store_locality: Some(0.30),
                hot_set: 32 << 10,
                pointer_chase: 0.30,
                dep_mean: 4.0,
                fp_fraction: 0.3,
                div_fraction: 0.0,
            },
        ),
    ]
}

/// All single-threaded workloads: the SB-bound set plus the non-SB-bound
/// programs that flatten the S-curves.
pub fn all_single() -> Vec<Workload> {
    let mut v = sb_bound_single();
    v.extend([
        single("500.perlbench-like", false, compute_bound(0.0)),
        single("525.x264-like", false, compute_bound(0.3)),
        single("531.deepsjeng-like", false, compute_bound(0.0)),
        single("541.leela-like", false, compute_bound(0.0)),
        single("508.namd-like", false, compute_bound(0.8)),
        single("511.povray-like", false, compute_bound(0.7)),
        single("526.blender-like", false, compute_bound(0.6)),
        single("538.imagick-like", false, compute_bound(0.7)),
        single("544.nab-like", false, compute_bound(0.8)),
        single("548.exchange2-like", false, compute_bound(0.0)),
    ]);
    v
}

/// The 16-thread PARSEC archetypes (Figures 12 and 14).
pub fn parsec16() -> Vec<Workload> {
    vec![
        parallel(
            "dedup-like",
            ArchetypeParams {
                mem_ratio: 0.42,
                store_fraction: 0.45,
                burst_len_mean: 12.0,
                burst_stride: 8,
                working_set: 32 << 20,
                locality: 0.96,
                store_locality: Some(0.55),
                hot_set: 32 << 10,
                pointer_chase: 0.20,
                dep_mean: 4.0,
                fp_fraction: 0.0,
                div_fraction: 0.002,
            },
            SharingParams {
                shared_fraction: 0.06,
                shared_set: 256 << 10,
                shared_store_fraction: 0.5,
            },
        ),
        parallel(
            "ferret-like",
            ArchetypeParams {
                mem_ratio: 0.40,
                store_fraction: 0.42,
                burst_len_mean: 6.0,
                burst_stride: 16,
                working_set: 24 << 20,
                locality: 0.96,
                store_locality: Some(0.60),
                hot_set: 48 << 10,
                pointer_chase: 0.10,
                dep_mean: 4.0,
                fp_fraction: 0.4,
                div_fraction: 0.005,
            },
            SharingParams {
                shared_fraction: 0.08,
                shared_set: 512 << 10,
                shared_store_fraction: 0.4,
            },
        ),
        parallel(
            "streamcluster-like",
            ArchetypeParams {
                mem_ratio: 0.44,
                store_fraction: 0.40,
                burst_len_mean: 48.0,
                burst_stride: 8,
                working_set: 64 << 20,
                locality: 0.97,
                store_locality: Some(0.30),
                hot_set: 64 << 10,
                pointer_chase: 0.0,
                dep_mean: 3.0,
                fp_fraction: 0.6,
                div_fraction: 0.002,
            },
            SharingParams {
                shared_fraction: 0.04,
                shared_set: 64 << 10,
                shared_store_fraction: 0.3,
            },
        ),
        parallel(
            "canneal-like",
            ArchetypeParams {
                mem_ratio: 0.42,
                store_fraction: 0.35,
                burst_len_mean: 1.3,
                burst_stride: 8,
                working_set: 96 << 20,
                locality: 0.94,
                store_locality: Some(0.40),
                hot_set: 32 << 10,
                pointer_chase: 0.40,
                dep_mean: 4.0,
                fp_fraction: 0.0,
                div_fraction: 0.002,
            },
            SharingParams {
                shared_fraction: 0.08,
                shared_set: 4 << 20,
                shared_store_fraction: 0.5,
            },
        ),
        parallel(
            "fluidanimate-like",
            ArchetypeParams {
                mem_ratio: 0.38,
                store_fraction: 0.32,
                burst_len_mean: 4.0,
                burst_stride: 8,
                working_set: 24 << 20,
                locality: 0.95,
                store_locality: Some(0.70),
                hot_set: 48 << 10,
                pointer_chase: 0.05,
                dep_mean: 3.5,
                fp_fraction: 0.7,
                div_fraction: 0.01,
            },
            SharingParams {
                shared_fraction: 0.10,
                shared_set: 1 << 20,
                shared_store_fraction: 0.4,
            },
        ),
        parallel(
            "bodytrack-like",
            ArchetypeParams {
                mem_ratio: 0.32,
                store_fraction: 0.28,
                burst_len_mean: 3.0,
                burst_stride: 8,
                working_set: 16 << 20,
                locality: 0.85,
                store_locality: None,
                hot_set: 64 << 10,
                pointer_chase: 0.02,
                dep_mean: 3.0,
                fp_fraction: 0.6,
                div_fraction: 0.01,
            },
            SharingParams {
                shared_fraction: 0.05,
                shared_set: 512 << 10,
                shared_store_fraction: 0.3,
            },
        ),
        parallel(
            "blackscholes-like",
            ArchetypeParams {
                mem_ratio: 0.26,
                store_fraction: 0.18,
                burst_len_mean: 2.0,
                burst_stride: 8,
                working_set: 4 << 20,
                locality: 0.95,
                store_locality: None,
                hot_set: 32 << 10,
                pointer_chase: 0.0,
                dep_mean: 3.0,
                fp_fraction: 0.9,
                div_fraction: 0.02,
            },
            SharingParams {
                shared_fraction: 0.005,
                shared_set: 64 << 10,
                shared_store_fraction: 0.1,
            },
        ),
        parallel(
            "swaptions-like",
            ArchetypeParams {
                mem_ratio: 0.28,
                store_fraction: 0.22,
                burst_len_mean: 3.0,
                burst_stride: 8,
                working_set: 8 << 20,
                locality: 0.92,
                store_locality: None,
                hot_set: 48 << 10,
                pointer_chase: 0.0,
                dep_mean: 3.0,
                fp_fraction: 0.8,
                div_fraction: 0.02,
            },
            SharingParams {
                shared_fraction: 0.01,
                shared_set: 128 << 10,
                shared_store_fraction: 0.2,
            },
        ),
        parallel(
            "vips-like",
            ArchetypeParams {
                mem_ratio: 0.36,
                store_fraction: 0.34,
                burst_len_mean: 10.0,
                burst_stride: 8,
                working_set: 48 << 20,
                locality: 0.95,
                store_locality: Some(0.60),
                hot_set: 64 << 10,
                pointer_chase: 0.02,
                dep_mean: 3.5,
                fp_fraction: 0.4,
                div_fraction: 0.005,
            },
            SharingParams {
                shared_fraction: 0.03,
                shared_set: 256 << 10,
                shared_store_fraction: 0.3,
            },
        ),
        parallel(
            "x264-like",
            ArchetypeParams {
                mem_ratio: 0.34,
                store_fraction: 0.30,
                burst_len_mean: 8.0,
                burst_stride: 8,
                working_set: 32 << 20,
                locality: 0.95,
                store_locality: Some(0.70),
                hot_set: 96 << 10,
                pointer_chase: 0.03,
                dep_mean: 3.5,
                fp_fraction: 0.2,
                div_fraction: 0.005,
            },
            SharingParams {
                shared_fraction: 0.04,
                shared_set: 512 << 10,
                shared_store_fraction: 0.35,
            },
        ),
    ]
}

/// Looks a workload up by name across all suites.
pub fn by_name(name: &str) -> Option<Workload> {
    all_single()
        .into_iter()
        .chain(parsec16())
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_shape() {
        let sb = sb_bound_single();
        assert!(sb.len() >= 12, "SB-bound suite too small: {}", sb.len());
        assert!(sb.iter().all(|w| w.sb_bound && !w.parallel));
        let all = all_single();
        assert!(all.len() > sb.len());
        let par = parsec16();
        assert!(par.len() >= 10);
        assert!(par.iter().all(|w| w.parallel));
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = all_single()
            .iter()
            .chain(parsec16().iter())
            .map(|w| w.name)
            .collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn by_name_finds_workloads() {
        assert!(by_name("505.mcf-like").is_some());
        assert!(by_name("dedup-like").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn traces_produce_disjoint_private_regions() {
        let w = by_name("dedup-like").expect("exists");
        let mut traces = w.traces(2, 1, 2000);
        let shared = crate::archetype::SHARED_BASE..crate::archetype::SHARED_BASE + (16 << 20);
        let collect = |t: &mut Box<dyn TraceSource>| {
            let mut v = Vec::new();
            while let Some(i) = t.next_inst() {
                if i.op.is_mem() && !shared.contains(&i.addr.raw()) {
                    v.push(i.addr.raw());
                }
            }
            v
        };
        let a = collect(&mut traces[0]);
        let b = collect(&mut traces[1]);
        assert!(!a.is_empty() && !b.is_empty());
        let max_a = a.iter().max().expect("nonempty");
        let min_b = b.iter().min().expect("nonempty");
        assert!(max_a < min_b, "private regions overlap");
    }

    #[test]
    fn gcc5_burstier_than_gcc1() {
        let burst = |name: &str| {
            let w = by_name(name).expect("exists");
            let mut t = w.traces(1, 3, 20_000).remove(0);
            let mut insts = Vec::new();
            while let Some(i) = t.next_inst() {
                insts.push(i);
            }
            insts
                .windows(2)
                .filter(|p| {
                    p[0].op == tus_cpu::OpClass::Store
                        && p[1].op == tus_cpu::OpClass::Store
                        && p[1].addr.raw() == p[0].addr.raw() + 8
                })
                .count()
        };
        assert!(burst("502.gcc5-like") > burst("502.gcc1-like"));
    }
}
