//! Calendar queue for the event-driven simulation kernel.
//!
//! Each schedulable *unit* (the memory fabric, one per-core slice) owns a
//! small integer id and at most one live key in the calendar: the earliest
//! cycle at which ticking that unit could change machine state (the same
//! [`Schedulable`] contract the idle-skipping kernel scans for, but kept
//! incrementally instead of recomputed machine-wide every cycle).
//!
//! # Ordering
//!
//! Entries pop in `(due, id)` order: strictly by due cycle, with the unit
//! id breaking ties. The event kernel assigns id 0 to the memory fabric
//! and id `1 + i` to core `i`, so same-cycle pops reproduce the lockstep
//! tick order (memory first, then cores ascending) exactly — this is what
//! keeps statistics bit-identical across kernels.
//!
//! # Lazy stale-entry invalidation
//!
//! A binary heap cannot cheaply remove or decrease a key, so [`schedule`]
//! never removes the old entry: it bumps a per-unit *stamp* and pushes a
//! new entry carrying the new stamp. Entries whose stamp no longer matches
//! are *stale* and are discarded lazily when they surface at the top of
//! the heap. [`pop_due`] consumes the unit's live key — the kernel must
//! call [`schedule`] again after ticking the unit (or the unit stays
//! unscheduled, i.e. quiesced).
//!
//! # Near-term buckets
//!
//! On a busy cycle the kernel pops every unit and most of them reschedule
//! for the *very next* cycle — under lockstep-like load the heap would
//! absorb and re-sift ~2·units entries per cycle just to reproduce
//! "everyone again, one cycle later". Two sorted bucket vectors short
//! that circuit: keys equal to the last-rolled cycle ([`pop_due`]'s
//! `now`) or the cycle after it are kept in `near`/`near2`, where a
//! schedule is an append and a pop advances a cursor; everything farther
//! out (or scheduled before the first pop after an idle jump) takes the
//! general heap path. Bucket entries carry no stamps — an entry is live
//! iff the unit's authoritative `keys` slot still equals the bucket's
//! cycle, which is the same lazy-invalidation idea with the bucket's
//! fixed due standing in for the heap entry's `(due, stamp)` pair. The
//! pop order — strictly `(due, id)` ascending — is preserved by merging
//! the bucket cursor with the heap head at every pop.
//!
//! [`schedule`]: Calendar::schedule
//! [`pop_due`]: Calendar::pop_due

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sched::Schedulable;
use crate::types::Cycle;

/// One heap entry: `(due, id)` gives the pop order, `stamp` identifies
/// whether the entry is still the unit's live key.
type Entry = (Reverse<(Cycle, usize)>, u64);

/// Priority queue of unit next-work keys with lazy stale-entry removal.
#[derive(Debug, Default)]
pub struct Calendar {
    heap: BinaryHeap<Entry>,
    /// `keys[id]`: the unit's live key, or `None` if unscheduled.
    keys: Vec<Option<Cycle>>,
    /// `stamps[id]`: bumped on every schedule/pop so older heap entries
    /// for the unit become stale.
    stamps: Vec<u64>,
    /// Unit ids with key `== near_due`, ascending; `near_pos..` is the
    /// un-popped tail. An entry is live iff `keys[id] == Some(near_due)`.
    near: Vec<usize>,
    /// Unit ids with key `== near_due + 1`, ascending.
    near2: Vec<usize>,
    near_pos: usize,
    /// The cycle `near` holds keys for — the `now` of the last
    /// [`Calendar::pop_due`] roll (buckets start at cycle zero).
    near_due: Cycle,
}

impl Calendar {
    /// An empty calendar for `units` schedulable units (ids `0..units`).
    pub fn new(units: usize) -> Calendar {
        Calendar {
            heap: BinaryHeap::with_capacity(units * 2),
            keys: vec![None; units],
            stamps: vec![0; units],
            near: Vec::with_capacity(units),
            near2: Vec::with_capacity(units),
            near_pos: 0,
            near_due: Cycle::ZERO,
        }
    }

    /// Number of units this calendar tracks.
    pub fn units(&self) -> usize {
        self.keys.len()
    }

    /// The unit's current live key, if scheduled.
    pub fn key(&self, id: usize) -> Option<Cycle> {
        self.keys[id]
    }

    /// (Re)schedules unit `id` at cycle `due`, replacing any previous key.
    /// The old heap or bucket entry (if any) goes stale and is discarded
    /// lazily. A no-op when `due` already is the unit's live key.
    pub fn schedule(&mut self, id: usize, due: Cycle) {
        if self.keys[id] == Some(due) {
            return;
        }
        self.keys[id] = Some(due);
        self.stamps[id] += 1;
        if due == self.near_due {
            Self::bucket_insert(&mut self.near, self.near_pos, id);
        } else if due == self.near_due + 1 {
            Self::bucket_insert(&mut self.near2, 0, id);
        } else {
            self.heap.push((Reverse((due, id)), self.stamps[id]));
        }
    }

    /// Inserts `id` into the live tail (`from..`) of a sorted bucket,
    /// keeping it sorted; a no-op if already present there. Entries
    /// before `from` are already popped and never revive — a unit
    /// rescheduled to the same cycle after its pop gets a fresh entry in
    /// the tail.
    fn bucket_insert(bucket: &mut Vec<usize>, from: usize, id: usize) {
        let tail = &bucket[from..];
        match tail.binary_search(&id) {
            Ok(_) => {}
            Err(i) => bucket.insert(from + i, id),
        }
    }

    /// Removes unit `id`'s key (the unit reports no pending work at all).
    pub fn unschedule(&mut self, id: usize) {
        if self.keys[id].is_some() {
            self.keys[id] = None;
            self.stamps[id] += 1;
        }
    }

    /// Discards stale heap heads until the top entry is live.
    fn settle(&mut self) {
        while let Some(&(Reverse((due, id)), stamp)) = self.heap.peek() {
            if self.stamps[id] == stamp && self.keys[id] == Some(due) {
                break;
            }
            self.heap.pop();
        }
    }

    /// First live entry in a bucket holding keys for `due`, skipping (and
    /// permanently discarding, via the cursor) stale leading entries.
    fn bucket_head(keys: &[Option<Cycle>], bucket: &[usize], pos: &mut usize, due: Cycle) -> Option<usize> {
        while let Some(&id) = bucket.get(*pos) {
            if keys[id] == Some(due) {
                return Some(id);
            }
            *pos += 1;
        }
        None
    }

    /// Earliest live key over all units, or `None` when every unit is
    /// unscheduled (machine quiesced).
    pub fn next_key(&mut self) -> Option<Cycle> {
        self.settle();
        let mut best = self.heap.peek().map(|&(Reverse((due, _)), _)| due);
        if Self::bucket_head(&self.keys, &self.near, &mut self.near_pos, self.near_due).is_some() {
            best = Some(best.map_or(self.near_due, |b| b.min(self.near_due)));
        }
        let mut p2 = 0;
        if Self::bucket_head(&self.keys, &self.near2, &mut p2, self.near_due + 1).is_some() {
            let d2 = self.near_due + 1;
            best = Some(best.map_or(d2, |b| b.min(d2)));
        }
        best
    }

    /// Rolls the near buckets forward to `now`: live leftovers (keys in
    /// the past are still deliverable) migrate to the heap, and when the
    /// clock moved exactly one cycle the `near2` bucket becomes `near`.
    fn roll_to(&mut self, now: Cycle) {
        if now == self.near_due {
            return;
        }
        for i in self.near_pos..self.near.len() {
            let id = self.near[i];
            if self.keys[id] == Some(self.near_due) {
                self.heap.push((Reverse((self.near_due, id)), self.stamps[id]));
            }
        }
        self.near.clear();
        self.near_pos = 0;
        if now == self.near_due + 1 {
            std::mem::swap(&mut self.near, &mut self.near2);
        } else {
            let d2 = self.near_due + 1;
            for &id in &self.near2 {
                if self.keys[id] == Some(d2) {
                    self.heap.push((Reverse((d2, id)), self.stamps[id]));
                }
            }
            self.near2.clear();
        }
        self.near_due = now;
    }

    /// Pops the next unit whose key is `<= now`, consuming its key. Units
    /// tied on the same cycle pop in ascending id order. Returns `None`
    /// when no unit is due at `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<usize> {
        self.roll_to(now);
        self.settle();
        // After the roll `near` holds keys for `now` itself and `near2`
        // for the future, so the only merge needed is near-head vs
        // heap-head on the full `(due, id)` order.
        let heap_top = self.heap.peek().map(|&(Reverse(k), _)| k);
        let near_top =
            Self::bucket_head(&self.keys, &self.near, &mut self.near_pos, self.near_due)
                .map(|id| (self.near_due, id));
        let (due, id, from_near) = match (near_top, heap_top) {
            (Some(n), Some(h)) if h < n => (h.0, h.1, false),
            (Some(n), _) => (n.0, n.1, true),
            (None, Some(h)) => (h.0, h.1, false),
            (None, None) => return None,
        };
        if due > now {
            return None;
        }
        if from_near {
            self.near_pos += 1;
        } else {
            self.heap.pop();
        }
        self.keys[id] = None;
        self.stamps[id] += 1;
        Some(id)
    }

    /// Clears every key and stale entry (used when the kernel re-seeds the
    /// calendar conservatively at the start of a run).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.near.clear();
        self.near2.clear();
        self.near_pos = 0;
        self.near_due = Cycle::ZERO;
        for k in &mut self.keys {
            *k = None;
        }
    }
}

/// Merged gang calendar: orders the *members* of a simulation gang by
/// local virtual time.
///
/// A gang runs K seed-varied member simulations in one interleaved pass.
/// Each member owns a per-member [`Calendar`] ordering its internal units
/// by `(due, unit)`; this queue merges the members themselves by
/// `(due, sim)`, where `due` is the member's local clock (the cycle its
/// next kernel step will act on). Popping the minimum and then letting
/// the member's own calendar pick its due units realizes the full
/// `(due, sim, unit)` order: strictly by virtual time, sims ascending on
/// ties, units ascending within a sim.
///
/// Unlike [`Calendar`], members never *move* a pending key — a member's
/// clock is monotone, and the gang re-keys a member only after popping
/// it — so there are no stale entries and no stamps: each scheduled
/// member has exactly one live heap entry. Members retire individually
/// (finish, deadlock, budget): a retired member simply is not
/// rescheduled, and the gang drains until the heap is empty.
#[derive(Debug, Default)]
pub struct GangCalendar {
    heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// `keys[sim]`: the member's live key, or `None` when the member is
    /// not scheduled (retired, or popped and not yet re-keyed).
    keys: Vec<Option<Cycle>>,
}

impl GangCalendar {
    /// An empty gang calendar for `members` member slots (ids
    /// `0..members`).
    pub fn new(members: usize) -> GangCalendar {
        GangCalendar {
            heap: BinaryHeap::with_capacity(members),
            keys: vec![None; members],
        }
    }

    /// Number of member slots.
    pub fn members(&self) -> usize {
        self.keys.len()
    }

    /// The member's current live key, if scheduled.
    pub fn key(&self, sim: usize) -> Option<Cycle> {
        self.keys[sim]
    }

    /// Number of currently scheduled members.
    pub fn scheduled(&self) -> usize {
        self.keys.iter().flatten().count()
    }

    /// Schedules member `sim` at its local cycle `due`.
    ///
    /// # Panics
    ///
    /// Panics if the member is already scheduled (the gang must pop a
    /// member before re-keying it — this is what keeps the heap free of
    /// stale entries) or if `due` would move the member backwards past an
    /// already-popped key (member clocks are monotone).
    pub fn schedule(&mut self, sim: usize, due: Cycle) {
        assert!(
            self.keys[sim].is_none(),
            "gang member {sim} scheduled twice without an intervening pop"
        );
        self.keys[sim] = Some(due);
        self.heap.push(Reverse((due, sim)));
    }

    /// Pops the globally earliest `(due, sim)` entry, consuming the
    /// member's key. Returns `None` when every member is retired.
    pub fn pop_min(&mut self) -> Option<(Cycle, usize)> {
        let Reverse((due, sim)) = self.heap.pop()?;
        debug_assert_eq!(self.keys[sim], Some(due), "gang heap entry went stale");
        self.keys[sim] = None;
        Some((due, sim))
    }
}

impl Schedulable for Calendar {
    /// A calendar full of keys is itself schedulable: its next work is its
    /// earliest live key. (Requires `&mut self` internally, so this clones
    /// the settle logic read-only: stale heads are skipped, not popped.)
    fn next_work(&self, _now: Cycle) -> Option<Cycle> {
        // Read-only fallback: the heap may have stale heads, so fold over
        // the live per-unit keys instead. O(units), used only in tests and
        // assertions — the kernel calls `next_key` on the hot path.
        self.keys.iter().flatten().min().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_due_then_id_order() {
        let mut c = Calendar::new(4);
        c.schedule(2, Cycle::new(5));
        c.schedule(0, Cycle::new(9));
        c.schedule(1, Cycle::new(5));
        c.schedule(3, Cycle::new(2));
        assert_eq!(c.pop_due(Cycle::new(10)), Some(3));
        // Tie on cycle 5: ascending id.
        assert_eq!(c.pop_due(Cycle::new(10)), Some(1));
        assert_eq!(c.pop_due(Cycle::new(10)), Some(2));
        assert_eq!(c.pop_due(Cycle::new(10)), Some(0));
        assert_eq!(c.pop_due(Cycle::new(10)), None);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut c = Calendar::new(2);
        c.schedule(0, Cycle::new(7));
        assert_eq!(c.pop_due(Cycle::new(6)), None);
        assert_eq!(c.key(0), Some(Cycle::new(7)), "undelivered key survives");
        assert_eq!(c.pop_due(Cycle::new(7)), Some(0));
        assert_eq!(c.key(0), None, "pop consumes the key");
    }

    #[test]
    fn reschedule_makes_old_entry_stale() {
        let mut c = Calendar::new(2);
        c.schedule(0, Cycle::new(3));
        c.schedule(0, Cycle::new(8)); // moves later: entry at 3 is stale
        assert_eq!(c.pop_due(Cycle::new(5)), None, "stale early entry not delivered");
        assert_eq!(c.next_key(), Some(Cycle::new(8)));
        c.schedule(0, Cycle::new(4)); // moves earlier again
        assert_eq!(c.pop_due(Cycle::new(5)), Some(0));
        assert_eq!(c.pop_due(Cycle::new(100)), None, "both stale entries gone");
    }

    #[test]
    fn unschedule_quiesces_unit() {
        let mut c = Calendar::new(2);
        c.schedule(0, Cycle::new(3));
        c.schedule(1, Cycle::new(4));
        c.unschedule(0);
        assert_eq!(c.next_key(), Some(Cycle::new(4)));
        assert_eq!(c.pop_due(Cycle::new(100)), Some(1));
        assert_eq!(c.next_key(), None);
    }

    #[test]
    fn schedule_same_key_is_idempotent() {
        let mut c = Calendar::new(1);
        for _ in 0..1000 {
            c.schedule(0, Cycle::new(5));
        }
        assert_eq!(c.heap.len(), 1, "idempotent reschedule must not grow the heap");
        assert_eq!(c.pop_due(Cycle::new(5)), Some(0));
        assert_eq!(c.pop_due(Cycle::new(5)), None);
    }

    /// Property: against a randomized schedule/unschedule/pop workload the
    /// calendar behaves exactly like the naive model (a `Vec<Option<Cycle>>`
    /// scanned for its minimum with id tie-break), and stale entries are
    /// never delivered.
    #[test]
    fn randomized_against_naive_model() {
        let mut rng = SimRng::seed(0xca1e).fork(1);
        for round in 0..50 {
            let units = 1 + (rng.bits() % 8) as usize;
            let mut cal = Calendar::new(units);
            let mut model: Vec<Option<Cycle>> = vec![None; units];
            let mut now = Cycle::ZERO;
            for _ in 0..400 {
                match rng.bits() % 4 {
                    0 | 1 => {
                        let id = (rng.bits() % units as u64) as usize;
                        let due = now + rng.bits() % 20;
                        cal.schedule(id, due);
                        model[id] = Some(due);
                    }
                    2 => {
                        let id = (rng.bits() % units as u64) as usize;
                        cal.unschedule(id);
                        model[id] = None;
                    }
                    _ => {
                        // Drain everything due at `now`, in model order.
                        loop {
                            let expect = model
                                .iter()
                                .enumerate()
                                .filter_map(|(id, k)| k.map(|c| (c, id)))
                                .min();
                            match (cal.pop_due(now), expect) {
                                (got, Some((due, id))) if due <= now => {
                                    assert_eq!(got, Some(id), "round {round}: pop order");
                                    model[id] = None;
                                }
                                (got, _) => {
                                    assert_eq!(got, None, "round {round}: spurious pop");
                                    break;
                                }
                            }
                        }
                        now += 1 + rng.bits() % 5;
                    }
                }
                let expect_min = model.iter().flatten().min().copied();
                assert_eq!(cal.next_key(), expect_min, "round {round}: next_key");
                assert_eq!(cal.next_work(now), expect_min, "round {round}: next_work");
            }
        }
    }

    /// Gang entries pop strictly in `(due, sim)` order, and a popped
    /// member stays out until re-keyed.
    #[test]
    fn gang_pops_in_due_then_sim_order() {
        let mut g = GangCalendar::new(4);
        g.schedule(2, Cycle::new(5));
        g.schedule(0, Cycle::new(9));
        g.schedule(1, Cycle::new(5));
        g.schedule(3, Cycle::new(2));
        assert_eq!(g.scheduled(), 4);
        assert_eq!(g.pop_min(), Some((Cycle::new(2), 3)));
        // Tie on cycle 5: ascending member id.
        assert_eq!(g.pop_min(), Some((Cycle::new(5), 1)));
        assert_eq!(g.pop_min(), Some((Cycle::new(5), 2)));
        assert_eq!(g.key(0), Some(Cycle::new(9)));
        assert_eq!(g.pop_min(), Some((Cycle::new(9), 0)));
        assert_eq!(g.pop_min(), None, "all members retired");
    }

    /// A retired member (never re-keyed after its pop) does not block the
    /// drain; re-keyed members keep interleaving by virtual time.
    #[test]
    fn gang_members_retire_individually() {
        let mut g = GangCalendar::new(3);
        for sim in 0..3 {
            g.schedule(sim, Cycle::ZERO);
        }
        let mut pops = Vec::new();
        while let Some((due, sim)) = g.pop_min() {
            pops.push((due, sim));
            // Member 1 retires immediately; the others advance by
            // different strides until cycle 12.
            let stride = if sim == 0 { 3 } else { 5 };
            if sim != 1 && due < Cycle::new(12) {
                g.schedule(sim, due + stride);
            }
        }
        // Virtual time never goes backwards across pops.
        assert!(pops.windows(2).all(|w| w[0] <= w[1]), "{pops:?}");
        assert_eq!(pops.iter().filter(|p| p.1 == 1).count(), 1, "member 1 popped once");
        assert!(pops.iter().filter(|p| p.1 == 0).count() > 3);
        assert_eq!(g.scheduled(), 0);
    }

    /// The no-stale-entry contract: double-scheduling a member panics.
    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn gang_rejects_double_schedule() {
        let mut g = GangCalendar::new(2);
        g.schedule(0, Cycle::new(1));
        g.schedule(0, Cycle::new(2));
    }

    /// Property (satellite): the idle-jump arithmetic the kernel uses —
    /// `n = next_key - now` when the key is in the future — always lands
    /// the clock exactly on the calendar's next key, never past it.
    #[test]
    fn idle_jump_arithmetic_agrees_with_next_key() {
        let mut rng = SimRng::seed(77).fork(2);
        let mut cal = Calendar::new(4);
        let mut now = Cycle::ZERO;
        for _ in 0..500 {
            let id = (rng.bits() % 4) as usize;
            cal.schedule(id, now + 1 + rng.bits() % 30);
            while cal.pop_due(now).is_some() {}
            if let Some(key) = cal.next_key() {
                assert!(key > now, "all due units were popped");
                let n = key - now;
                now += n;
                assert_eq!(cal.next_key(), Some(now), "jump lands on the key");
                assert!(cal.pop_due(now).is_some(), "key is deliverable after jump");
            }
        }
    }
}
