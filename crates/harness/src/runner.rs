//! Single-simulation execution with warm-up subtraction, plus the
//! gang-scheduled lane path (all seeds of a lane in one interleaved
//! pass; see [`tus::SystemGang`]).

use tus::{RunGoal, StepOutcome, System, SystemGang};
use tus_energy::{EnergyBreakdown, EnergyModel};
use tus_sim::stats::names;
use tus_sim::{CoherenceKind, KernelKind, PolicyKind, SimConfig, StatSet};
use tus_workloads::Workload;

/// Version stamp of the simulator's observable behaviour, folded into
/// every [`RunSpec::memo_key`].
///
/// Bump this whenever a simulator change can alter any run's measured
/// output (timing, drain policies, cache geometry, energy model, stat
/// definitions): the new keys miss the on-disk `.runcache/`, forcing
/// regeneration instead of silently serving stale results recorded by
/// an older simulator.
///
/// v1 — implicit (unversioned keys, PR 1); v2 — deadlock-reporting and
/// lex tie-break changes; v3 — keys gained the simulation-kernel
/// dimension (lockstep vs idle-skipping); v4 — the event-driven kernel
/// became the default (`kernel=event` in default keys), so every cached
/// result records which kernel produced it under the new three-kernel
/// selector; v5 — keys gained the coherence-backend dimension
/// (`mesi` vs `tardis`), so results recorded before the pluggable
/// backend contract existed can never be served for a backend-qualified
/// spec.
pub const CACHE_FORMAT_VERSION: u32 = 5;

/// Run-length scaling: experiments default to laptop-friendly lengths;
/// `Full` approaches paper-like (still far below 2 B instructions, but
/// the archetypes reach steady state quickly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test lengths (CI).
    Quick,
    /// Default lengths.
    Normal,
    /// Long runs.
    Full,
}

impl Scale {
    /// Stable label (wire protocol, cache keys of derived artifacts).
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Normal => "normal",
            Scale::Full => "full",
        }
    }

    /// Parses a [`Scale::label`].
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "normal" => Some(Scale::Normal),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Instructions measured per core for single-thread runs.
    pub fn insts_single(self) -> u64 {
        match self {
            Scale::Quick => 40_000,
            Scale::Normal => 300_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Instructions measured per core for 16-core runs.
    pub fn insts_parallel(self) -> u64 {
        match self {
            Scale::Quick => 10_000,
            Scale::Normal => 60_000,
            Scale::Full => 400_000,
        }
    }

    /// Warm-up instructions per core (subtracted from the measurement).
    pub fn warmup(self) -> u64 {
        match self {
            Scale::Quick => 5_000,
            Scale::Normal => 50_000,
            Scale::Full => 200_000,
        }
    }
}

/// A named configuration tweak (ablations).
///
/// The name participates in the run's [`RunSpec::memo_key`], so it must
/// uniquely identify the tweak's effect on the configuration.
#[derive(Clone, Copy)]
pub struct Tweak {
    /// Stable identifier (part of the memo/cache key).
    pub name: &'static str,
    /// The configuration edit.
    pub apply: fn(&mut tus_sim::SimConfigBuilder),
}

impl std::fmt::Debug for Tweak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tweak").field("name", &self.name).finish()
    }
}

/// Specification of one simulation run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The workload.
    pub workload: Workload,
    /// Drain policy.
    pub policy: PolicyKind,
    /// SB entries.
    pub sb_entries: usize,
    /// Core count (1, or 16 for PARSEC).
    pub cores: usize,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub insts: u64,
    /// Seed.
    pub seed: u64,
    /// Simulation kernel (lockstep or idle-skipping). The kernels are
    /// observationally identical, but the key keeps them distinct so an
    /// equivalence sweep actually runs both instead of hitting the cache.
    pub kernel: KernelKind,
    /// Coherence backend (MESI directory or Tardis timestamps). Unlike
    /// the kernel, backends are *not* observationally identical — leases
    /// change timing — so the dimension must split both memo and lane
    /// keys.
    pub coherence: CoherenceKind,
    /// Extra configuration hook (ablations).
    pub tweak: Option<Tweak>,
}

impl RunSpec {
    /// Builds a spec with defaults from a workload, policy, SB size and
    /// scale.
    pub fn new(workload: Workload, policy: PolicyKind, sb_entries: usize, scale: Scale) -> Self {
        let cores = if workload.parallel { 16 } else { 1 };
        let insts = if workload.parallel {
            scale.insts_parallel()
        } else {
            scale.insts_single()
        };
        RunSpec {
            workload,
            policy,
            sb_entries,
            cores,
            warmup: scale.warmup().min(insts / 2),
            insts,
            seed: 42,
            kernel: KernelKind::default(),
            coherence: CoherenceKind::default(),
            tweak: None,
        }
    }

    /// A stable content key identifying the simulation this spec runs.
    ///
    /// Two specs with equal keys produce bit-identical [`RunResult`]s
    /// (simulations are seeded and deterministic), so the executor
    /// memoizes on it, in process and on disk. Every input that can
    /// change the outcome participates: the simulator behaviour version
    /// ([`CACHE_FORMAT_VERSION`]), workload (named, static parameters),
    /// policy, SB size, core count, run lengths, seed, simulation kernel,
    /// and the ablation tweak's name.
    pub fn memo_key(&self) -> String {
        self.memo_key_versioned(CACHE_FORMAT_VERSION)
    }

    /// [`RunSpec::memo_key`] under an explicit version stamp (tests).
    pub(crate) fn memo_key_versioned(&self, version: u32) -> String {
        format!(
            "v{}|{}|{}|sb{}|c{}|w{}|i{}|s{}|k{}|co{}|{}",
            version,
            self.workload.name,
            self.policy.label(),
            self.sb_entries,
            self.cores,
            self.warmup,
            self.insts,
            self.seed,
            self.kernel.label(),
            self.coherence.label(),
            self.tweak.map_or("-", |t| t.name),
        )
    }

    /// The spec's *lane*: every memo-key dimension except the seed.
    ///
    /// Two specs in the same lane simulate the same machine on the same
    /// workload shape and differ only in their random seed, so a batch
    /// executor can build the [`SimConfig`] and energy model once and
    /// run the whole lane on one worker ([`run_lane`]).
    pub fn lane_key(&self) -> String {
        format!(
            "v{}|{}|{}|sb{}|c{}|w{}|i{}|k{}|co{}|{}",
            CACHE_FORMAT_VERSION,
            self.workload.name,
            self.policy.label(),
            self.sb_entries,
            self.cores,
            self.warmup,
            self.insts,
            self.kernel.label(),
            self.coherence.label(),
            self.tweak.map_or("-", |t| t.name),
        )
    }

    fn config(&self) -> SimConfig {
        let mut b = SimConfig::builder();
        b.cores(self.cores)
            .sb_entries(self.sb_entries)
            .policy(self.policy)
            .kernel(self.kernel)
            .coherence(self.coherence);
        if let Some(t) = self.tweak {
            (t.apply)(&mut b);
        }
        b.build()
    }
}

/// The measured outcome of one run (warm-up already subtracted).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measured cycles.
    pub cycles: f64,
    /// Committed instructions across cores in the measured window.
    pub committed: f64,
    /// System IPC over the measured window.
    pub ipc: f64,
    /// SB-induced dispatch-stall cycles as a fraction of cycles (averaged
    /// over cores).
    pub sb_stall_frac: f64,
    /// Energy breakdown of the measured window.
    pub energy: EnergyBreakdown,
    /// Energy-delay product.
    pub edp: f64,
    /// Raw (delta) statistics.
    pub stats: StatSet,
}

/// The default cycle budget for a spec: generous, because the slowest
/// archetypes run at IPC ~0.05. Callers (the `serve` daemon in
/// particular) can impose a tighter per-request budget via
/// [`try_run_budget`]; the budget is an **absolute** cycle ceiling for
/// the whole run, warm-up included.
pub fn default_budget(spec: &RunSpec) -> u64 {
    400 * (spec.warmup + spec.insts) + 2_000_000
}

/// Executes one run: builds the system, warms it up, measures, and
/// subtracts the warm-up counters.
///
/// # Panics
///
/// Panics with the rendered [`tus::DeadlockReport`] if the run trips the
/// progress watchdog — use [`try_run`] where a structured error is
/// needed (the daemon, budget-limited requests).
pub fn run(spec: &RunSpec) -> RunResult {
    try_run(spec).unwrap_or_else(|r| panic!("simulation gave up:\n{r}"))
}

/// Fallible [`run`]: a watchdog trip or budget exhaustion comes back as
/// a structured [`tus::DeadlockReport`] instead of a panic.
pub fn try_run(spec: &RunSpec) -> Result<RunResult, Box<tus::DeadlockReport>> {
    try_run_budget(spec, None)
}

/// [`try_run`] under an explicit cycle budget (absolute ceiling on
/// simulated cycles; `None` = [`default_budget`]). An over-budget run
/// returns the simulator's [`tus::DeadlockReport`] — this is the entry
/// point the daemon uses to enforce per-client cycle budgets.
pub fn try_run_budget(
    spec: &RunSpec,
    budget: Option<u64>,
) -> Result<RunResult, Box<tus::DeadlockReport>> {
    let cfg = spec.config();
    let model = EnergyModel::from_config(&cfg);
    try_run_with(spec, &cfg, &model, budget)
}

/// Executes a *lane* gang-scheduled ([`run_lane_mode`] with gang on) —
/// the executor's default path.
pub fn run_lane(specs: &[RunSpec]) -> Vec<RunResult> {
    run_lane_mode(specs, true)
}

/// Executes a *lane*: specs sharing one [`RunSpec::lane_key`] (identical
/// machine configuration, differing only in seed). The [`SimConfig`] and
/// [`EnergyModel`] are built once and shared across the lane, amortizing
/// per-run setup; each result is bit-identical to a standalone [`run`]
/// because both construction paths are pure functions of the spec.
///
/// With `gang` on, all K seed-varied members execute in **one
/// interleaved pass** under a [`SystemGang`]: a merged calendar pops
/// whichever member's local clock is earliest, members retire
/// individually on finish/deadlock/budget, and — because members are
/// fully independent machines — every result is still bit-identical to
/// the per-sim path (`gang` off), which the CI gang-equivalence job
/// enforces by diffing the CSV trees.
pub fn run_lane_mode(specs: &[RunSpec], gang: bool) -> Vec<RunResult> {
    let Some(first) = specs.first() else {
        return Vec::new();
    };
    let cfg = first.config();
    let model = EnergyModel::from_config(&cfg);
    debug_assert!(
        specs.iter().all(|s| s.lane_key() == first.lane_key()),
        "run_lane requires config-identical specs"
    );
    if gang {
        return run_lane_gang(specs, &cfg, &model);
    }
    specs
        .iter()
        .map(|s| {
            try_run_with(s, &cfg, &model, None)
                .unwrap_or_else(|r| panic!("simulation gave up:\n{r}"))
        })
        .collect()
}

/// The gang lane: build every member system, run one interleaved
/// warm-up phase, then one interleaved measure phase, and assemble each
/// member's result exactly as the solo path does. Warm-up and measure
/// are separate gang phases — the same two back-to-back `run_committed`
/// calls a solo run makes, so per-member snapshots cannot differ.
fn run_lane_gang(specs: &[RunSpec], cfg: &SimConfig, model: &EnergyModel) -> Vec<RunResult> {
    let first = &specs[0];
    let total = first.warmup + first.insts;
    let budget = default_budget(first);
    let systems = specs.iter().map(|s| build_system(s, cfg)).collect();
    let mut gang = SystemGang::new(systems);
    let warms = if first.warmup > 0 {
        gang.run_phase(RunGoal::Committed(first.warmup), budget)
    } else {
        specs.iter().map(|_| Ok(StatSet::new())).collect()
    };
    let ends = gang.run_phase(RunGoal::Committed(total), budget);
    specs
        .iter()
        .zip(warms.into_iter().zip(ends))
        .map(|(spec, (warm, end))| {
            let warm = warm.unwrap_or_else(|r| panic!("simulation gave up:\n{r}"));
            let end = end.unwrap_or_else(|r| panic!("simulation gave up:\n{r}"));
            assemble_result(spec, model, &warm, &end)
        })
        .collect()
}

/// Builds the member system a spec describes (pure function of the
/// spec, shared by the solo and gang paths).
fn build_system(spec: &RunSpec, cfg: &SimConfig) -> System {
    let total = spec.warmup + spec.insts;
    let traces = spec.workload.traces(spec.cores, spec.seed, total + 10_000);
    System::new(cfg, traces, spec.seed)
}

/// Subtracts the warm-up snapshot and derives the measured metrics —
/// the single place a [`RunResult`] is assembled, so the solo, gang and
/// wall-clock paths cannot drift apart.
fn assemble_result(
    spec: &RunSpec,
    model: &EnergyModel,
    warm: &StatSet,
    end: &StatSet,
) -> RunResult {
    let stats = end.minus(warm);
    let cycles = stats.get(names::CYCLES).max(1.0);
    let committed = stats.get(names::TOTAL_COMMITTED);
    let sb_stall_frac = (0..spec.cores)
        .map(|i| stats.get(&names::core_cpu(i, names::STALL_SB)))
        .sum::<f64>()
        / (cycles * spec.cores as f64);
    let energy = model.evaluate(&stats);
    let edp = energy.edp();
    RunResult {
        cycles,
        committed,
        ipc: committed / cycles,
        sb_stall_frac,
        energy,
        edp,
        stats,
    }
}

fn try_run_with(
    spec: &RunSpec,
    cfg: &SimConfig,
    model: &EnergyModel,
    budget: Option<u64>,
) -> Result<RunResult, Box<tus::DeadlockReport>> {
    let mut sys = build_system(spec, cfg);
    let total = spec.warmup + spec.insts;
    let budget = budget.unwrap_or_else(|| default_budget(spec));
    let warm = if spec.warmup > 0 {
        sys.try_run_committed(spec.warmup, budget)?
    } else {
        StatSet::new()
    };
    let end = sys.try_run_committed(total, budget)?;
    Ok(assemble_result(spec, model, &warm, &end))
}

/// How many kernel steps a wall-clock-bounded run takes between host
/// clock reads. One read is ~20 ns against steps of ~1 µs, so expiry is
/// detected within about a millisecond at negligible overhead.
const WALL_CHECK_STEPS: u32 = 1024;

/// [`try_run_budget`] additionally bounded by a **wall-clock** deadline
/// of `wall_ms` milliseconds over the whole run (warm-up included) —
/// the daemon's `wall_ms=` per-request budget. The simulated machine
/// never reads the host clock: the deadline is checked between kernel
/// steps, and expiry returns a structured
/// [`tus::DeadlockKind::WallClockExpired`] report. A run that finishes
/// in time is bit-identical to [`try_run_budget`].
pub fn try_run_wall(
    spec: &RunSpec,
    budget: Option<u64>,
    wall_ms: u64,
) -> Result<RunResult, Box<tus::DeadlockReport>> {
    let cfg = spec.config();
    let model = EnergyModel::from_config(&cfg);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wall_ms);
    let mut sys = build_system(spec, &cfg);
    let total = spec.warmup + spec.insts;
    let budget = budget.unwrap_or_else(|| default_budget(spec));
    let warm = if spec.warmup > 0 {
        step_until(&mut sys, RunGoal::Committed(spec.warmup), budget, deadline, wall_ms)?
    } else {
        StatSet::new()
    };
    let end = step_until(&mut sys, RunGoal::Committed(total), budget, deadline, wall_ms)?;
    Ok(assemble_result(spec, &model, &warm, &end))
}

/// Drives one stepping run to its goal, checking the wall clock every
/// [`WALL_CHECK_STEPS`] kernel steps.
fn step_until(
    sys: &mut System,
    goal: RunGoal,
    budget: u64,
    deadline: std::time::Instant,
    wall_ms: u64,
) -> Result<StatSet, Box<tus::DeadlockReport>> {
    let mut ctl = sys.begin_run(goal, budget);
    let mut steps = 0u32;
    loop {
        match sys.run_step(&mut ctl) {
            StepOutcome::Running => {
                steps = steps.wrapping_add(1);
                if steps % WALL_CHECK_STEPS == 0 && std::time::Instant::now() >= deadline {
                    let kind = tus::DeadlockKind::WallClockExpired { ms: wall_ms };
                    return Err(Box::new(sys.abort_report(kind)));
                }
            }
            StepOutcome::Done(stats) => return Ok(stats),
            StepOutcome::Dead(report) => return Err(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_workloads::by_name;

    #[test]
    fn run_produces_consistent_metrics() {
        let spec = RunSpec {
            warmup: 2_000,
            insts: 10_000,
            ..RunSpec::new(
                by_name("502.gcc1-like").expect("exists"),
                PolicyKind::Baseline,
                114,
                Scale::Quick,
            )
        };
        let r = run(&spec);
        assert!(r.cycles > 0.0);
        assert!(r.committed >= 10_000.0 - 2_000.0);
        assert!(r.ipc > 0.0 && r.ipc < 8.0);
        assert!(r.edp > 0.0);
        assert!((0.0..=1.0).contains(&r.sb_stall_frac));
    }

    #[test]
    fn memo_key_distinguishes_specs() {
        let base = RunSpec::new(
            by_name("502.gcc1-like").expect("exists"),
            PolicyKind::Baseline,
            114,
            Scale::Quick,
        );
        let mut keys = std::collections::HashSet::new();
        assert!(keys.insert(base.memo_key()));
        // Identical spec → identical key.
        assert!(!keys.insert(base.clone().memo_key()));
        // Every varied dimension → a fresh key.
        for varied in [
            RunSpec { policy: PolicyKind::Tus, ..base.clone() },
            RunSpec { sb_entries: 32, ..base.clone() },
            RunSpec { seed: 43, ..base.clone() },
            RunSpec { insts: base.insts + 1, ..base.clone() },
            RunSpec { warmup: base.warmup + 1, ..base.clone() },
            RunSpec { cores: 2, ..base.clone() },
            RunSpec {
                workload: by_name("557.xz-like").expect("exists"),
                ..base.clone()
            },
            RunSpec {
                tweak: Some(Tweak { name: "woq16", apply: |b| { b.woq_entries(16); } }),
                ..base.clone()
            },
            RunSpec { kernel: KernelKind::Lockstep, ..base.clone() },
            RunSpec { coherence: CoherenceKind::Tardis, ..base.clone() },
        ] {
            assert!(keys.insert(varied.memo_key()), "collision: {}", varied.memo_key());
        }
    }

    /// Bumping the cache-format version changes every key, so results
    /// recorded by an older simulator can never be served for a newer
    /// one.
    #[test]
    fn memo_key_includes_cache_format_version() {
        let spec = RunSpec::new(
            by_name("502.gcc1-like").expect("exists"),
            PolicyKind::Tus,
            114,
            Scale::Quick,
        );
        assert!(spec.memo_key().starts_with(&format!("v{CACHE_FORMAT_VERSION}|")));
        assert_ne!(
            spec.memo_key_versioned(CACHE_FORMAT_VERSION),
            spec.memo_key_versioned(CACHE_FORMAT_VERSION + 1),
        );
    }

    /// The v4 bump made the event kernel the default: default keys must
    /// carry the `kevent` dimension, differ from every other kernel's
    /// key, and miss any key minted under the previous version.
    #[test]
    fn memo_key_records_event_kernel_default() {
        let spec = RunSpec::new(
            by_name("502.gcc1-like").expect("exists"),
            PolicyKind::Tus,
            114,
            Scale::Quick,
        );
        assert_eq!(spec.kernel, KernelKind::Event);
        assert!(spec.memo_key().contains("|kevent|"), "{}", spec.memo_key());
        let mut keys = std::collections::HashSet::new();
        for kernel in KernelKind::ALL {
            let k = RunSpec { kernel, ..spec.clone() }.memo_key();
            assert!(keys.insert(k), "kernel dimension collided");
        }
        // The PR-2 bump-miss pattern: a v3-era key can never alias a v4
        // key, so stale skip-kernel-default results are unreachable.
        assert_ne!(spec.memo_key(), spec.memo_key_versioned(3));
    }

    /// The v5 bump added the coherence-backend dimension: default keys
    /// carry `comesi`, the tardis variant mints a distinct key, and no
    /// v4-era key (minted before backends existed) can be served for a
    /// v5 spec.
    #[test]
    fn memo_key_records_coherence_backend() {
        let spec = RunSpec::new(
            by_name("502.gcc1-like").expect("exists"),
            PolicyKind::Tus,
            114,
            Scale::Quick,
        );
        assert_eq!(spec.coherence, CoherenceKind::Mesi);
        assert!(spec.memo_key().contains("|comesi|"), "{}", spec.memo_key());
        let tardis = RunSpec { coherence: CoherenceKind::Tardis, ..spec.clone() };
        assert!(tardis.memo_key().contains("|cotardis|"), "{}", tardis.memo_key());
        assert_ne!(spec.memo_key(), tardis.memo_key());
        assert_ne!(spec.lane_key(), tardis.lane_key(), "backend must split the lane");
        // Bump-miss: a v4-era key can never alias a v5 key.
        assert_ne!(spec.memo_key(), spec.memo_key_versioned(4));
    }

    /// A lane groups specs that differ only in seed, and lane-batched
    /// execution is bit-identical to standalone runs (the config and
    /// energy model are pure functions of the spec).
    #[test]
    fn lane_key_groups_seeds_and_run_lane_matches_run() {
        let base = RunSpec {
            warmup: 500,
            insts: 3_000,
            ..RunSpec::new(
                by_name("502.gcc1-like").expect("exists"),
                PolicyKind::Tus,
                114,
                Scale::Quick,
            )
        };
        let a = RunSpec { seed: 1, ..base.clone() };
        let b = RunSpec { seed: 2, ..base.clone() };
        assert_eq!(a.lane_key(), b.lane_key(), "seed must not split a lane");
        assert_ne!(a.memo_key(), b.memo_key());
        for other in [
            RunSpec { sb_entries: 32, ..base.clone() },
            RunSpec { policy: PolicyKind::Baseline, ..base.clone() },
            RunSpec { kernel: KernelKind::Lockstep, ..base.clone() },
            RunSpec { coherence: CoherenceKind::Tardis, ..base.clone() },
            RunSpec { insts: base.insts + 1, ..base.clone() },
        ] {
            assert_ne!(a.lane_key(), other.lane_key(), "config change must split the lane");
        }

        // The gang-scheduled lane (the default), the per-sim lane, and
        // standalone runs must all produce bit-identical results.
        let lane = run_lane(&[a.clone(), b.clone()]);
        let solo_lane = run_lane_mode(&[a.clone(), b.clone()], false);
        let (solo_a, solo_b) = (run(&a), run(&b));
        use crate::executor::encode_result;
        assert_eq!(encode_result(&lane[0], "k"), encode_result(&solo_a, "k"));
        assert_eq!(encode_result(&lane[1], "k"), encode_result(&solo_b, "k"));
        assert_eq!(encode_result(&solo_lane[0], "k"), encode_result(&solo_a, "k"));
        assert_eq!(encode_result(&solo_lane[1], "k"), encode_result(&solo_b, "k"));
    }

    #[test]
    fn scale_labels_round_trip() {
        for s in [Scale::Quick, Scale::Normal, Scale::Full] {
            assert_eq!(Scale::parse(s.label()), Some(s));
        }
        assert_eq!(Scale::parse("warp"), None);
    }

    /// A starved cycle budget must come back as a structured
    /// `BudgetExhausted` report — the daemon's per-client budget
    /// enforcement rides on this — while a generous budget succeeds and
    /// matches the infallible path bit for bit.
    #[test]
    fn try_run_budget_reports_exhaustion_structurally() {
        let spec = RunSpec {
            warmup: 0,
            insts: 5_000,
            ..RunSpec::new(
                by_name("502.gcc1-like").expect("exists"),
                PolicyKind::Tus,
                114,
                Scale::Quick,
            )
        };
        let report = try_run_budget(&spec, Some(100)).expect_err("100 cycles cannot finish");
        match report.kind {
            tus::DeadlockKind::BudgetExhausted { budget } => assert_eq!(budget, 100),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert!(report.cycle <= 100);

        let ok = try_run_budget(&spec, None).expect("default budget suffices");
        let plain = run(&spec);
        use crate::executor::encode_result;
        assert_eq!(encode_result(&ok, "k"), encode_result(&plain, "k"));
    }

    /// A wall-clock deadline of zero expires the run structurally with a
    /// `WallClockExpired` report, while a generous deadline completes
    /// bit-identically to the unbounded path — the deadline observes,
    /// never perturbs.
    #[test]
    fn try_run_wall_reports_expiry_structurally() {
        let spec = RunSpec {
            warmup: 0,
            insts: 5_000,
            ..RunSpec::new(
                by_name("502.gcc1-like").expect("exists"),
                PolicyKind::Tus,
                114,
                Scale::Quick,
            )
        };
        let report = try_run_wall(&spec, None, 0).expect_err("0 ms cannot finish");
        match report.kind {
            tus::DeadlockKind::WallClockExpired { ms } => assert_eq!(ms, 0),
            other => panic!("expected WallClockExpired, got {other:?}"),
        }

        let ok = try_run_wall(&spec, None, 600_000).expect("ten minutes suffice");
        let plain = run(&spec);
        use crate::executor::encode_result;
        assert_eq!(encode_result(&ok, "k"), encode_result(&plain, "k"));
    }

    #[test]
    fn deterministic_across_invocations() {
        let spec = RunSpec {
            warmup: 0,
            insts: 5_000,
            ..RunSpec::new(
                by_name("557.xz-like").expect("exists"),
                PolicyKind::Tus,
                32,
                Scale::Quick,
            )
        };
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.edp, b.edp);
    }
}
