//! Dense per-run cache-line identifiers.
//!
//! The simulator's hot path keys most coherence state by [`LineAddr`]
//! (`crate::types::LineAddr`), a sparse 58-bit value. Hash-map lookups on
//! that key dominate the per-active-cycle cost, so components that track
//! long-lived per-line state intern addresses into dense [`LineId`]s at
//! first touch and index flat arrays from then on — the "dense indexed
//! arrays, not keyed maps" representation move. Interning is
//! append-only for the lifetime of one simulation: a line's id never
//! changes and ids are assigned in first-touch order, which keeps the
//! mapping deterministic across runs and both simulation kernels.
//!
//! # Example
//!
//! ```
//! use tus_sim::{LineAddr, LineInterner};
//!
//! let mut it = LineInterner::new();
//! let a = it.intern(LineAddr::new(0x40));
//! let b = it.intern(LineAddr::new(0x99));
//! assert_eq!(it.intern(LineAddr::new(0x40)), a);
//! assert_ne!(a, b);
//! assert_eq!(it.addr(a), LineAddr::new(0x40));
//! assert_eq!(it.len(), 2);
//! ```

use crate::hash::FxHashMap;
use crate::types::LineAddr;

/// A dense, per-run identifier of one cache line (index into per-line
/// arrays). Assigned in first-touch order by a [`LineInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(u32);

impl LineId {
    /// The array index this id denotes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional [`LineAddr`] ⇄ [`LineId`] map: one hash lookup at the
/// component boundary, dense indexing everywhere behind it.
#[derive(Debug, Clone, Default)]
pub struct LineInterner {
    ids: FxHashMap<LineAddr, LineId>,
    addrs: Vec<LineAddr>,
}

impl LineInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `line`, assigning the next dense id on first
    /// touch.
    #[inline]
    pub fn intern(&mut self, line: LineAddr) -> LineId {
        if let Some(&id) = self.ids.get(&line) {
            return id;
        }
        let id = LineId(u32::try_from(self.addrs.len()).expect("line-id space exhausted"));
        self.ids.insert(line, id);
        self.addrs.push(line);
        id
    }

    /// The id of `line`, if it was ever interned.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<LineId> {
        self.ids.get(&line).copied()
    }

    /// The address behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[inline]
    pub fn addr(&self, id: LineId) -> LineAddr {
        self.addrs[id.index()]
    }

    /// Number of distinct lines interned.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether no line was interned yet.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// A slab of reusable slots with a free list.
///
/// [`Slab::alloc`] hands out the most recently released slot (or grows by
/// one); [`Slab::release`] returns a slot to the free list **without
/// dropping its value**, so slot types that own buffers (a `VecDeque`, a
/// `Vec`) keep their capacity across reuse — the caller clears the value
/// on release and the next `alloc` finds an empty-but-warm slot. After a
/// simulation's live-slot count plateaus, alloc/release cycles perform no
/// heap allocation.
///
/// # Example
///
/// ```
/// use tus_sim::Slab;
///
/// let mut s: Slab<Vec<u32>> = Slab::new();
/// let a = s.alloc();
/// s.get_mut(a).push(7);
/// s.get_mut(a).clear();
/// s.release(a);
/// let b = s.alloc(); // reuses the slot, capacity retained
/// assert_eq!(a, b);
/// assert!(s.get(b).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    slots: Vec<T>,
    free: Vec<u32>,
}

impl<T: Default> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab { slots: Vec::new(), free: Vec::new() }
    }

    /// Takes a slot off the free list (retaining whatever buffers its
    /// previous occupant left behind) or grows the slab by one default
    /// value. Returns the slot index.
    #[inline]
    pub fn alloc(&mut self) -> u32 {
        if let Some(i) = self.free.pop() {
            return i;
        }
        let i = u32::try_from(self.slots.len()).expect("slab index space exhausted");
        self.slots.push(T::default());
        i
    }

    /// Returns slot `i` to the free list. The value is not dropped; the
    /// caller is responsible for having cleared it.
    #[inline]
    pub fn release(&mut self, i: u32) {
        debug_assert!(!self.free.contains(&i), "double release of slab slot");
        self.free.push(i);
    }

    /// Shared access to slot `i`.
    #[inline]
    pub fn get(&self, i: u32) -> &T {
        &self.slots[i as usize]
    }

    /// Exclusive access to slot `i`.
    #[inline]
    pub fn get_mut(&mut self, i: u32) -> &mut T {
        &mut self.slots[i as usize]
    }

    /// Number of live (allocated, unreleased) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A recycling pool of boxed values: [`BoxPool::alloc_with`] pops a
/// previously recycled box or allocates a fresh one, [`BoxPool::recycle`]
/// returns a box for reuse. Once the in-flight population plateaus, every
/// alloc/recycle pair is heap-allocation-free. The pool is deliberately
/// value-agnostic — callers overwrite the payload, so recycled boxes may
/// carry stale bytes.
#[derive(Debug, Default)]
pub struct BoxPool<T> {
    free: Vec<Box<T>>,
}

impl<T> BoxPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BoxPool { free: Vec::new() }
    }

    /// A box from the pool (stale contents) or a fresh one built by
    /// `fresh` (only called when the pool is empty).
    #[inline]
    pub fn alloc_with(&mut self, fresh: impl FnOnce() -> T) -> Box<T> {
        self.free.pop().unwrap_or_else(|| Box::new(fresh()))
    }

    /// A pooled box overwritten with a copy of `src`.
    #[inline]
    pub fn alloc_copy_of(&mut self, src: &T) -> Box<T>
    where
        T: Copy,
    {
        match self.free.pop() {
            Some(mut b) => {
                *b = *src;
                b
            }
            None => Box::new(*src),
        }
    }

    /// Returns `b` to the pool for a later [`BoxPool::alloc_with`].
    #[inline]
    pub fn recycle(&mut self, b: Box<T>) {
        self.free.push(b);
    }

    /// Boxes currently waiting in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Cloning a pool yields an empty pool: pooled boxes are spare capacity,
/// not state, and must not be double-counted by a cloned simulation.
impl<T> Clone for BoxPool<T> {
    fn clone(&self) -> Self {
        BoxPool { free: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_first_touch_ordered() {
        let mut it = LineInterner::new();
        let ids: Vec<LineId> = [9u64, 3, 9, 7, 3]
            .into_iter()
            .map(|l| it.intern(LineAddr::new(l)))
            .collect();
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[1], ids[4]);
        assert_eq!(it.len(), 3);
        assert_eq!(ids[0].index(), 0);
        assert_eq!(ids[1].index(), 1);
        assert_eq!(ids[3].index(), 2);
        assert_eq!(it.get(LineAddr::new(7)), Some(ids[3]));
        assert_eq!(it.get(LineAddr::new(8)), None);
        for (l, id) in [(9u64, ids[0]), (3, ids[1]), (7, ids[3])] {
            assert_eq!(it.addr(id), LineAddr::new(l));
        }
    }

    #[test]
    fn slab_reuses_released_slots_lifo() {
        let mut s: Slab<String> = Slab::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_ne!(a, b);
        assert_eq!(s.live(), 2);
        s.get_mut(a).push_str("hello");
        s.get_mut(a).clear();
        s.release(a);
        assert_eq!(s.live(), 1);
        let c = s.alloc();
        assert_eq!(c, a, "free list is LIFO");
        assert!(s.get(c).is_empty());
        assert!(s.get(c).capacity() >= 5, "buffer capacity survives reuse");
    }

    #[test]
    fn box_pool_recycles() {
        let mut p: BoxPool<[u8; 64]> = BoxPool::new();
        let mut b = p.alloc_with(|| [0u8; 64]);
        b[0] = 0xAB;
        p.recycle(b);
        assert_eq!(p.idle(), 1);
        let b2 = p.alloc_copy_of(&[1u8; 64]);
        assert_eq!(p.idle(), 0);
        assert_eq!(b2[0], 1);
        let b3 = p.alloc_with(|| [0u8; 64]);
        assert_eq!(p.idle(), 0); // pool was empty: fresh box
        drop(b3);
    }

    #[test]
    fn cloned_pool_starts_empty() {
        let mut p: BoxPool<u64> = BoxPool::new();
        p.recycle(Box::new(1));
        assert_eq!(p.clone().idle(), 0);
    }
}
