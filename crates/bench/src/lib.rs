//! Benchmark support for the TUS reproduction.
//!
//! The benchmarks live under `benches/` as `harness = false` targets
//! driven by the self-contained [`Bench`] timer below (the workspace is
//! std-only, so no external benchmark framework):
//!
//! * `figures` — one benchmark per paper table/figure, running the same
//!   experiment code as `tus-harness` at smoke-test scale so `cargo
//!   bench` regenerates every result quickly and tracks simulator
//!   performance over time.
//! * `microbench` — hot-path microbenchmarks: WOQ search/merge, WCB
//!   coalescing, SB forwarding, litmus enumeration, and raw simulation
//!   throughput per policy.
//!
//! This library exposes the shared helpers.

use std::hint::black_box;
use std::time::{Duration, Instant};

use tus_harness::{run, RunResult, RunSpec, Scale};
use tus_sim::{KernelKind, PolicyKind};

/// Runs one short measurement of `workload` under `policy` (shared by the
/// benches).
pub fn short_run(workload: &str, policy: PolicyKind, sb: usize, insts: u64) -> RunResult {
    short_run_kernel(workload, policy, sb, insts, KernelKind::default())
}

/// [`short_run`] under an explicit simulation kernel (the kernel
/// comparison benches).
pub fn short_run_kernel(
    workload: &str,
    policy: PolicyKind,
    sb: usize,
    insts: u64,
    kernel: KernelKind,
) -> RunResult {
    let w = tus_workloads::by_name(workload).expect("workload exists");
    let spec = RunSpec {
        warmup: 0,
        insts,
        kernel,
        ..RunSpec::new(w, policy, sb, Scale::Quick)
    };
    run(&spec)
}

/// A minimal wall-clock benchmark driver (std-only `cargo bench` stand-in).
///
/// Each named benchmark is warmed up briefly, then timed over an
/// adaptively chosen iteration count targeting ~200 ms of measurement;
/// the mean ns/iter is printed. A substring filter can be passed on the
/// command line (as with Criterion); flags from `cargo bench` are ignored.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Creates a driver, reading an optional name filter from the
    /// command line.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Bench { filter }
    }

    /// Times `f` under `name` unless filtered out.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(flt) = &self.filter {
            if !name.contains(flt.as_str()) {
                return;
            }
        }
        // Warm-up: run for ~50 ms or at least one iteration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters == 0 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters as u128;
        // Measure: enough iterations for ~200 ms.
        let iters = (200_000_000u128 / per_iter.max(1)).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:<44} {ns:>14.1} ns/iter  ({iters} iters)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_completes() {
        let r = short_run("502.gcc1-like", PolicyKind::Tus, 114, 5_000);
        assert!(r.cycles > 0.0);
    }
}
