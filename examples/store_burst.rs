//! The paper's motivating scenario: long store bursts (the `gcc` pattern)
//! fill the store buffer faster than the baseline can drain it. Compare
//! all five drain policies on a burst-heavy workload and print speedups.
//!
//! ```sh
//! cargo run --release --example store_burst
//! ```

use tus::System;
use tus_sim::{PolicyKind, SimConfig};
use tus_workloads::by_name;

fn run(policy: PolicyKind) -> (f64, f64, f64) {
    let cfg = SimConfig::builder().policy(policy).build();
    let w = by_name("502.gcc5-like").expect("workload exists");
    let mut sys = System::new(&cfg, w.traces(1, 7, 150_000), 7);
    let stats = sys.run_committed(150_000, 100_000_000);
    let cycles = stats.get("cycles");
    (
        stats.get("core0.cpu.committed") / cycles,
        stats.get("core0.cpu.stall_sb") / cycles,
        stats.get("mem.core0.l1d_writes"),
    )
}

fn main() {
    println!("502.gcc5-like (long store bursts), 150k instructions, 114-entry SB\n");
    println!(
        "{:10} {:>8} {:>10} {:>12} {:>10}",
        "policy", "IPC", "SB-stall%", "L1D writes", "speedup"
    );
    let (base_ipc, _, _) = run(PolicyKind::Baseline);
    for p in PolicyKind::ALL {
        let (ipc, stall, writes) = run(p);
        println!(
            "{:10} {:>8.3} {:>9.1}% {:>12.0} {:>9.1}%",
            p.label(),
            ipc,
            stall * 100.0,
            writes,
            (ipc / base_ipc - 1.0) * 100.0
        );
    }
    println!("\nTUS should outperform all alternatives; CSB/TUS should show the");
    println!("write-coalescing reduction in L1D writes (paper: ~2x on average,");
    println!("up to 5.5x for 502.gcc5).");
}
