//! Pluggable coherence backends behind the [`CoherenceBackend`] contract.
//!
//! The per-core private cache controllers ([`crate::percore`]) talk to the
//! coherence fabric exclusively through [`Msg`]s on the network; the fabric
//! side of that conversation — permission requests and grants, forwarded
//! invalidation/downgrade, old-copy supply for relinquished lines, dirty
//! write-backs, and occupancy/diagnostic stats — is what this trait pins
//! down. Two implementations live here:
//!
//! * [`mesi`] — the paper's invalidation-based full-map directory
//!   ([`mesi::Directory`]), bit-identical to the pre-contract code (the
//!   Tardis message fields ride along as `0`/`None` and never influence
//!   it).
//! * [`tardis`] — a Tardis-2.0-style logical-timestamp backend
//!   ([`tardis::TardisDirectory`]): reads take bounded leases
//!   (`rts = max(rts, max(wts, requester_pts) + LEASE)`), writes jump the
//!   writer's logical time past every outstanding lease (`pts = rts + 1`),
//!   and *no invalidation messages exist* — stale sharers self-downgrade
//!   when their logical time passes a lease's end.
//!
//! Dispatch is a two-variant enum ([`DirBackend`]), not a trait object:
//! the backend is picked once per simulation and the hot path must not pay
//! an indirect call (the zero-allocation steady state and the perf-smoke
//! floor are both gated on the MESI path staying exactly as fast as before
//! the contract existed).

use tus_sim::trace::TraceRecord;
use tus_sim::{CoreId, Cycle, LineAddr, Schedulable, StatSet};

use crate::mainmem::MainMemory;
use crate::msgs::{Msg, ReqKind};
use crate::net::Network;

pub mod mesi;
pub mod tardis;

pub use mesi::Directory;
pub use tardis::TardisDirectory;

/// A queued request released by a completing transaction, to be fed back
/// through [`CoherenceBackend::handle`] as a fresh [`Msg::Req`] in the
/// same cycle.
#[derive(Debug, Clone, Copy)]
pub struct Replay {
    /// Requesting core.
    pub core: CoreId,
    /// Target line.
    pub line: LineAddr,
    /// Read or write permission.
    pub kind: ReqKind,
    /// Whether the queued request was a prefetch.
    pub prefetch: bool,
    /// The requester's logical timestamp at request time (0 under MESI).
    pub pts: u64,
}

/// The fabric side of the coherence conversation: everything the memory
/// system (and through it the policy layer and core model) needs from a
/// coherence home node.
///
/// Implementations also provide [`Schedulable`] so the idle-skipping and
/// event-driven kernels can compute the fabric's next-work cycle.
pub trait CoherenceBackend: Schedulable {
    /// Handles one inbound message (request, response or eviction notice).
    fn handle(&mut self, msg: Msg, net: &mut Network, mem: &mut MainMemory, now: Cycle);
    /// Completes DRAM fetches that are due; must be called every cycle.
    fn tick(&mut self, net: &mut Network, mem: &mut MainMemory, now: Cycle);
    /// Whether no transaction is open and no DRAM fetch is pending.
    fn idle(&self) -> bool;
    /// Completion cycle of the earliest pending DRAM fetch.
    fn next_dram_due(&self) -> Option<Cycle>;
    /// Number of open transactions (watchdog diagnostics).
    fn open_transactions(&self) -> usize;
    /// Debug description of the backend state for one line (deadlock
    /// diagnostics).
    fn debug_line(&self, line: LineAddr) -> String;
    /// Exports occupancy/traffic statistics.
    fn export_stats(&self) -> StatSet;
    /// Pops the oldest pending replay released by a completed transaction.
    fn pop_replay(&mut self) -> Option<Replay>;
    /// Arms structured tracing with a ring of `cap` records.
    fn trace_enable(&mut self, cap: usize);
    /// Drains the buffered trace records, oldest first.
    fn take_trace(&mut self) -> Vec<TraceRecord>;
}

/// Enum-dispatched backend instance owned by the memory system.
///
/// All methods forward with a two-arm match, which the compiler turns into
/// direct calls — no vtable on the per-message hot path.
pub enum DirBackend {
    /// Invalidation-based full-map MESI directory (the reference).
    Mesi(Directory),
    /// Tardis-style logical-timestamp backend.
    Tardis(TardisDirectory),
}

impl std::fmt::Debug for DirBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirBackend::Mesi(d) => d.fmt(f),
            DirBackend::Tardis(d) => d.fmt(f),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            DirBackend::Mesi($d) => $e,
            DirBackend::Tardis($d) => $e,
        }
    };
}

impl DirBackend {
    /// Handles one inbound message.
    #[inline]
    pub fn handle(&mut self, msg: Msg, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        dispatch!(self, d => d.handle(msg, net, mem, now))
    }

    /// Completes DRAM fetches that are due; must be called every cycle.
    #[inline]
    pub fn tick(&mut self, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        dispatch!(self, d => d.tick(net, mem, now))
    }

    /// Whether no transaction is open and no DRAM fetch is pending.
    pub fn idle(&self) -> bool {
        dispatch!(self, d => d.idle())
    }

    /// Completion cycle of the earliest pending DRAM fetch.
    pub fn next_dram_due(&self) -> Option<Cycle> {
        dispatch!(self, d => d.next_dram_due())
    }

    /// Number of open transactions (watchdog diagnostics).
    pub fn open_transactions(&self) -> usize {
        dispatch!(self, d => d.open_transactions())
    }

    /// Debug description of the backend state for one line.
    pub fn debug_line(&self, line: LineAddr) -> String {
        dispatch!(self, d => d.debug_line(line))
    }

    /// Exports occupancy/traffic statistics.
    pub fn export_stats(&self) -> StatSet {
        dispatch!(self, d => d.export_stats())
    }

    /// Pops the oldest pending replay.
    #[inline]
    pub fn pop_replay(&mut self) -> Option<Replay> {
        dispatch!(self, d => d.pop_replay())
    }

    /// Arms structured tracing with a ring of `cap` records.
    pub fn trace_enable(&mut self, cap: usize) {
        dispatch!(self, d => d.trace_enable(cap))
    }

    /// Drains the buffered trace records, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        dispatch!(self, d => d.take_trace())
    }
}

impl Schedulable for DirBackend {
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        dispatch!(self, d => d.next_work(now))
    }
}
