//! The Write Ordering Queue (WOQ).
//!
//! A small circular buffer (64 entries by default) that records, for every
//! temporarily unauthorized cache line, the order in which lines must be
//! made visible to preserve x86-TSO (paper Sections III-A and IV,
//! Figure 6). Each entry stores the L1D set/way the line occupies, the
//! byte mask of locally written data, an atomic-group id, a *CanCycle*
//! bit (cleared while a conflict is being resolved) and a *Ready* bit
//! (write permission acquired and data combined).
//!
//! Store cycles (`A B A`) are handled by merging entries into one *atomic
//! group* that becomes visible simultaneously; the merge copies the found
//! entry's group id to every entry between it and the tail (paper
//! Section IV).
//!
//! Hardware cost per entry: 10 bits of set/way + 6 bits of group id +
//! 16 bits of mask + CanCycle + Ready = 34 bits; 64 entries = 272 bytes,
//! the paper's headline storage overhead (accounted in `tus-energy`).

use std::collections::VecDeque;

use tus_mem::ByteMask;
use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{Cycle, LineAddr};

/// Identifier of an atomic group of WOQ entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// One WOQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WoqEntry {
    /// The unauthorized line (the hardware stores only set/way; the line
    /// address is kept here for assertions and the authorization unit).
    pub line: LineAddr,
    /// L1D set holding the line.
    pub set: usize,
    /// L1D way holding the line.
    pub way: usize,
    /// Atomic group this entry belongs to.
    pub group: GroupId,
    /// Locally written bytes.
    pub mask: ByteMask,
    /// May still participate in new cycles (cleared when an external
    /// conflict targets the group).
    pub can_cycle: bool,
    /// Write permission acquired and data combined.
    pub ready: bool,
    /// Relinquished; must re-request permission under the lex rule.
    pub retry: bool,
}

/// The Write Ordering Queue.
///
/// # Example
///
/// ```
/// use tus::Woq;
/// use tus_mem::ByteMask;
/// use tus_sim::LineAddr;
///
/// let mut woq = Woq::new(4);
/// let g = woq.push(LineAddr::new(1), 0, 0, ByteMask::range(0, 4));
/// woq.push(LineAddr::new(2), 0, 1, ByteMask::range(4, 4));
/// assert_eq!(woq.head_group(), Some(g));
/// assert!(!woq.head_group_ready());
/// woq.mark_ready(0, 0);
/// assert!(woq.head_group_ready());
/// assert_eq!(woq.pop_head_group().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Woq {
    entries: VecDeque<WoqEntry>,
    cap: usize,
    next_group: u32,
    searches: u64,
    peak: usize,
    tracer: Tracer,
    /// Reused buffer for merge-closure group ids (bounded by the queue
    /// capacity, so it plateaus and merge queries allocate nothing).
    scratch_ids: Vec<GroupId>,
    /// Entries with the ready bit clear — lets the per-cycle
    /// [`Woq::head_group_ready`] poll answer without scanning when every
    /// entry is ready.
    not_ready: usize,
    /// Entries with the retry flag set — lets the per-cycle lex
    /// re-request walk skip entirely in the common no-retry state.
    retries: usize,
}

impl Woq {
    /// Creates a WOQ with `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "WOQ needs at least one entry");
        Woq {
            entries: VecDeque::with_capacity(cap),
            cap,
            next_group: 0,
            searches: 0,
            peak: 0,
            tracer: Tracer::default(),
            scratch_ids: Vec::new(),
            not_ready: 0,
            retries: 0,
        }
    }

    /// Enables trace recording into a ring of `cap` records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Sets the clock stamped on subsequently recorded events (the WOQ's
    /// own methods carry no cycle parameter; the owning policy advances
    /// this once per drain step).
    #[inline]
    pub fn trace_set_now(&mut self, now: Cycle) {
        self.tracer.set_now(now);
    }

    /// Drains recorded trace events, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.take()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push would be refused.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// Free entries.
    pub fn free(&self) -> usize {
        self.cap - self.entries.len()
    }

    /// Entry at queue position `idx` (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn entry(&self, idx: usize) -> &WoqEntry {
        &self.entries[idx]
    }

    /// Iterates entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &WoqEntry> {
        self.entries.iter()
    }

    /// Appends a new entry as its own singleton atomic group; returns the
    /// group id.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (check [`Woq::is_full`] first).
    pub fn push(&mut self, line: LineAddr, set: usize, way: usize, mask: ByteMask) -> GroupId {
        let g = GroupId(self.next_group);
        self.next_group = self.next_group.wrapping_add(1);
        self.push_into_group(line, set, way, mask, g);
        g
    }

    /// Appends a new entry into an existing atomic group (used when a WCB
    /// group flushes several lines as one atomic unit).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn push_into_group(
        &mut self,
        line: LineAddr,
        set: usize,
        way: usize,
        mask: ByteMask,
        group: GroupId,
    ) {
        assert!(!self.is_full(), "WOQ overflow");
        self.entries.push_back(WoqEntry {
            line,
            set,
            way,
            group,
            mask,
            can_cycle: true,
            ready: false,
            retry: false,
        });
        self.not_ready += 1;
        self.peak = self.peak.max(self.entries.len());
        self.tracer.emit_now(TraceEvent::WoqEnqueue { line: line.raw(), group: group.0 });
    }

    /// Finds the queue position of the entry at L1D `set`/`way` (the
    /// 10-bit search the paper describes).
    pub fn find(&mut self, set: usize, way: usize) -> Option<usize> {
        self.searches += 1;
        self.entries.iter().position(|e| e.set == set && e.way == way)
    }

    /// Collects into `scratch_ids` the group ids that would be absorbed
    /// by merging from `idx` to the tail (the transitive closure:
    /// atomicity of every touched group is preserved by folding whole
    /// groups in).
    fn collect_merge_ids(&mut self, idx: usize) {
        self.scratch_ids.clear();
        for e in self.entries.iter().skip(idx) {
            if !self.scratch_ids.contains(&e.group) {
                self.scratch_ids.push(e.group);
            }
        }
    }

    /// Merges every entry from `idx` to the tail — *and every other
    /// member of any group touched by that span* — into the group of the
    /// entry at `idx` (the store-cycle rule: "its AtomicG_ID must be
    /// copied to all entries between itself and the tail"; folding whole
    /// groups keeps atomicity when a span cuts across an existing group).
    /// Returns the resulting group id.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn merge_to_tail(&mut self, idx: usize) -> GroupId {
        let g = self.entries[idx].group;
        self.collect_merge_ids(idx);
        for e in self.entries.iter_mut() {
            if self.scratch_ids.contains(&e.group) {
                e.group = g;
            }
        }
        if self.tracer.is_enabled() {
            let size = self.entries.iter().filter(|e| e.group == g).count() as u32;
            self.tracer.emit_now(TraceEvent::AtomicGroupMerge { group: g.0, size });
        }
        g
    }

    /// Size the atomic group would have after [`Woq::merge_to_tail`].
    pub fn merged_size(&mut self, idx: usize) -> usize {
        self.collect_merge_ids(idx);
        let ids = &self.scratch_ids;
        self.entries.iter().filter(|e| ids.contains(&e.group)).count()
    }

    /// Whether any entry that [`Woq::merge_to_tail`] would absorb has its
    /// *CanCycle* bit cleared — in which case the merge (and the store
    /// causing it) must wait.
    pub fn merge_blocked(&mut self, idx: usize) -> bool {
        self.collect_merge_ids(idx);
        let ids = &self.scratch_ids;
        self.entries
            .iter()
            .any(|e| ids.contains(&e.group) && !e.can_cycle)
    }

    /// Appends the lines of the atomic group that [`Woq::merge_to_tail`]
    /// would form to `out` (for lex-conflict checks).
    pub fn merged_lines_into(&mut self, idx: usize, out: &mut Vec<LineAddr>) {
        self.collect_merge_ids(idx);
        let ids = &self.scratch_ids;
        out.extend(
            self.entries
                .iter()
                .filter(|e| ids.contains(&e.group))
                .map(|e| e.line),
        );
    }

    /// Lines of the atomic group that [`Woq::merge_to_tail`] would form
    /// (allocating convenience wrapper for tests and cold paths).
    pub fn merged_lines(&mut self, idx: usize) -> Vec<LineAddr> {
        let mut out = Vec::new();
        self.merged_lines_into(idx, &mut out);
        out
    }

    /// Adds written bytes to the entry at `idx` and clears its ready bit
    /// unless `still_ready` (the line retained write permission across the
    /// coalescing write).
    pub fn coalesce(&mut self, idx: usize, mask: ByteMask, still_ready: bool) {
        let e = &mut self.entries[idx];
        e.mask = e.mask.union(mask);
        if e.ready != still_ready {
            if still_ready {
                self.not_ready -= 1;
            } else {
                self.not_ready += 1;
            }
        }
        e.ready = still_ready;
    }

    /// Marks the entry at L1D `set`/`way` ready (permission + data
    /// combined); clears its retry flag.
    pub fn mark_ready(&mut self, set: usize, way: usize) {
        if let Some(i) = self.find(set, way) {
            let e = &mut self.entries[i];
            if !e.ready {
                self.not_ready -= 1;
            }
            if e.retry {
                self.retries -= 1;
            }
            e.ready = true;
            e.retry = false;
        }
    }

    /// Marks the entry at `set`/`way` relinquished: not ready, retry, and
    /// clears *CanCycle*.
    pub fn mark_relinquished(&mut self, set: usize, way: usize) {
        if let Some(i) = self.find(set, way) {
            let e = &mut self.entries[i];
            if e.ready {
                self.not_ready += 1;
            }
            if !e.retry {
                self.retries += 1;
            }
            e.ready = false;
            e.retry = true;
            e.can_cycle = false;
            let line = e.line.raw();
            self.tracer.emit_now(TraceEvent::LexRelinquish { line });
        }
    }

    /// Clears *CanCycle* on the entry at `idx` (conflict resolution in
    /// progress).
    pub fn forbid_cycle(&mut self, idx: usize) {
        self.entries[idx].can_cycle = false;
    }

    /// Group of the oldest entry.
    pub fn head_group(&self) -> Option<GroupId> {
        self.entries.front().map(|e| e.group)
    }

    /// Whether every member of the head group is ready.
    pub fn head_group_ready(&self) -> bool {
        let Some(g) = self.head_group() else {
            return false;
        };
        // Everything ready (the steady drain state) needs no group scan.
        self.not_ready == 0 || self.entries.iter().filter(|e| e.group == g).all(|e| e.ready)
    }

    /// Number of entries with the retry flag set (relinquished lines
    /// awaiting a lex-ordered re-request). The per-cycle re-request walk
    /// gates on this being non-zero.
    #[inline]
    pub fn retry_count(&self) -> usize {
        self.retries
    }

    /// Pops every member of the head group (they become visible
    /// together). Members are contiguous from the head after merges, but
    /// group membership is checked across the whole queue for safety.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn pop_head_group(&mut self) -> Vec<WoqEntry> {
        let mut popped = Vec::new();
        self.pop_head_group_into(&mut popped);
        popped
    }

    /// Allocation-free [`Woq::pop_head_group`]: appends the popped head
    /// group to `out` (which the caller clears and reuses), removing the
    /// members in place.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub fn pop_head_group_into(&mut self, out: &mut Vec<WoqEntry>) {
        let g = self.head_group().expect("pop from empty WOQ");
        let before = out.len();
        let (mut popped_not_ready, mut popped_retries) = (0, 0);
        // retain preserves the order of survivors, exactly like the old
        // drain-and-rebuild, and removes in place without a fresh deque.
        self.entries.retain(|e| {
            if e.group == g {
                popped_not_ready += usize::from(!e.ready);
                popped_retries += usize::from(e.retry);
                out.push(*e);
                false
            } else {
                true
            }
        });
        self.not_ready -= popped_not_ready;
        self.retries -= popped_retries;
        self.tracer.emit_now(TraceEvent::WoqVisible {
            group: g.0,
            lines: (out.len() - before) as u32,
        });
    }

    #[cfg(feature = "bug-woq-reorder")]
    fn pop_group_members(&mut self, g: GroupId) -> Vec<WoqEntry> {
        let mut popped = Vec::new();
        let mut rest = VecDeque::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if e.group == g {
                self.not_ready -= usize::from(!e.ready);
                self.retries -= usize::from(e.retry);
                popped.push(e);
            } else {
                rest.push_back(e);
            }
        }
        self.entries = rest;
        popped
    }

    /// Fault-injection hook (`bug-woq-reorder` feature only): the
    /// youngest fully-ready group, regardless of queue position.
    #[cfg(feature = "bug-woq-reorder")]
    pub fn youngest_ready_group(&self) -> Option<GroupId> {
        let mut groups: Vec<GroupId> = self.entries.iter().map(|e| e.group).collect();
        groups.sort_unstable();
        groups.dedup();
        groups
            .into_iter()
            .rev()
            .find(|&g| self.entries.iter().filter(|e| e.group == g).all(|e| e.ready))
    }

    /// Fault-injection hook (`bug-woq-reorder` feature only): pops every
    /// member of `g`, wherever it sits in the queue.
    #[cfg(feature = "bug-woq-reorder")]
    pub fn pop_group(&mut self, g: GroupId) -> Vec<WoqEntry> {
        self.pop_group_members(g)
    }

    /// Queue positions of entries with the retry flag set.
    pub fn retry_positions(&self) -> Vec<usize> {
        self.retry_iter().collect()
    }

    /// Iterator over queue positions of entries with the retry flag set
    /// (allocation-free form of [`Woq::retry_positions`]).
    pub fn retry_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.retry)
            .map(|(i, _)| i)
    }

    /// Number of 10-bit associative searches performed (energy model).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Peak occupancy.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ByteMask {
        ByteMask::range(0, 8)
    }

    #[test]
    fn push_creates_singleton_groups() {
        let mut w = Woq::new(4);
        let g1 = w.push(LineAddr::new(1), 0, 0, m());
        let g2 = w.push(LineAddr::new(2), 0, 1, m());
        assert_ne!(g1, g2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.head_group(), Some(g1));
    }

    #[test]
    #[should_panic(expected = "WOQ overflow")]
    fn overflow_panics() {
        let mut w = Woq::new(1);
        w.push(LineAddr::new(1), 0, 0, m());
        w.push(LineAddr::new(2), 0, 1, m());
    }

    #[test]
    fn find_by_coords() {
        let mut w = Woq::new(4);
        w.push(LineAddr::new(1), 3, 7, m());
        w.push(LineAddr::new(2), 4, 2, m());
        assert_eq!(w.find(4, 2), Some(1));
        assert_eq!(w.find(9, 9), None);
        assert_eq!(w.searches(), 2);
    }

    #[test]
    fn cycle_merge_spans_to_tail() {
        // A J K, then a second store to A: {A, J, K} become one group.
        let mut w = Woq::new(8);
        let ga = w.push(LineAddr::new(0xA), 0, 0, m());
        w.push(LineAddr::new(0x1), 0, 1, m());
        w.push(LineAddr::new(0x2), 0, 2, m());
        assert_eq!(w.merged_size(0), 3);
        let g = w.merge_to_tail(0);
        assert_eq!(g, ga);
        assert!(w.iter().all(|e| e.group == ga));
        // Not ready: pop impossible.
        assert!(!w.head_group_ready());
        w.mark_ready(0, 0);
        w.mark_ready(0, 1);
        w.mark_ready(0, 2);
        assert!(w.head_group_ready());
        assert_eq!(w.pop_head_group().len(), 3);
        assert!(w.is_empty());
    }

    #[test]
    fn partial_merge_keeps_older_groups() {
        // J, A, B; cycle on A merges {A, B} but J stays its own group and
        // is made visible first (paper Fig. 4).
        let mut w = Woq::new(8);
        let gj = w.push(LineAddr::new(0x1), 0, 0, m());
        let ga = w.push(LineAddr::new(0xA), 0, 1, m());
        w.push(LineAddr::new(0xB), 0, 2, m());
        w.merge_to_tail(1);
        assert_eq!(w.entry(0).group, gj);
        assert_eq!(w.entry(1).group, ga);
        assert_eq!(w.entry(2).group, ga);
        w.mark_ready(0, 0);
        let first = w.pop_head_group();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].line, LineAddr::new(0x1));
        assert_eq!(w.head_group(), Some(ga));
    }

    #[test]
    fn merged_size_counts_older_members() {
        let mut w = Woq::new(8);
        let g = w.push(LineAddr::new(1), 0, 0, m());
        w.push_into_group(LineAddr::new(2), 0, 1, m(), g);
        w.push(LineAddr::new(3), 0, 2, m());
        // Merging from idx 1 (group g): span 2 (idx 1..=2) + older member
        // at idx 0 = 3.
        assert_eq!(w.merged_size(1), 3);
    }

    #[test]
    fn merge_blocked_by_can_cycle() {
        let mut w = Woq::new(8);
        w.push(LineAddr::new(1), 0, 0, m());
        w.push(LineAddr::new(2), 0, 1, m());
        assert!(!w.merge_blocked(0));
        w.forbid_cycle(1);
        assert!(w.merge_blocked(0));
        // Merging from idx 1 itself is blocked too.
        assert!(w.merge_blocked(1));
    }

    #[test]
    fn coalesce_updates_mask_and_ready() {
        let mut w = Woq::new(4);
        w.push(LineAddr::new(1), 0, 0, ByteMask::range(0, 4));
        w.mark_ready(0, 0);
        w.coalesce(0, ByteMask::range(8, 4), true);
        assert!(w.entry(0).ready);
        assert!(w.entry(0).mask.covers(0, 4));
        assert!(w.entry(0).mask.covers(8, 4));
        w.coalesce(0, ByteMask::range(16, 4), false);
        assert!(!w.entry(0).ready);
    }

    #[test]
    fn relinquish_sets_retry() {
        let mut w = Woq::new(4);
        w.push(LineAddr::new(1), 2, 3, m());
        w.mark_ready(2, 3);
        w.mark_relinquished(2, 3);
        let e = w.entry(0);
        assert!(!e.ready && e.retry && !e.can_cycle);
        assert_eq!(w.retry_positions(), vec![0]);
        // Re-acquisition clears retry.
        w.mark_ready(2, 3);
        assert!(w.retry_positions().is_empty());
    }

    #[test]
    fn pop_head_group_gathers_noncontiguous_members() {
        let mut w = Woq::new(8);
        let g = w.push(LineAddr::new(1), 0, 0, m());
        w.push(LineAddr::new(2), 0, 1, m());
        // Manually create a non-contiguous membership (merge from 0 then a
        // later independent push would still be contiguous; emulate via
        // push_into_group).
        w.push_into_group(LineAddr::new(3), 0, 2, m(), g);
        for c in [(0, 0), (0, 2)] {
            w.mark_ready(c.0, c.1);
        }
        let popped = w.pop_head_group();
        assert_eq!(popped.len(), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.entry(0).line, LineAddr::new(2));
    }
}
