//! System-level invariants across crates: drain guarantees, the paper's
//! headline behaviours (write coalescing, small-SB viability), and
//! multicore progress under contention for every policy.

use tus::System;
use tus_sim::{PolicyKind, SimConfig, StatSet};
use tus_workloads::by_name;

fn run_workload(name: &str, policy: PolicyKind, sb: usize, insts: u64, cores: usize) -> StatSet {
    let w = by_name(name).expect("workload exists");
    let cfg = SimConfig::builder()
        .cores(cores)
        .policy(policy)
        .sb_entries(sb)
        .build();
    let mut sys = System::new(&cfg, w.traces(cores, 5, insts), 5);
    sys.run_committed(insts, 500_000_000)
}

/// The paper's L1D-write-reduction claim: coalescing policies (CSB, TUS)
/// cut store write accesses by at least 2x on the burstiest workload
/// (paper: 2x average, 5.5x for 502.gcc5).
#[test]
fn coalescing_reduces_l1d_writes() {
    let writes = |p| run_workload("502.gcc5-like", p, 114, 60_000, 1).get("mem.core0.l1d_writes");
    let base = writes(PolicyKind::Baseline);
    let tus = writes(PolicyKind::Tus);
    let csb = writes(PolicyKind::Csb);
    assert!(tus * 2.0 < base, "TUS writes {tus} vs baseline {base}");
    assert!(csb * 2.0 < base, "CSB writes {csb} vs baseline {base}");
}

/// TUS removes SB-induced stalls on an SB-bound workload.
#[test]
fn tus_cuts_sb_stalls() {
    let stalls = |p| {
        let s = run_workload("502.gcc4-like", p, 114, 60_000, 1);
        s.get("core0.cpu.stall_sb") / s.get("cycles")
    };
    let base = stalls(PolicyKind::Baseline);
    let tus = stalls(PolicyKind::Tus);
    assert!(base > 0.05, "workload not SB-bound under baseline ({base})");
    assert!(tus < base * 0.7, "TUS stalls {tus} vs baseline {base}");
}

/// The paper's headline: TUS with a 32-entry SB at least matches the
/// 114-entry baseline on SB-bound work. Measured over a warmed window,
/// as in the harness (caches and prefetchers need a few tens of
/// thousands of instructions to reach steady state).
#[test]
fn tus_32_matches_baseline_114() {
    let ipc = |p, sb| {
        let w = by_name("502.gcc3-like").expect("workload exists");
        let cfg = SimConfig::builder().policy(p).sb_entries(sb).build();
        let mut sys = System::new(&cfg, w.traces(1, 5, 100_000), 5);
        let warm = sys.run_committed(20_000, 500_000_000);
        let end = sys.run_committed(80_000, 500_000_000);
        let d = end.minus(&warm);
        d.get("core0.cpu.committed") / d.get("cycles")
    };
    let base114 = ipc(PolicyKind::Baseline, 114);
    let tus32 = ipc(PolicyKind::Tus, 32);
    assert!(
        tus32 >= base114 * 0.95,
        "TUS@32 ({tus32:.3}) should match baseline@114 ({base114:.3})"
    );
}

/// On compute-bound work no policy should change performance appreciably
/// (the flat part of the paper's S-curves).
#[test]
fn compute_bound_unaffected() {
    let ipc = |p| {
        let s = run_workload("541.leela-like", p, 114, 40_000, 1);
        s.get("core0.cpu.committed") / s.get("cycles")
    };
    let base = ipc(PolicyKind::Baseline);
    for p in PolicyKind::ALL {
        let v = ipc(p);
        assert!(
            (v / base - 1.0).abs() < 0.02,
            "{p} moved compute-bound IPC by {:.1}%",
            (v / base - 1.0) * 100.0
        );
    }
}

/// Every policy survives a 16-core run with true sharing and drains.
#[test]
fn parallel_progress_all_policies() {
    for policy in PolicyKind::ALL {
        let w = by_name("canneal-like").expect("exists");
        let cfg = SimConfig::builder()
            .cores(16)
            .policy(policy)
            .sb_entries(32)
            .scale_caches_down(16)
            .build();
        let mut sys = System::new(&cfg, w.traces(16, 9, 3_000), 9);
        let stats = sys.run_to_completion(100_000_000);
        assert!(sys.finished(), "{policy} did not drain");
        assert!(stats.get("total_committed") >= 16.0 * 3_000.0);
    }
}

/// The TUS conflict machinery is exercised under contention and the
/// directory sees relinquishes. Prefetch-at-commit is disabled so
/// unauthorized windows span full permission round trips.
#[test]
fn tus_conflicts_exercised_under_contention() {
    use tus_cpu::{TraceInst, VecTrace};
    use tus_sim::Addr;
    let cfg = SimConfig::builder()
        .cores(8)
        .policy(PolicyKind::Tus)
        .sb_entries(16)
        .prefetch_at_commit(false)
        .scale_caches_down(16)
        .build();
    // Eight cores hammer the same four lines: unauthorized windows span
    // full permission round trips, so external requests must hit
    // not-visible lines.
    let traces: Vec<Box<dyn tus_cpu::TraceSource>> = (0..8u64)
        .map(|salt| {
            let insts: Vec<_> = (0..800u64)
                .map(|i| {
                    TraceInst::store(Addr::new(0x8000 + ((i + salt) % 4) * 64), 8, salt * 10_000 + i)
                })
                .collect();
            Box::new(VecTrace::new(insts)) as Box<dyn tus_cpu::TraceSource>
        })
        .collect();
    let mut sys = System::new(&cfg, traces, 21);
    let stats = sys.run_to_completion(200_000_000);
    let conflicts: f64 = (0..8)
        .map(|i| {
            stats.get(&format!("core{i}.policy.conflict_delays"))
                + stats.get(&format!("core{i}.policy.conflict_relinquishes"))
        })
        .sum();
    assert!(conflicts > 0.0, "no external conflicts on unauthorized lines");
}

/// Fences are honored by every policy: after a fence commits, everything
/// before it has fully drained (checked via run_to_completion on a
/// fence-heavy trace).
#[test]
fn fence_heavy_traces_drain() {
    use tus_cpu::{TraceInst, VecTrace};
    use tus_sim::Addr;
    for policy in PolicyKind::ALL {
        let mut insts = Vec::new();
        for i in 0..200u64 {
            insts.push(TraceInst::store(Addr::new(0x5000 + (i % 16) * 64), 8, i));
            if i % 5 == 4 {
                insts.push(TraceInst::fence());
            }
        }
        let cfg = SimConfig::builder()
            .policy(policy)
            .sb_entries(8)
            .scale_caches_down(64)
            .build();
        let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(insts))], 3);
        sys.run_to_completion(10_000_000);
        assert!(sys.finished(), "{policy} stuck on fences");
        assert!(sys.core(0).stats.fences > 0);
    }
}

/// Ablation knobs build and run: tiny WOQ, single WCB, small groups.
#[test]
fn extreme_tus_configurations_work() {
    let w = by_name("502.gcc1-like").expect("exists");
    for (woq, wcbs, group) in [(4usize, 1usize, 2usize), (8, 4, 4), (128, 8, 32)] {
        let cfg = SimConfig::builder()
            .policy(PolicyKind::Tus)
            .woq_entries(woq)
            .wcbs(wcbs)
            .max_atomic_group(group)
            .sb_entries(16)
            .scale_caches_down(64)
            .build();
        let mut sys = System::new(&cfg, w.traces(1, 1, 5_000), 1);
        sys.run_to_completion(50_000_000);
        assert!(sys.finished(), "WOQ={woq} WCB={wcbs} group={group} stuck");
    }
}

/// The paper's disabled variant — store-to-load forwarding from
/// not-ready unauthorized lines — must stay value-correct when enabled.
#[test]
fn l1d_unauth_forwarding_is_value_correct() {
    use tus_cpu::{TraceInst, VecTrace};
    use tus_sim::Addr;
    let cfg = SimConfig::builder()
        .policy(PolicyKind::Tus)
        .sb_entries(8)
        .prefetch_at_commit(false)
        .l1d_unauth_forwarding(true)
        .scale_caches_down(64)
        .build();
    // Stores first (they coalesce and land unauthorized in the L1D while
    // permission is fetched), then loads that arrive while the lines are
    // still not ready — the forwarding knob's window.
    let mut insts = Vec::new();
    let mut expected = Vec::new();
    for i in 0..64u64 {
        let a = Addr::new(0x7000 + (i % 8) * 64 + (i / 8) * 8);
        insts.push(TraceInst::store(a, 8, i + 1));
    }
    for i in 0..64u64 {
        let a = Addr::new(0x7000 + (i % 8) * 64 + (i / 8) * 8);
        insts.push(TraceInst::load(a, 8));
        expected.push(i + 1);
    }
    let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(insts))], 5);
    sys.core_mut(0).record_loads(true);
    let stats = sys.run_to_completion(10_000_000);
    assert_eq!(sys.core(0).loaded_values(), &expected[..]);
    // The knob must actually trigger in this unauthorized-heavy pattern.
    assert!(
        stats.get("mem.core0.l1d_unauth_forwards") > 0.0,
        "forwarding knob never used: {stats}"
    );
}
