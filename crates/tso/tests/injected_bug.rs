//! Fuzzer validation against a real, deliberately injected ordering bug.
//!
//! Built only with `--features bug-woq-reorder`, which makes the TUS
//! policy drain *any* fully-ready WOQ group (youngest first) instead of
//! only the head group — younger stores can become globally visible
//! before older ones, which is exactly the class of bug the WOQ exists
//! to prevent. These tests prove the differential fuzzer (a) detects
//! the resulting non-TSO outcomes from randomly generated programs and
//! (b) shrinks a failing program to a minimal counterexample.
//!
//! Run with:
//! ```sh
//! cargo test -p tus-tso --features bug-woq-reorder --release --test injected_bug
//! ```
#![cfg(feature = "bug-woq-reorder")]

use tus_sim::{PolicyKind, SimRng};
use tus_tso::fuzz::{check_policy, generate_case, shrink_case, FailureKind, FuzzCase};

/// Timing seeds per check: enough scheduling diversity to expose the
/// readiness races the bug needs, small enough to keep the test quick.
const SEEDS: u64 = 8;

/// Generated programs to try before giving up. The reorder is easy to
/// hit (any two independently-granted WOQ groups can invert), so the
/// fuzzer finds it within the first handful of programs in practice.
const MAX_PROGRAMS: u64 = 120;

/// Scans generated programs under the TUS policy until the injected
/// reorder shows up as a differential failure.
fn find_failing_case() -> (FuzzCase, u64) {
    for i in 0..MAX_PROGRAMS {
        let case = generate_case(&mut SimRng::seed(0xB06).fork(i + 1));
        if check_policy(&case, PolicyKind::Tus, SEEDS).is_some() {
            return (case, i);
        }
    }
    panic!("fuzzer failed to catch the injected WOQ reorder in {MAX_PROGRAMS} programs");
}

#[test]
fn fuzzer_catches_injected_woq_reorder() {
    let (case, index) = find_failing_case();
    let failure = check_policy(&case, PolicyKind::Tus, SEEDS).expect("still fails");
    // The injected bug reorders visibility; it must surface as a non-TSO
    // outcome (or, at worst, a structural failure), never pass silently.
    match &failure.kind {
        FailureKind::Violation(outcome) => {
            eprintln!("caught at program {index}: non-TSO outcome {outcome}\n{case}");
        }
        other => eprintln!("caught at program {index}: {other}\n{case}"),
    }
    assert_eq!(failure.policy, PolicyKind::Tus);
}

#[test]
fn injected_bug_shrinks_to_minimal_counterexample() {
    let (case, _) = find_failing_case();
    let (small, fail) = shrink_case(&case, PolicyKind::Tus, SEEDS);
    eprintln!(
        "shrunk to {} thread(s) / {} op(s): {fail}\n{small}",
        small.program.threads.len(),
        small.program.ops()
    );
    assert!(
        small.program.threads.len() <= 3,
        "shrunk case still has {} threads",
        small.program.threads.len()
    );
    assert!(
        small.program.ops() <= 6,
        "shrunk case still has {} ops",
        small.program.ops()
    );
    // The minimized case must reproduce the failure on its own.
    assert!(check_policy(&small, PolicyKind::Tus, SEEDS).is_some());
}
