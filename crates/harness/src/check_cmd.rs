//! The `tus-harness check` subcommand: bounded exhaustive model checking.
//!
//! Drives [`tus_tso::check`] from the command line: collects programs
//! from the persisted fuzz corpus (`--corpus DIR`), the litmus library
//! (`--litmus all|NAME[,NAME]`) and/or a seeded generator sweep
//! (`--fuzz N`), and checks each one — every policy's observable machine
//! enumerated exhaustively and diffed against the x86-TSO reference set
//! with exact equality, plus a sampled simulator cross-check.
//!
//! Programs over the `--max-threads`/`--max-ops`/`--max-states` bounds
//! come back as structured `bound exceeded` lines (reported, counted,
//! never fatal). Violations are shrunk through the same shrinker the
//! fuzzer uses ([`tus_tso::fuzz::shrink_with`]) and persisted under
//! `<out>/fuzz-corpus/` in the corpus text format, so
//! `tus-harness fuzz --replay FILE` re-runs them on the real simulator.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use tus_sim::{CoherenceKind, KernelKind, PolicyKind, SimRng};
use tus_tso::check::{check_program_policies, CheckConfig, CheckOutcome, CheckReport, CheckStats};
use tus_tso::fuzz::{decode_case, encode_case, generate_case, shrink_with, FuzzCase};
use tus_tso::conformance::default_addrs;
use tus_tso::litmus::all_litmus_tests;

use crate::executor::Executor;

/// Timing-seed count recorded in persisted check repros — generous, so a
/// later `fuzz --replay` gives the simulator a real chance to wander
/// into the model-found divergence.
const REPRO_SEEDS: u64 = 64;

/// Parsed `check` subcommand options.
#[derive(Debug)]
pub struct CheckOptions {
    /// Directory of corpus files to check (every `*.txt` inside).
    pub corpus: Option<PathBuf>,
    /// Litmus selection: `all` or comma-separated test names.
    pub litmus: Option<String>,
    /// Generated programs to check (rejection-sampled to the bounds).
    pub fuzz: u64,
    /// Base seed for the generated programs.
    pub base_seed: u64,
    /// Exploration bounds and toggles.
    pub config: CheckConfig,
    /// Restrict to one policy (default: all five).
    pub policy: Option<PolicyKind>,
    /// Print the per-policy exploration statistics table.
    pub stats: bool,
    /// Output directory; repro files land in `<out>/fuzz-corpus/`.
    pub out: PathBuf,
    /// Worker threads.
    pub jobs: usize,
    /// Whether to shrink violations before persisting (`--no-shrink`).
    pub shrink: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            corpus: None,
            litmus: None,
            fuzz: 0,
            base_seed: 0,
            config: CheckConfig::default(),
            policy: None,
            stats: false,
            out: PathBuf::from("results"),
            jobs: Executor::default_jobs(),
            shrink: true,
        }
    }
}

fn check_usage() -> ! {
    eprintln!(
        "usage: tus-harness check [--corpus DIR] [--litmus all|NAME[,NAME]] [--fuzz N] [--seed N]\n\
         \x20                       [--max-threads N] [--max-ops N] [--max-states N] [--seeds N]\n\
         \x20                       [--no-reduction] [--no-lazy] [--stats] [--policy P]\n\
         \x20                       [--kernel K] [--coherence C] [--out DIR] [--jobs N] [--no-shrink]\n\
         enumerates every reachable outcome of each policy's observable semantics\n\
         for the selected programs and requires exact equality with the x86-TSO\n\
         reference set (defaults: --max-threads 3 --max-ops 8, litmus bounds are\n\
         auto-raised to cover the library); violations are shrunk and persisted\n\
         under <out>/fuzz-corpus/ for `fuzz --replay`"
    );
    std::process::exit(2);
}

/// Parses the arguments following the `check` keyword.
pub fn parse_check_args(args: &[String]) -> CheckOptions {
    let mut opt = CheckOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("check: {name} needs a number");
                check_usage()
            })
        };
        match a.as_str() {
            "--corpus" => opt.corpus = Some(it.next().unwrap_or_else(|| check_usage()).into()),
            "--litmus" => opt.litmus = Some(it.next().unwrap_or_else(|| check_usage()).clone()),
            "--fuzz" => opt.fuzz = num("--fuzz"),
            "--seed" => opt.base_seed = num("--seed"),
            "--max-threads" => opt.config.max_threads = (num("--max-threads") as usize).max(1),
            "--max-ops" => opt.config.max_ops = (num("--max-ops") as usize).max(1),
            "--max-states" => opt.config.max_states = num("--max-states").max(1),
            "--seeds" => opt.config.sim_seeds = num("--seeds"),
            "--no-reduction" => opt.config.reduction = false,
            "--no-lazy" => opt.config.lazy = false,
            "--no-shrink" => opt.shrink = false,
            "--stats" => opt.stats = true,
            "--jobs" => opt.jobs = (num("--jobs") as usize).max(1),
            "--out" => opt.out = it.next().unwrap_or_else(|| check_usage()).into(),
            "--policy" => {
                let label = it.next().unwrap_or_else(|| check_usage());
                opt.policy = Some(
                    PolicyKind::ALL
                        .into_iter()
                        .find(|p| p.label().eq_ignore_ascii_case(label))
                        .unwrap_or_else(|| {
                            eprintln!("check: unknown policy {label:?}");
                            check_usage()
                        }),
                );
            }
            "--kernel" => {
                let label = it.next().unwrap_or_else(|| check_usage());
                opt.config.kernel = KernelKind::parse(label).unwrap_or_else(|| {
                    eprintln!("check: unknown kernel {label:?}");
                    check_usage()
                });
            }
            "--coherence" => {
                let label = it.next().unwrap_or_else(|| check_usage());
                opt.config.coherence = CoherenceKind::parse(label).unwrap_or_else(|| {
                    eprintln!("check: unknown coherence backend {label:?}");
                    check_usage()
                });
            }
            _ => check_usage(),
        }
    }
    if opt.corpus.is_none() && opt.litmus.is_none() && opt.fuzz == 0 {
        opt.litmus = Some("all".into());
    }
    opt
}

/// One program queued for checking.
#[derive(Debug, Clone)]
pub struct CheckJob {
    /// Where the program came from (corpus file stem, litmus name, or
    /// `fuzz-N`).
    pub name: String,
    /// The program plus its location→address map.
    pub case: FuzzCase,
}

/// One checked program whose verdict was not `Verified`.
#[derive(Debug)]
pub struct CheckFinding {
    /// The job that diverged.
    pub job: CheckJob,
    /// Its full report.
    pub report: CheckReport,
}

/// Aggregate result of a check sweep.
#[derive(Debug, Default)]
pub struct CheckSummary {
    /// Programs checked.
    pub programs: u64,
    /// Programs whose every policy matched the reference set exactly.
    pub verified: u64,
    /// Programs that exceeded a bound (reported, not proved).
    pub bound_exceeded: u64,
    /// Violating programs, in job order.
    pub findings: Vec<CheckFinding>,
    /// Per-policy aggregated exploration counters and enumerated-set
    /// sizes, in [`PolicyKind::ALL`] order (restricted under `--policy`).
    pub per_policy: Vec<(PolicyKind, CheckStats, u64)>,
}

impl CheckSummary {
    /// Number of violating programs.
    pub fn violations(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f.report.outcome(), CheckOutcome::Violated))
            .count()
    }
}

/// Collects the programs a sweep will check. Litmus tests may need more
/// threads/ops than the configured bounds (IRIW has four threads); the
/// bounds in `cfg` are raised to cover the selection, with a note on
/// stderr, so `--litmus all` never reports spurious `bound exceeded`.
pub fn collect_jobs(opt: &CheckOptions, cfg: &mut CheckConfig) -> Result<Vec<CheckJob>, String> {
    let mut jobs = Vec::new();
    if let Some(dir) = &opt.corpus {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "txt"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("corpus dir {} has no .txt entries", dir.display()));
        }
        for path in files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let entry = decode_case(&text)
                .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
            let name = path
                .file_stem()
                .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned());
            jobs.push(CheckJob { name, case: entry.case });
        }
    }
    if let Some(sel) = &opt.litmus {
        let picked = if sel.eq_ignore_ascii_case("all") {
            all_litmus_tests()
        } else {
            let mut picked = Vec::new();
            for want in sel.split(',') {
                let mut all = all_litmus_tests();
                let pos = all
                    .iter()
                    .position(|t| t.name.eq_ignore_ascii_case(want.trim()))
                    .ok_or_else(|| format!("unknown litmus test {want:?}"))?;
                picked.push(all.swap_remove(pos));
            }
            picked
        };
        let need_threads = picked.iter().map(|t| t.program.threads.len()).max().unwrap_or(0);
        let need_ops = picked.iter().map(|t| t.program.ops()).max().unwrap_or(0);
        if need_threads > cfg.max_threads || need_ops > cfg.max_ops {
            eprintln!(
                "check: raising bounds to {} threads / {} ops to cover the litmus selection",
                need_threads.max(cfg.max_threads),
                need_ops.max(cfg.max_ops)
            );
            cfg.max_threads = cfg.max_threads.max(need_threads);
            cfg.max_ops = cfg.max_ops.max(need_ops);
        }
        for t in picked {
            let addrs = default_addrs(&t.program);
            jobs.push(CheckJob {
                name: format!("litmus-{}", t.name),
                case: FuzzCase { program: t.program, addrs },
            });
        }
    }
    if opt.fuzz > 0 {
        // Rejection-sample the general generator down to the bounds: the
        // same program shapes the fuzzer sweeps, now checked exhaustively.
        let mut index = 0u64;
        let mut accepted = 0u64;
        let budget = opt.fuzz.saturating_mul(64).max(1024);
        while accepted < opt.fuzz && index < budget {
            let mut rng = SimRng::seed(opt.base_seed).fork(index.wrapping_add(1));
            index += 1;
            let case = generate_case(&mut rng);
            if case.program.threads.len() <= cfg.max_threads && case.program.ops() <= cfg.max_ops {
                jobs.push(CheckJob {
                    name: format!("fuzz-seed{}-case{}", opt.base_seed, index - 1),
                    case,
                });
                accepted += 1;
            }
        }
        if accepted < opt.fuzz {
            return Err(format!(
                "generator produced only {accepted}/{} in-bound programs in {budget} attempts",
                opt.fuzz
            ));
        }
    }
    Ok(jobs)
}

/// Runs the sweep over a worker pool; `progress(done, total,
/// violations_so_far)` fires after every checked program.
pub fn sweep_jobs(
    jobs: &[CheckJob],
    cfg: &CheckConfig,
    policies: &[PolicyKind],
    workers: usize,
    progress: &(dyn Fn(u64, u64, usize) + Sync),
) -> CheckSummary {
    let next = AtomicUsize::new(0);
    let done = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, CheckReport)>> = Mutex::new(Vec::new());
    let n = jobs.len() as u64;
    std::thread::scope(|s| {
        for _ in 0..workers.clamp(1, jobs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let report =
                    check_program_policies(&job.case.program, &job.case.addrs, cfg, policies);
                let mut r = results.lock().unwrap_or_else(PoisonError::into_inner);
                r.push((i, report));
                let violations =
                    r.iter().filter(|(_, r)| matches!(r.outcome(), CheckOutcome::Violated)).count();
                drop(r);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(d, n, violations);
            });
        }
    });
    let mut results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    results.sort_by_key(|(i, _)| *i);

    let mut summary = CheckSummary {
        programs: n,
        per_policy: policies.iter().map(|&p| (p, CheckStats::default(), 0)).collect(),
        ..CheckSummary::default()
    };
    for (i, report) in results {
        for pc in &report.policies {
            if let Some(slot) = summary.per_policy.iter_mut().find(|(p, ..)| *p == pc.policy) {
                slot.1.absorb(&pc.stats);
                slot.2 += pc.enumerated as u64;
            }
        }
        match report.outcome() {
            CheckOutcome::Verified => summary.verified += 1,
            CheckOutcome::BoundExceeded(_) => {
                summary.bound_exceeded += 1;
                summary.findings.push(CheckFinding { job: jobs[i].clone(), report });
            }
            CheckOutcome::Violated => {
                summary.findings.push(CheckFinding { job: jobs[i].clone(), report });
            }
        }
    }
    summary
}

/// Renders the `--stats` table: per-policy exploration counters.
pub fn render_stats(summary: &CheckSummary) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>12} {:>12} {:>12} {:>7} {:>10}",
        "policy", "explored", "memoized", "pruned", "levels", "outcomes"
    );
    for (policy, stats, enumerated) in &summary.per_policy {
        let _ = writeln!(
            s,
            "{:<8} {:>12} {:>12} {:>12} {:>7} {:>10}",
            policy.label(),
            stats.explored,
            stats.memoized,
            stats.pruned,
            stats.levels,
            enumerated
        );
    }
    s
}

/// Renders one finding's diff (extra/missed/cross-check divergences).
pub fn render_finding(f: &CheckFinding) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "--- {} [{}] ---", f.job.name, f.report.outcome());
    if let Some(b) = f.report.bound {
        let _ = writeln!(s, "{b}");
        return s;
    }
    for pc in &f.report.policies {
        if pc.clean() {
            continue;
        }
        for o in &pc.extra {
            let _ = writeln!(s, "policy {}: EXTRA outcome {o} (TSO violation)", pc.policy.label());
        }
        for o in &pc.missed {
            let _ = writeln!(s, "policy {}: MISSED outcome {o} (over-strong)", pc.policy.label());
        }
        for o in &pc.sim_extra {
            let _ = writeln!(
                s,
                "policy {}: simulator outcome {o} escapes the enumerated set",
                pc.policy.label()
            );
        }
        for seed in &pc.sim_timeouts {
            let _ = writeln!(s, "policy {}: cross-check hang at seed {seed}", pc.policy.label());
        }
        for seed in &pc.sim_truncated {
            let _ =
                writeln!(s, "policy {}: truncated registers at seed {seed}", pc.policy.label());
        }
    }
    s
}

/// Shrinks and persists one violating finding in the corpus format;
/// returns the repro path.
pub fn persist_finding(
    opt: &CheckOptions,
    cfg: &CheckConfig,
    policies: &[PolicyKind],
    f: &CheckFinding,
) -> std::io::Result<PathBuf> {
    let corpus = opt.out.join("fuzz-corpus");
    std::fs::create_dir_all(&corpus)?;
    let (case, failure) = if opt.shrink {
        shrink_with(&f.job.case, |c| {
            check_program_policies(&c.program, &c.addrs, cfg, policies).first_failure()
        })
    } else {
        let failure = f.report.first_failure().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "finding has no failure")
        })?;
        (f.job.case.clone(), failure)
    };
    eprintln!(
        "shrunk to {} thread(s), {} op(s): {failure}",
        case.program.threads.len(),
        case.program.ops()
    );
    eprint!("{case}");
    let path = corpus.join(format!("check-{}.txt", f.job.name));
    std::fs::write(&path, encode_case(&case, Some(failure.policy), REPRO_SEEDS))?;
    Ok(path)
}

/// Runs the check subcommand; returns the process exit code (0 = all
/// verified, 1 = violation found, 2 = usage/IO error). `bound exceeded`
/// programs are reported and counted but do not fail the sweep: the
/// bound is the contract, and they are explicitly outside it.
pub fn run_check(opt: &CheckOptions) -> i32 {
    let mut cfg = opt.config.clone();
    let jobs = match collect_jobs(opt, &mut cfg) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("check: {e}");
            return 2;
        }
    };
    let policies: Vec<PolicyKind> =
        opt.policy.map_or_else(|| PolicyKind::ALL.to_vec(), |p| vec![p]);
    let started = std::time::Instant::now();
    eprintln!(
        "checking {} programs x {} policies (≤{} threads, ≤{} ops, ≤{} states, reduction {}, lazy {}, {} cross-check seeds, {} jobs)",
        jobs.len(),
        policies.len(),
        cfg.max_threads,
        cfg.max_ops,
        cfg.max_states,
        if cfg.reduction { "on" } else { "off" },
        if cfg.lazy { "on" } else { "off" },
        cfg.sim_seeds,
        opt.jobs
    );
    let summary = sweep_jobs(&jobs, &cfg, &policies, opt.jobs, &|d, n, violations| {
        if d % 25 == 0 || d == n {
            eprintln!(
                "[{d}/{n} programs, {violations} violation(s), {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
    });
    for f in &summary.findings {
        eprint!("{}", render_finding(f));
        if matches!(f.report.outcome(), CheckOutcome::Violated) {
            eprint!("{}", f.job.case);
            match persist_finding(opt, &cfg, &policies, f) {
                Ok(p) => eprintln!("persisted: {} (replay with: tus-harness fuzz --replay)", p.display()),
                Err(e) => eprintln!("check: cannot persist repro: {e}"),
            }
        }
    }
    if opt.stats {
        eprint!("{}", render_stats(&summary));
    }
    let agg = summary
        .per_policy
        .iter()
        .fold(CheckStats::default(), |mut a, (_, s, _)| {
            a.absorb(s);
            a
        });
    eprintln!(
        "[check: {:.1}s, {} programs, {} verified, {} violation(s), {} bound-exceeded, {} states explored, {} memoized, {} pruned]",
        started.elapsed().as_secs_f64(),
        summary.programs,
        summary.verified,
        summary.violations(),
        summary.bound_exceeded,
        agg.explored,
        agg.memoized,
        agg.pruned
    );
    if summary.violations() > 0 {
        1
    } else {
        0
    }
}

/// Entry point called from `main` for `tus-harness check ...`.
pub fn main_check(args: &[String]) -> ! {
    let opt = parse_check_args(args);
    std::process::exit(run_check(&opt));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_tso::check::Bound;

    #[test]
    fn parse_check_args_covers_flags() {
        let args: Vec<String> = [
            "--corpus", "/tmp/corpus", "--litmus", "SB,MP", "--fuzz", "7", "--seed", "3",
            "--max-threads", "4", "--max-ops", "10", "--max-states", "5000", "--seeds", "2",
            "--no-reduction", "--no-lazy", "--stats", "--policy", "csb", "--kernel", "lockstep",
            "--coherence", "tardis", "--out", "/tmp/o", "--jobs", "2", "--no-shrink",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_check_args(&args);
        assert_eq!(o.corpus, Some(PathBuf::from("/tmp/corpus")));
        assert_eq!(o.litmus.as_deref(), Some("SB,MP"));
        assert_eq!(o.fuzz, 7);
        assert_eq!(o.base_seed, 3);
        assert_eq!(o.config.max_threads, 4);
        assert_eq!(o.config.max_ops, 10);
        assert_eq!(o.config.max_states, 5000);
        assert_eq!(o.config.sim_seeds, 2);
        assert!(!o.config.reduction);
        assert!(!o.config.lazy);
        assert!(o.stats);
        assert_eq!(o.policy, Some(PolicyKind::Csb));
        assert_eq!(o.config.kernel, KernelKind::Lockstep);
        assert_eq!(o.config.coherence, CoherenceKind::Tardis);
        assert_eq!(o.out, PathBuf::from("/tmp/o"));
        assert_eq!(o.jobs, 2);
        assert!(!o.shrink);
    }

    #[test]
    fn default_source_is_the_full_litmus_library() {
        let o = parse_check_args(&[]);
        assert_eq!(o.litmus.as_deref(), Some("all"));
        assert_eq!(o.config.max_threads, 3);
        assert_eq!(o.config.max_ops, 8);
    }

    /// SB + MP verify end to end through the sweep machinery, with the
    /// simulator cross-check on.
    #[test]
    fn litmus_pair_verifies_end_to_end() {
        let opt = CheckOptions {
            litmus: Some("SB,MP".into()),
            config: CheckConfig { sim_seeds: 2, ..CheckConfig::default() },
            jobs: 2,
            ..CheckOptions::default()
        };
        let mut cfg = opt.config.clone();
        let jobs = collect_jobs(&opt, &mut cfg).expect("collect");
        assert_eq!(jobs.len(), 2);
        let summary = sweep_jobs(&jobs, &cfg, &PolicyKind::ALL, 2, &|_, _, _| {});
        assert_eq!(summary.verified, 2, "{:?}", summary.findings.len());
        assert_eq!(summary.violations(), 0);
        let stats = render_stats(&summary);
        assert!(stats.contains("TUS") && stats.contains("explored"), "{stats}");
    }

    /// An over-bound program reports `bound exceeded` without failing
    /// the sweep.
    #[test]
    fn bound_exceeded_is_counted_not_fatal() {
        let opt = CheckOptions {
            litmus: Some("SB".into()),
            config: CheckConfig { sim_seeds: 0, ..CheckConfig::default() },
            ..CheckOptions::default()
        };
        let mut cfg = opt.config.clone();
        cfg.max_states = 2; // starve the explorer
        let jobs = collect_jobs(&opt, &mut cfg).expect("collect");
        let summary = sweep_jobs(&jobs, &cfg, &PolicyKind::ALL, 1, &|_, _, _| {});
        assert_eq!(summary.bound_exceeded, 1);
        assert_eq!(summary.violations(), 0);
        let f = &summary.findings[0];
        assert!(matches!(f.report.outcome(), CheckOutcome::BoundExceeded(Bound::States { .. })));
        assert!(render_finding(f).contains("state budget"));
    }

    /// The generator source rejection-samples to the bounds.
    #[test]
    fn fuzz_source_respects_bounds() {
        let opt = CheckOptions {
            fuzz: 10,
            litmus: None,
            config: CheckConfig { sim_seeds: 0, ..CheckConfig::default() },
            ..CheckOptions::default()
        };
        let mut cfg = opt.config.clone();
        let jobs = collect_jobs(&opt, &mut cfg).expect("collect");
        assert_eq!(jobs.len(), 10);
        for j in &jobs {
            assert!(j.case.program.threads.len() <= cfg.max_threads);
            assert!(j.case.program.ops() <= cfg.max_ops);
        }
    }
}
