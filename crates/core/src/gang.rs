//! Gang-scheduled execution of seed-varied simulations.
//!
//! A *lane* of the evaluation sweep is a set of simulations that share
//! one machine configuration and differ only in their random seed. The
//! baseline lane executor runs them back to back; [`SystemGang`] instead
//! runs all K members in **one interleaved pass**: a merged
//! [`GangCalendar`] keyed `(due, sim)` pops whichever member's local
//! clock is globally earliest, that member executes exactly one kernel
//! step ([`System::run_step`]), and is re-keyed at its new local time.
//! Within the popped member, its own per-unit calendar orders work by
//! `(due, unit)`, so the composition realizes a full `(due, sim, unit)`
//! order — lockstep by virtual due time across the gang.
//!
//! Members are fully independent machines (own cores, memory, RNG), so
//! interleaving cannot perturb any member's execution: each member
//! experiences exactly the step sequence of a solo [`System`] run, and
//! results are **bit-identical** to per-sim execution by construction
//! (the CI gang-equivalence job diffs the CSV trees to enforce this).
//!
//! Members *retire individually*: a member that meets its goal, trips
//! the watchdog, or exhausts its budget leaves the calendar while the
//! rest of the gang keeps running. Hot per-member state (run control,
//! outcome slots, calendar keys) lives in member-indexed parallel
//! arrays.

use tus_sim::calendar::GangCalendar;
use tus_sim::StatSet;

use crate::system::{DeadlockReport, RunCtl, RunGoal, StepOutcome, System};

/// One member's phase result: the statistics snapshot at goal, or the
/// deadlock report that retired it.
pub type MemberResult = Result<StatSet, Box<DeadlockReport>>;

/// A gang of seed-varied [`System`]s executed in one interleaved pass.
pub struct SystemGang {
    /// The member machines, index-stable for the gang's lifetime.
    systems: Vec<System>,
    /// Parallel array: live members' stepping-run control state; `None`
    /// once the member retired from the current phase.
    ctls: Vec<Option<RunCtl>>,
    /// Parallel array: the report of a member that died in an earlier
    /// phase (such members never re-arm).
    dead: Vec<Option<Box<DeadlockReport>>>,
    /// Merged `(due, sim)` calendar over the members' local clocks.
    cal: GangCalendar,
}

impl std::fmt::Debug for SystemGang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemGang")
            .field("members", &self.systems.len())
            .field("dead", &self.dead.iter().filter(|d| d.is_some()).count())
            .finish()
    }
}

impl SystemGang {
    /// Builds a gang over `systems` (any count ≥ 0; a gang of one is
    /// exactly a solo run).
    pub fn new(systems: Vec<System>) -> Self {
        let n = systems.len();
        SystemGang {
            systems,
            ctls: (0..n).map(|_| None).collect(),
            dead: (0..n).map(|_| None).collect(),
            cal: GangCalendar::new(n),
        }
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the gang has no members.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// A member machine, for inspection.
    pub fn member(&self, i: usize) -> &System {
        &self.systems[i]
    }

    /// Runs one *phase*: every still-alive member steps towards `goal`
    /// under the shared absolute cycle budget, interleaved in global
    /// `(due, sim)` order, until each has met the goal or died. Returns
    /// per-member results in member order; a member that died in an
    /// earlier phase reports that original death again (it is never
    /// re-armed).
    ///
    /// Phases compose like back-to-back `try_run_*` calls on a solo
    /// system — the warm-up/measure pattern — because each phase begins
    /// with [`System::begin_run`] on every live member, exactly what the
    /// solo path does at every run-loop entry.
    pub fn run_phase(&mut self, goal: RunGoal, max_cycles: u64) -> Vec<MemberResult> {
        let mut results: Vec<Option<MemberResult>> =
            (0..self.systems.len()).map(|_| None).collect();
        for (i, sys) in self.systems.iter_mut().enumerate() {
            if let Some(report) = &self.dead[i] {
                results[i] = Some(Err(report.clone()));
                continue;
            }
            self.ctls[i] = Some(sys.begin_run(goal, max_cycles));
            self.cal.schedule(i, sys.now());
        }
        while let Some((_, i)) = self.cal.pop_min() {
            let ctl = self.ctls[i].as_mut().expect("scheduled member has run control");
            match self.systems[i].run_step(ctl) {
                // A kernel step strictly advances the member's clock, so
                // the re-key is always in the pop's future and the merged
                // order never revisits an earlier virtual time.
                StepOutcome::Running => self.cal.schedule(i, self.systems[i].now()),
                StepOutcome::Done(stats) => {
                    self.ctls[i] = None;
                    results[i] = Some(Ok(stats));
                }
                StepOutcome::Dead(report) => {
                    self.ctls[i] = None;
                    self.dead[i] = Some(report.clone());
                    results[i] = Some(Err(report));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every member retires with a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_cpu::{TraceInst, TraceSource, VecTrace};
    use tus_sim::{Addr, PolicyKind, SimConfig};

    fn cfg(policy: PolicyKind) -> SimConfig {
        SimConfig::builder()
            .policy(policy)
            .sb_entries(16)
            .scale_caches_down(64)
            .build()
    }

    /// A store/load mix whose length and addresses vary by seed, so gang
    /// members genuinely diverge in timing.
    fn seeded_trace(seed: u64) -> VecTrace {
        let mut v = Vec::new();
        for i in 0..(400 + seed * 37) {
            let line = (i * 7 + seed) % 12;
            v.push(TraceInst::store(Addr::new(0x1_0000 + line * 64 + (i % 4) * 8), 8, i ^ seed));
            if i % 5 == seed % 5 {
                v.push(TraceInst::load(Addr::new(0x1_0000 + line * 64), 8));
            }
        }
        VecTrace::new(v)
    }

    fn build(seed: u64, policy: PolicyKind) -> System {
        let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(seeded_trace(seed))];
        System::new(&cfg(policy), traces, seed)
    }

    /// Gang execution is bit-identical to solo execution, for every
    /// policy, across a warm-up + measure phase pair.
    #[test]
    fn gang_matches_solo_bit_for_bit() {
        for policy in PolicyKind::ALL {
            let seeds = [1u64, 5, 9];
            let mut gang = SystemGang::new(seeds.iter().map(|&s| build(s, policy)).collect());
            let warm = gang.run_phase(RunGoal::Committed(100), 4_000_000);
            let end = gang.run_phase(RunGoal::Completion, 4_000_000);
            for (i, &seed) in seeds.iter().enumerate() {
                let mut solo = build(seed, policy);
                let sw = solo.try_run_committed(100, 4_000_000).expect("solo warmup");
                let se = solo.try_run_to_completion(4_000_000).expect("solo run");
                assert_eq!(warm[i].as_ref().expect("gang warmup"), &sw, "{policy} seed {seed}");
                assert_eq!(end[i].as_ref().expect("gang run"), &se, "{policy} seed {seed}");
            }
        }
    }

    /// A gang of one is exactly a solo run.
    #[test]
    fn gang_of_one_is_solo() {
        let mut gang = SystemGang::new(vec![build(3, PolicyKind::Tus)]);
        let end = gang.run_phase(RunGoal::Completion, 4_000_000);
        let mut solo = build(3, PolicyKind::Tus);
        let se = solo.try_run_to_completion(4_000_000).expect("solo");
        assert_eq!(end[0].as_ref().expect("gang"), &se);
    }

    /// One member exhausting the shared budget mid-gang retires alone:
    /// its report and every survivor's statistics are bit-identical to
    /// the solo runs under the same budget.
    #[test]
    fn member_death_leaves_others_bit_identical() {
        // Seed 9's trace is the longest; pick a budget between the
        // fastest and slowest members' solo completion cycles.
        let seeds = [1u64, 5, 9];
        let cycles: Vec<u64> = seeds
            .iter()
            .map(|&s| {
                let mut sys = build(s, PolicyKind::Tus);
                sys.try_run_to_completion(4_000_000).expect("solo");
                sys.now().raw()
            })
            .collect();
        let (min, max) = (
            *cycles.iter().min().expect("nonempty"),
            *cycles.iter().max().expect("nonempty"),
        );
        assert!(min < max, "seeds must diverge in run length: {cycles:?}");
        let budget = (min + max) / 2;

        let mut gang = SystemGang::new(seeds.iter().map(|&s| build(s, PolicyKind::Tus)).collect());
        let end = gang.run_phase(RunGoal::Completion, budget);
        let mut deaths = 0;
        for (i, &seed) in seeds.iter().enumerate() {
            let mut solo = build(seed, PolicyKind::Tus);
            match (&end[i], solo.try_run_to_completion(budget)) {
                (Ok(gs), Ok(ss)) => assert_eq!(gs, &ss, "survivor seed {seed}"),
                (Err(gr), Err(sr)) => {
                    deaths += 1;
                    assert_eq!(gr.kind, sr.kind, "death verdict, seed {seed}");
                    assert_eq!(gr.cycle, sr.cycle, "death cycle, seed {seed}");
                }
                (g, s) => panic!("gang/solo verdict diverged for seed {seed}: {g:?} vs {s:?}"),
            }
        }
        assert!(deaths >= 1, "budget {budget} retired nobody");
        assert!(deaths < seeds.len(), "budget {budget} retired everybody");
    }

    /// A member dead in an earlier phase stays dead: later phases report
    /// its original death and still run the survivors.
    #[test]
    fn dead_member_stays_retired_across_phases() {
        let seeds = [1u64, 9];
        let long = {
            let mut sys = build(9, PolicyKind::Baseline);
            sys.try_run_to_completion(4_000_000).expect("solo");
            sys.now().raw()
        };
        let short = {
            let mut sys = build(1, PolicyKind::Baseline);
            sys.try_run_to_completion(4_000_000).expect("solo");
            sys.now().raw()
        };
        assert!(short < long);
        let budget = (short + long) / 2;
        let mut gang =
            SystemGang::new(seeds.iter().map(|&s| build(s, PolicyKind::Baseline)).collect());
        let first = gang.run_phase(RunGoal::Completion, budget);
        assert!(first[0].is_ok(), "short member survives");
        let death = first[1].as_ref().expect_err("long member dies").clone();

        // A second phase (e.g. a follow-up measurement) re-reports the
        // death unchanged and re-runs the survivor (already finished, so
        // its goal is met immediately).
        let second = gang.run_phase(RunGoal::Completion, budget);
        assert!(second[0].is_ok());
        let again = second[1].as_ref().expect_err("death is sticky");
        assert_eq!(again.kind, death.kind);
        assert_eq!(again.cycle, death.cycle);
    }

    /// An empty gang is a no-op.
    #[test]
    fn empty_gang_runs_no_phases() {
        let mut gang = SystemGang::new(Vec::new());
        assert!(gang.is_empty());
        assert!(gang.run_phase(RunGoal::Completion, 1_000).is_empty());
    }
}
