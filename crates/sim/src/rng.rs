//! Seeded, reproducible randomness.
//!
//! Every source of randomness in the simulator goes through [`SimRng`],
//! which is deterministically seeded so that any simulation can be replayed
//! exactly. Wall-clock entropy is never used.
//!
//! The generator is a self-contained xoshiro256\*\* (seeded via SplitMix64),
//! which keeps simulation results stable across dependency upgrades.

/// A deterministic random-number generator for simulations.
///
/// # Example
///
/// ```
/// use tus_sim::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.range(0, 1000), b.range(0, 1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator; `salt` distinguishes
    /// children of the same parent.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.bits();
        SimRng::seed(s ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Arbitrary 64-bit value (xoshiro256\*\*).
    pub fn bits(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire-style rejection-free-enough bounded sampling: multiply-shift
        // is unbiased enough for workload generation and fully deterministic.
        let x = self.bits();
        lo + ((x as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.range(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample from a geometric-ish distribution with mean approximately
    /// `mean` (minimum 1). Used for burst lengths and dependency distances.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.unit().max(f64::MIN_POSITIVE);
        let v = (u.ln() / (1.0 - p).ln()).floor() as u64;
        v + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn fork_independence() {
        let mut a = SimRng::seed(7);
        let mut c1 = a.fork(1);
        let mut a2 = SimRng::seed(7);
        let mut c1b = a2.fork(1);
        assert_eq!(c1.bits(), c1b.bits());
        let mut c2 = a.fork(2);
        assert_ne!(c1.bits(), c2.bits());
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed(1);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_span() {
        let mut r = SimRng::seed(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn unit_in_bounds() {
        let mut r = SimRng::seed(4);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn geometric_mean_roughly_right() {
        let mut r = SimRng::seed(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((6.0..10.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn geometric_degenerate() {
        let mut r = SimRng::seed(3);
        assert_eq!(r.geometric(0.5), 1);
        assert_eq!(r.geometric(1.0), 1);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }
}
