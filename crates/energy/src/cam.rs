//! CAM area and search-energy models.
//!
//! Both structures of interest are content-addressable:
//!
//! * the **store buffer** is searched by every load with a 64-bit virtual
//!   address key over wide entries (address + data + state);
//! * the **WOQ** is searched with a 10-bit set/way tag over narrow 34-bit
//!   entries, and far less often (store hits + external requests instead
//!   of every load).
//!
//! We model area and per-search energy as affine functions of the entry
//! count, `f(n) = f0 + f1·n`, where the constant term captures the
//! peripheral circuitry (match lines, priority encoder for youngest-entry
//! selection). The coefficients are *fitted* so that the model reproduces
//! the ratios the paper reports from McPAT:
//!
//! * search energy: `E(114) / E(32) = 2` ⇒ `e0 = 50·e1`;
//! * area: `A(32) / A(114) = 0.79` (a 21% reduction) ⇒ `a0 = 276.5·a1`;
//! * the WOQ (narrow entries, narrow key): 13× smaller and 10× cheaper
//!   per search than the 114-entry SB.
//!
//! Units: picojoules and square micrometres at a nominal 22 nm / 0.6 V
//! point. Absolute values are representative; the fitted *ratios* are
//! what the evaluation relies on.

/// Per-entry search-energy coefficient of the SB CAM (pJ/entry).
const SB_E1: f64 = 0.1;
/// Peripheral search-energy constant of the SB CAM (pJ), fitted to
/// `E(114) = 2·E(32)`.
const SB_E0: f64 = 50.0 * SB_E1;

/// Per-entry area coefficient of the SB CAM (µm²/entry).
const SB_A1: f64 = 100.0;
/// Peripheral area constant (µm²), fitted to `A(32) = 0.79·A(114)`.
const SB_A0: f64 = 276.5 * SB_A1;

/// Ratio of a WOQ entry's width to an SB entry's width: 34 bits of
/// set/way + group + mask versus an SB entry's address + data + state
/// (~34 / (64+64+...) ≈ covered by the paper's 13× area claim, which we
/// adopt directly).
const WOQ_AREA_RATIO_VS_SB114: f64 = 13.0;

/// Ratio of WOQ search energy (10-bit key, 64 narrow entries) to the
/// 114-entry SB's (64-bit key, wide entries) — the paper's 10×.
const WOQ_ENERGY_RATIO_VS_SB114: f64 = 10.0;

/// Search energy of an `n`-entry store buffer, in pJ.
///
/// # Example
///
/// ```
/// use tus_energy::sb_search_energy;
/// let ratio = sb_search_energy(114) / sb_search_energy(32);
/// assert!((ratio - 2.0).abs() < 1e-9); // the paper's 2×
/// ```
pub fn sb_search_energy(entries: usize) -> f64 {
    SB_E0 + SB_E1 * entries as f64
}

/// Write energy of one SB entry insertion, in pJ (no associative match —
/// roughly half a search).
pub fn sb_write_energy(entries: usize) -> f64 {
    sb_search_energy(entries) * 0.5
}

/// Area of an `n`-entry store buffer, in µm².
///
/// # Example
///
/// ```
/// use tus_energy::sb_area;
/// let reduction = 1.0 - sb_area(32) / sb_area(114);
/// assert!((reduction - 0.21).abs() < 0.005); // the paper's 21%
/// ```
pub fn sb_area(entries: usize) -> f64 {
    SB_A0 + SB_A1 * entries as f64
}

/// Area of the WOQ (64 × 34-bit entries by default), in µm². Scales
/// linearly from the paper's 13×-smaller-than-114-SB anchor.
pub fn woq_area(entries: usize) -> f64 {
    sb_area(114) / WOQ_AREA_RATIO_VS_SB114 * (entries as f64 / 64.0)
}

/// Per-search energy of the WOQ (10-bit tag), in pJ.
pub fn woq_search_energy(entries: usize) -> f64 {
    sb_search_energy(114) / WOQ_ENERGY_RATIO_VS_SB114 * (entries as f64 / 64.0)
}

/// Store-to-load forwarding latency of an `n`-entry SB in cycles —
/// re-exported convenience mirroring `tus_sim::config::SbConfig`.
pub fn sb_forward_latency(entries: usize) -> u64 {
    tus_sim::config::SbConfig { entries }.forward_latency()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_sb_energy_2x() {
        assert!((sb_search_energy(114) / sb_search_energy(32) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_ratio_sb_area_21pct() {
        let red = 1.0 - sb_area(32) / sb_area(114);
        assert!((red - 0.21).abs() < 0.005, "area reduction {red}");
    }

    #[test]
    fn paper_ratio_woq_vs_114_sb() {
        assert!((sb_area(114) / woq_area(64) - 13.0).abs() < 1e-9);
        assert!((sb_search_energy(114) / woq_search_energy(64) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn woq_vs_32_sb_roughly_5x_energy() {
        let r = sb_search_energy(32) / woq_search_energy(64);
        assert!((4.0..6.5).contains(&r), "WOQ vs 32-SB energy ratio {r}");
    }

    #[test]
    fn monotone_in_entries() {
        assert!(sb_search_energy(114) > sb_search_energy(64));
        assert!(sb_area(114) > sb_area(64));
        assert!(woq_area(128) > woq_area(64));
        assert!(woq_search_energy(32) < woq_search_energy(64));
    }

    #[test]
    fn forwarding_latency_reexport() {
        assert_eq!(sb_forward_latency(114), 5);
        assert_eq!(sb_forward_latency(32), 3);
    }
}
