//! `tus-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! tus-harness <experiment> [--quick|--full] [--seed N] [--out DIR]
//!             [--parallel-cap N] [--jobs N] [--no-cache] [--no-batch]
//!             [--no-gang] [--kernel K] [--coherence C]
//! tus-harness fuzz [--programs N] [--seeds N] [--seed N] [--jobs N]
//!             [--policy P] [--out DIR] [--replay FILE] [--save-corpus N]
//!             [--no-shrink] [--kernel K] [--coherence C]
//! tus-harness check [--corpus DIR] [--litmus all|NAME[,NAME]] [--fuzz N]
//!             [--seed N] [--max-threads N] [--max-ops N] [--max-states N]
//!             [--seeds N] [--no-reduction] [--no-lazy] [--stats]
//!             [--policy P] [--kernel K] [--coherence C] [--out DIR] [--jobs N]
//! tus-harness bench-kernel [--quick|--full] [--seed N] [--out DIR]
//!             [--parallel-cap N] [--jobs N] [--no-batch]
//! tus-harness bench-hotpath [--quick|--full] [--seed N] [--out DIR]
//!             [--parallel-cap N] [--jobs N] [--kernel K]
//!             [--no-batch] [--no-gang] [--min-sims-per-sec X]
//!
//! experiments: table1 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15
//!              intext ablation coherence all
//! kernels (K): lockstep skip event (default: event)
//! coherence backends (C): mesi tardis (default: mesi)
//! ```
//!
//! Runs are executed by a worker pool (`--jobs`, default: available
//! parallelism), deduplicated across figures, batched by machine
//! configuration (`--no-batch` disables lane batching), gang-scheduled
//! within each lane (`--no-gang` falls back to per-sim execution), and
//! memoized on disk under `<out>/.runcache` (`--no-cache` disables the
//! disk cache).
//! All of this is output-neutral: simulations are seeded and
//! deterministic, so the tables and CSVs are byte-identical to a
//! sequential, uncached run — under **any** simulation kernel
//! (`--kernel`), which is what the CI kernel-equivalence job checks.
//! Each experiment reports wall-clock time and simulation throughput;
//! `all` additionally writes `BENCH_harness.json` next to the CSVs, and
//! `bench-kernel` runs the whole suite cold under all three kernels and
//! writes `BENCH_kernel.json` with the measured per-kernel wall-clock.
//! `bench-hotpath` runs the suite cold once (no memoization, no disk
//! cache) and **appends** a timestamped entry to `BENCH_hotpath.json`,
//! so the file accumulates a throughput trajectory across optimization
//! rounds; `--min-sims-per-sec` makes it exit non-zero below a floor
//! (the CI perf-smoke contract).

use std::io::Write as _;

use tus_harness::experiments::{self, Options, EXPERIMENTS};
use tus_harness::{ExecCounters, Executor, Scale};
use tus_sim::{CoherenceKind, KernelKind};

fn usage() -> ! {
    eprintln!(
        "usage: tus-harness <experiment> [--quick|--full] [--seed N] [--out DIR]\n\
         \x20                  [--parallel-cap N] [--jobs N] [--no-cache] [--no-batch]\n\
         \x20                  [--no-gang] [--kernel K] [--coherence C] [--trace]\n\
         \x20      tus-harness fuzz [--programs N] [--seeds N] [--seed N] [--jobs N]\n\
         \x20                  [--policy P] [--out DIR] [--replay FILE] [--no-shrink]\n\
         \x20                  [--kernel K] [--coherence C] [--trace]\n\
         \x20      tus-harness check [--corpus DIR] [--litmus all|NAME[,NAME]] [--fuzz N]\n\
         \x20                  [--seed N] [--max-threads N] [--max-ops N] [--max-states N]\n\
         \x20                  [--seeds N] [--no-reduction] [--no-lazy] [--stats] [--policy P]\n\
         \x20                  [--kernel K] [--coherence C] [--out DIR] [--jobs N] [--no-shrink]\n\
         \x20      tus-harness trace [WORKLOAD] [--policy P] [--sb N] [--kernel K]\n\
         \x20                  [--coherence C] [--seed N] [--insts N] [--cap N] [--out DIR]\n\
         \x20      tus-harness serve [--listen ADDR:PORT] [--socket PATH] [--jobs N]\n\
         \x20                  [--handlers N] [--out DIR] [--no-cache] [--max-budget N]\n\
         \x20      tus-harness client (--connect HOST:PORT | --socket PATH) [--wait SECS]\n\
         \x20                  <ping|point|experiment|fuzz|trace|counters|shutdown> [...]\n\
         \x20      tus-harness bench-kernel [--quick|--full] [--seed N] [--out DIR]\n\
         \x20                  [--parallel-cap N] [--jobs N] [--no-batch]\n\
         \x20      tus-harness bench-hotpath [--quick|--full] [--seed N] [--out DIR]\n\
         \x20                  [--parallel-cap N] [--jobs N] [--kernel K]\n\
         \x20                  [--no-batch] [--no-gang] [--min-sims-per-sec X]\n\
         experiments: table1 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 intext ablation\n\
         \x20            coherence all\n\
         kernels (K): lockstep skip event (default: event)\n\
         coherence backends (C): mesi tardis (default: mesi)\n\
         --trace arms the structured event recorder in every simulation\n\
         (observation-only: outputs and memo keys are unchanged)"
    );
    std::process::exit(2);
}

/// One experiment's measured execution cost.
struct Timing {
    name: &'static str,
    seconds: f64,
    counters: ExecCounters,
}

impl Timing {
    fn sims_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.counters.executed as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn report(t: &Timing) {
    eprintln!(
        "[{}: {:.1}s, {} sims ({:.1} sims/s), {} memo hits, {} cache hits]",
        t.name,
        t.seconds,
        t.counters.executed,
        t.sims_per_sec(),
        t.counters.memo_hits,
        t.counters.disk_hits,
    );
}

/// Writes `BENCH_harness.json`: per-experiment wall-clock seconds and
/// simulation throughput (hand-rolled JSON; the workspace is std-only).
fn write_bench_json(out: &std::path::Path, timings: &[Timing]) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let mut f = std::fs::File::create(out.join("BENCH_harness.json"))?;
    writeln!(f, "{{")?;
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        writeln!(
            f,
            "  \"{}\": {{\"seconds\": {:.3}, \"sims\": {}, \"sims_per_sec\": {:.2}, \"memo_hits\": {}, \"disk_hits\": {}}}{comma}",
            t.name,
            t.seconds,
            t.counters.executed,
            t.sims_per_sec(),
            t.counters.memo_hits,
            t.counters.disk_hits,
        )?;
    }
    writeln!(f, "}}")?;
    Ok(())
}

/// `bench-kernel`: runs the full experiment suite **cold** (fresh
/// executor, no disk cache) once per kernel and records the wall-clock
/// of each in `<out>/BENCH_kernel.json`. The CSVs land in per-kernel
/// subdirectories, so a byte-level diff of the two trees doubles as an
/// equivalence check. Returns the process exit code.
fn bench_kernel(opt: &Options, jobs: usize, batch: bool) -> i32 {
    let mut rows: Vec<(KernelKind, f64, ExecCounters)> = Vec::new();
    for kernel in KernelKind::ALL {
        let kopt = Options {
            kernel,
            out: opt.out.join("bench-kernel").join(kernel.label()),
            ..opt.clone()
        };
        let ex = Executor::new(jobs, None).batching(batch);
        eprintln!(
            "[bench-kernel: running all experiments, {kernel} kernel, {} backend]",
            opt.coherence
        );
        let started = std::time::Instant::now();
        experiments::all(&ex, &kopt);
        let seconds = started.elapsed().as_secs_f64();
        let counters = ex.counters();
        eprintln!(
            "[bench-kernel: {kernel} kernel took {seconds:.1}s, {} sims]",
            counters.executed
        );
        rows.push((kernel, seconds, counters));
    }
    match write_bench_kernel_json(&opt.out, opt.coherence, &rows) {
        Ok(()) => {
            let lockstep = rows
                .iter()
                .find(|r| r.0 == KernelKind::Lockstep)
                .map_or(0.0, |r| r.1);
            let summary: Vec<String> = rows
                .iter()
                .map(|(k, s, _)| format!("{k} {s:.1}s ({:.2}x)", lockstep / s.max(1e-9)))
                .collect();
            eprintln!("[bench-kernel: {}]", summary.join(", "));
            0
        }
        Err(e) => {
            eprintln!("bench-kernel: cannot write BENCH_kernel.json: {e}");
            2
        }
    }
}

/// Writes `BENCH_kernel.json`: cold wall-clock per kernel plus each
/// kernel's speedup over lockstep (hand-rolled JSON; the workspace is
/// std-only).
fn write_bench_kernel_json(
    out: &std::path::Path,
    coherence: tus_sim::CoherenceKind,
    rows: &[(KernelKind, f64, ExecCounters)],
) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let mut f = std::fs::File::create(out.join("BENCH_kernel.json"))?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"coherence\": \"{coherence}\",")?;
    for (kernel, seconds, counters) in rows {
        let sims_per_sec = if *seconds > 0.0 {
            counters.executed as f64 / seconds
        } else {
            0.0
        };
        writeln!(
            f,
            "  \"{kernel}\": {{\"seconds\": {seconds:.3}, \"sims\": {}, \"sims_per_sec\": {sims_per_sec:.2}}},",
            counters.executed,
        )?;
    }
    let lockstep = rows.iter().find(|r| r.0 == KernelKind::Lockstep);
    if let Some(l) = lockstep {
        for (i, (kernel, seconds, _)) in rows.iter().enumerate() {
            if *kernel == KernelKind::Lockstep {
                continue;
            }
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(
                f,
                "  \"{kernel}_speedup\": {:.3}{comma}",
                l.1 / seconds.max(1e-9)
            )?;
        }
    }
    writeln!(f, "}}")?;
    Ok(())
}

/// Suite throughput (sims/sec, skip kernel, default scale) measured on
/// the commit immediately before the dense line-state overhaul — the
/// denominator `bench-hotpath` reports its speedup against. Update it
/// when a later optimization round establishes a new baseline.
const HOTPATH_BASELINE_SIMS_PER_SEC: f64 = 4.77;

/// `bench-hotpath`: runs the full experiment suite **cold** (fresh
/// executor, no memo table reuse across experiments beyond the run's
/// own, no disk cache) and appends a timestamped throughput entry to
/// `<out>/BENCH_hotpath.json`, so repeated runs accumulate a perf
/// trajectory instead of overwriting each other. With
/// `--min-sims-per-sec`, exits non-zero when measured throughput falls
/// below the floor — the CI perf-smoke contract. Returns the process
/// exit code.
fn bench_hotpath(opt: &Options, jobs: usize, batch: bool, gang: bool, floor: Option<f64>) -> i32 {
    let hopt = Options {
        out: opt.out.join("bench-hotpath"),
        ..opt.clone()
    };
    let ex = Executor::new(jobs, None).batching(batch).gang(gang);
    let gang_label = if gang { "gang" } else { "solo" };
    eprintln!(
        "[bench-hotpath: running all experiments cold, {} kernel, {} backend, {gang_label} lanes]",
        hopt.kernel, hopt.coherence
    );
    let started = std::time::Instant::now();
    experiments::all(&ex, &hopt);
    let seconds = started.elapsed().as_secs_f64();
    let counters = ex.counters();
    let sims_per_sec = if seconds > 0.0 {
        counters.executed as f64 / seconds
    } else {
        0.0
    };
    let speedup = sims_per_sec / HOTPATH_BASELINE_SIMS_PER_SEC;
    eprintln!(
        "[bench-hotpath: {seconds:.1}s, {} sims, {sims_per_sec:.2} sims/s, \
         {speedup:.2}x over the {HOTPATH_BASELINE_SIMS_PER_SEC} sims/s baseline \
         ({} kernel, {} backend, {gang_label} lanes)]",
        counters.executed, hopt.kernel, hopt.coherence
    );
    if let Err(e) = write_bench_hotpath_json(&opt.out, &hopt, gang, seconds, counters, sims_per_sec)
    {
        eprintln!("bench-hotpath: cannot write BENCH_hotpath.json: {e}");
        return 2;
    }
    if let Some(floor) = floor {
        if sims_per_sec < floor {
            eprintln!(
                "bench-hotpath: FAIL — {sims_per_sec:.2} sims/s is below the \
                 floor of {floor:.2} sims/s"
            );
            return 1;
        }
        eprintln!("bench-hotpath: ok — above the {floor:.2} sims/s floor");
    }
    0
}

/// A one-line fingerprint of the machine a benchmark entry was measured
/// on — CPU model and logical core count — so entries from different
/// boxes in the trajectory are never compared as if like-for-like.
fn host_fingerprint() -> String {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':'))
                .map(|(_, v)| v.split_whitespace().collect::<Vec<_>>().join(" "))
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_owned());
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    // The fingerprint lands inside a JSON string literal.
    let model: String = model.chars().filter(|c| *c != '"' && *c != '\\').collect();
    format!("{model} x{cores}")
}

/// Appends one timestamped entry to `BENCH_hotpath.json`, keeping the
/// file a valid JSON array across runs (hand-rolled JSON; the workspace
/// is std-only). A missing file — or a pre-trajectory single-object file
/// — starts a fresh array.
fn write_bench_hotpath_json(
    out: &std::path::Path,
    hopt: &Options,
    gang: bool,
    seconds: f64,
    counters: ExecCounters,
    sims_per_sec: f64,
) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let path = out.join("BENCH_hotpath.json");
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let entry = format!(
        "  {{\"unix_time\": {unix_time}, \"host\": \"{}\", \
         \"kernel\": \"{}\", \"coherence\": \"{}\", \"gang\": {gang}, \
         \"seconds\": {seconds:.3}, \
         \"sims\": {}, \"sims_per_sec\": {sims_per_sec:.2}, \
         \"baseline_sims_per_sec\": {HOTPATH_BASELINE_SIMS_PER_SEC:.2}, \
         \"speedup\": {:.3}}}",
        host_fingerprint(),
        hopt.kernel,
        hopt.coherence,
        counters.executed,
        sims_per_sec / HOTPATH_BASELINE_SIMS_PER_SEC,
    );
    let body = match std::fs::read_to_string(&path) {
        Ok(prev) => {
            let prev = prev.trim_end();
            match prev.strip_suffix(']') {
                // An existing trajectory: splice the new entry in front
                // of the closing bracket.
                Some(head) if prev.starts_with('[') => {
                    let head = head.trim_end();
                    if head == "[" {
                        format!("[\n{entry}\n]\n")
                    } else {
                        format!("{head},\n{entry}\n]\n")
                    }
                }
                _ => format!("[\n{entry}\n]\n"),
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(&path, body)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "fuzz" {
        tus_harness::fuzz_cmd::main_fuzz(&args[1..]);
    }
    if args[0] == "check" {
        tus_harness::check_cmd::main_check(&args[1..]);
    }
    if args[0] == "trace" {
        tus_harness::trace_cmd::main_trace(&args[1..]);
    }
    if args[0] == "serve" {
        tus_harness::serve::main_serve(&args[1..]);
    }
    if args[0] == "client" {
        tus_harness::client::main_client(&args[1..]);
    }
    let mut opt = Options::default();
    let mut cmd = None;
    let mut jobs = Executor::default_jobs();
    let mut cache = true;
    let mut batch = true;
    let mut gang = true;
    let mut min_sims_per_sec = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opt.scale = Scale::Quick,
            "--full" => opt.scale = Scale::Full,
            "--seed" => {
                opt.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => opt.out = it.next().unwrap_or_else(|| usage()).into(),
            "--parallel-cap" => {
                opt.parallel_cap = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--no-cache" => cache = false,
            "--no-batch" => batch = false,
            "--gang" => gang = true,
            "--no-gang" => gang = false,
            "--min-sims-per-sec" => {
                min_sims_per_sec = Some(
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace" => tus::set_trace_default(true),
            "--kernel" => {
                opt.kernel = it
                    .next()
                    .and_then(|v| KernelKind::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            "--coherence" => {
                opt.coherence = it
                    .next()
                    .and_then(|v| CoherenceKind::parse(&v))
                    .unwrap_or_else(|| usage())
            }
            c if cmd.is_none() && !c.starts_with('-') => cmd = Some(c.to_owned()),
            _ => usage(),
        }
    }
    let Some(cmd) = cmd else { usage() };
    if cmd == "bench-kernel" {
        std::process::exit(bench_kernel(&opt, jobs, batch));
    }
    if cmd == "bench-hotpath" {
        std::process::exit(bench_hotpath(&opt, jobs, batch, gang, min_sims_per_sec));
    }
    let cache_dir = cache.then(|| opt.out.join(".runcache"));
    let ex = Executor::new(jobs, cache_dir).batching(batch).gang(gang);

    let run_timed = |name: &'static str, f: fn(&Executor, &Options)| -> Timing {
        let before = ex.counters();
        let started = std::time::Instant::now();
        f(&ex, &opt);
        Timing {
            name,
            seconds: started.elapsed().as_secs_f64(),
            counters: ex.counters().since(before),
        }
    };

    let started = std::time::Instant::now();
    if cmd == "all" {
        let timings: Vec<Timing> = EXPERIMENTS
            .iter()
            .map(|&(name, f)| {
                let t = run_timed(name, f);
                report(&t);
                t
            })
            .collect();
        if let Err(e) = write_bench_json(&opt.out, &timings) {
            eprintln!("warning: could not write BENCH_harness.json: {e}");
        }
    } else {
        let Some(&(name, f)) = EXPERIMENTS.iter().find(|&&(n, _)| n == cmd) else {
            eprintln!(
                "{}",
                tus_harness::HarnessError::UnknownExperiment { name: cmd.clone() }
            );
            usage()
        };
        report(&run_timed(name, f));
    }
    eprintln!("[{:.1}s]", started.elapsed().as_secs_f64());
}
