//! Quickstart: build a one-core system with the TUS drain policy, run a
//! tiny program, and inspect the statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tus::System;
use tus_cpu::{TraceInst, VecTrace};
use tus_sim::{Addr, PolicyKind, SimConfig};

fn main() {
    // Table I machine, TUS store handling.
    let cfg = SimConfig::builder().policy(PolicyKind::Tus).build();
    println!("{}", cfg.render_table1());

    // A minimal program: a store burst over 8 cache lines, then read one
    // value back.
    let base = 0x1_0000u64;
    let mut insts = Vec::new();
    for line in 0..8u64 {
        for word in 0..8u64 {
            insts.push(TraceInst::store(
                Addr::new(base + line * 64 + word * 8),
                8,
                line * 10 + word,
            ));
        }
    }
    insts.push(TraceInst::load(Addr::new(base), 8));
    let n = insts.len() as u64;

    let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(insts))], 42);
    sys.core_mut(0).record_loads(true);
    let stats = sys.run_to_completion(1_000_000);

    println!("committed {} instructions in {} cycles", n, stats.get("cycles"));
    println!("loaded value: {} (expected 0)", sys.core(0).loaded_values()[0]);
    println!(
        "L1D store writes: {} (64 stores coalesced into {} line writes)",
        stats.get("mem.core0.l1d_writes"),
        stats.get("mem.core0.l1d_writes"),
    );
    println!(
        "WOQ atomic groups formed: {}, visibility flips: {}",
        stats.get("core0.policy.atomic_groups"),
        stats.get("core0.policy.visibility_flips"),
    );
}
