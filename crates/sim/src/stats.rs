//! Statistics registry.
//!
//! Components keep their own strongly-typed counters and export them into a
//! [`StatSet`] (an ordered name → value map) at the end of a run. The
//! harness merges per-component sets, computes derived metrics (IPC, stall
//! fractions, energy) and renders tables.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered collection of named statistics.
///
/// Values are `f64` so counters and derived ratios live side by side.
///
/// # Example
///
/// ```
/// use tus_sim::StatSet;
/// let mut s = StatSet::new();
/// s.set("cycles", 100.0);
/// s.add("l1d.hits", 3.0);
/// s.add("l1d.hits", 2.0);
/// assert_eq!(s.get("l1d.hits"), 5.0);
/// assert_eq!(s.get("missing"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatSet {
    values: BTreeMap<String, f64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    ///
    /// Only allocates a key `String` when `name` is not yet present; this
    /// sits on the per-run export/merge path of every experiment.
    pub fn set(&mut self, name: &str, value: f64) {
        match self.values.get_mut(name) {
            Some(slot) => *slot = value,
            None => {
                self.values.insert(name.to_owned(), value);
            }
        }
    }

    /// Adds `value` to `name` (missing names start at 0). Like [`set`],
    /// allocates only when the key is new.
    ///
    /// [`set`]: StatSet::set
    pub fn add(&mut self, name: &str, value: f64) {
        match self.values.get_mut(name) {
            Some(slot) => *slot += value,
            None => {
                self.values.insert(name.to_owned(), value);
            }
        }
    }

    /// Value of `name`, or `0.0` if absent.
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Merges `other` into `self`, prefixing each of its names with
    /// `prefix` and a dot.
    pub fn absorb(&mut self, prefix: &str, other: &StatSet) {
        for (k, v) in &other.values {
            self.add(&format!("{prefix}.{k}"), *v);
        }
    }

    /// Merges `other` into `self` by summation, no prefixing.
    pub fn accumulate(&mut self, other: &StatSet) {
        for (k, v) in &other.values {
            self.add(k, *v);
        }
    }

    /// Returns `self - other` per name (names missing from `other` count
    /// as 0). Used to subtract a warm-up snapshot from end-of-run
    /// counters; derived ratios (e.g. `ipc`) must be recomputed from the
    /// differences by the caller.
    pub fn minus(&self, other: &StatSet) -> StatSet {
        let mut out = self.clone();
        for (k, v) in &other.values {
            *out.values.entry(k.clone()).or_insert(0.0) -= v;
        }
        out
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of statistics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the set as `name = value` lines (used by examples and
    /// debugging output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.values.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &self.values {
            let line = if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{k:width$} = {}\n", *v as i64)
            } else {
                format!("{k:width$} = {v:.4}\n")
            };
            out.push_str(&line);
        }
        out
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl FromIterator<(String, f64)> for StatSet {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        StatSet {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, f64)> for StatSet {
    fn extend<I: IntoIterator<Item = (String, f64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(&k, v);
        }
    }
}

/// Canonical statistic names shared by exporters and consumers.
///
/// Several statistics are produced in one crate (e.g. the CPU core's
/// `stall_sb`, the private cache's `l1d_writes`) and consumed in another
/// (the harness's stall-fraction and hit-rate computations). Spelling the
/// name twice as a string literal means a typo silently splits a category
/// into two — the consumer reads 0.0 and no test notices. Both sides now
/// reference these constants, so a rename is a compile-time event.
pub mod names {
    /// Total cycles of the run (system level).
    pub const CYCLES: &str = "cycles";
    /// Instructions committed across all cores (system level).
    pub const TOTAL_COMMITTED: &str = "total_committed";
    /// SB-full dispatch-stall cycles (per-core CPU).
    pub const STALL_SB: &str = "stall_sb";
    /// Stores written into the L1D (per-core memory side).
    pub const L1D_WRITES: &str = "l1d_writes";
    /// L1D load hits (per-core memory side).
    pub const L1D_LOAD_HITS: &str = "l1d_load_hits";
    /// L1D load misses (per-core memory side).
    pub const L1D_LOAD_MISSES: &str = "l1d_load_misses";

    /// Full name of a per-core CPU statistic as exported by the system
    /// (`core<i>.cpu.<stat>`).
    pub fn core_cpu(core: usize, stat: &str) -> String {
        format!("core{core}.cpu.{stat}")
    }

    /// Full name of a per-core memory-side statistic as exported by the
    /// system (`mem.core<i>.<stat>`).
    pub fn mem_core(core: usize, stat: &str) -> String {
        format!("mem.core{core}.{stat}")
    }
}

/// Geometric mean of an iterator of positive values. Returns 1.0 for an
/// empty iterator; ignores non-positive values (they would poison the log).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut s = StatSet::new();
        s.add("a", 1.0);
        s.add("a", 2.0);
        s.set("b", 10.0);
        s.set("b", 4.0);
        assert_eq!(s.get("a"), 3.0);
        assert_eq!(s.get("b"), 4.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn absorb_prefixes() {
        let mut inner = StatSet::new();
        inner.set("hits", 5.0);
        let mut outer = StatSet::new();
        outer.absorb("l1d", &inner);
        assert_eq!(outer.get("l1d.hits"), 5.0);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = StatSet::new();
        a.set("x", 1.0);
        let mut b = StatSet::new();
        b.set("x", 2.0);
        b.set("y", 3.0);
        a.accumulate(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
    }

    #[test]
    fn render_contains_all_names() {
        let mut s = StatSet::new();
        s.set("alpha", 1.0);
        s.set("beta", 2.5);
        let r = s.render();
        assert!(r.contains("alpha"));
        assert!(r.contains("beta"));
        assert!(r.contains("2.5"));
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        // Non-positive ignored.
        assert!((geomean([0.0, 2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iter() {
        let s: StatSet = vec![("a".to_owned(), 1.0), ("b".to_owned(), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(s.get("b"), 2.0);
    }
}
