//! One benchmark per paper table/figure.
//!
//! Each benchmark runs the minimal simulation slice that regenerates the
//! corresponding result (full tables come from `tus-harness <figN>`);
//! together they exercise every experiment code path under `cargo bench`
//! and track end-to-end simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;

use tus_bench::short_run;
use tus_sim::{PolicyKind, SimConfig};

const INSTS: u64 = 4_000;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(SimConfig::default().render_table1()))
    });
}

/// Fig. 8: one point of the SB-size scalability sweep per policy.
fn bench_fig08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_sb_scaling");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for policy in PolicyKind::ALL {
        for sb in [32usize, 114] {
            g.bench_function(format!("{}_sb{}", policy.label(), sb), |b| {
                b.iter(|| black_box(short_run("502.gcc3-like", policy, sb, INSTS).ipc))
            });
        }
    }
    g.finish();
}

/// Fig. 9: SB-stall attribution on the burstiest workload.
fn bench_fig09(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_sb_stalls");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(short_run("502.gcc5-like", policy, 114, INSTS).sb_stall_frac))
        });
    }
    g.finish();
}

/// Figs. 10/13: speedup measurement (one SB-bound, one compute-bound
/// S-curve point) at both baseline SB sizes.
fn bench_fig10_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_13_speedup");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for (name, wl) in [("sb_bound", "502.gcc2-like"), ("flat", "541.leela-like")] {
        for sb in [114usize, 32] {
            g.bench_function(format!("{name}_sb{sb}"), |b| {
                b.iter(|| black_box(short_run(wl, PolicyKind::Tus, sb, INSTS).ipc))
            });
        }
    }
    g.finish();
}

/// Figs. 11/15: the EDP pipeline (simulation + energy accounting).
fn bench_fig11_15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_15_edp");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for policy in [PolicyKind::Baseline, PolicyKind::Ssb, PolicyKind::Tus] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(short_run("557.xz-like", policy, 114, INSTS).edp))
        });
    }
    g.finish();
}

/// Figs. 12/14: a 16-core PARSEC slice (speedup + EDP inputs).
fn bench_fig12_14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_14_parsec16");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
        g.bench_function(format!("dedup_{}", policy.label()), |b| {
            b.iter(|| black_box(short_run("dedup-like", policy, 114, 2_000).ipc))
        });
    }
    g.finish();
}

/// In-text: energy/area model evaluation.
fn bench_intext(c: &mut Criterion) {
    c.bench_function("intext/structure_models", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for sb in [32usize, 64, 114] {
                acc += tus_energy::sb_area(sb) + tus_energy::sb_search_energy(sb);
            }
            acc += tus_energy::woq_area(64) + tus_energy::woq_search_energy(64);
            black_box(acc)
        })
    });
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig08,
    bench_fig09,
    bench_fig10_13,
    bench_fig11_15,
    bench_fig12_14,
    bench_intext
);
criterion_main!(figures);
