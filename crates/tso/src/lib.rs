//! x86-TSO verification for the TUS simulator.
//!
//! Section III-D of the paper argues that TUS preserves every x86-TSO
//! ordering. This crate turns that argument into an executable property:
//!
//! * [`prog`] — a tiny litmus-program representation (threads of
//!   stores/loads/fences over named locations).
//! * [`refmodel`] — the operational x86-TSO model of Sewell et al.
//!   (per-thread FIFO store buffers over a shared memory), with an
//!   exhaustive interleaving enumerator that computes the exact set of
//!   TSO-allowed outcomes.
//! * [`litmus`] — the canonical corpus (SB, MP, LB, IRIW, n5/n6, 2+2W,
//!   CoRR, ...) with the classifications from the x86-TSO paper, used to
//!   validate the reference model itself.
//! * [`conformance`] — compiles litmus programs onto the full simulator
//!   (one core per thread), runs them across many seeds with coherence-
//!   message jitter to explore timings, and checks that every observed
//!   outcome is TSO-allowed.

pub mod conformance;
pub mod litmus;
pub mod prog;
pub mod refmodel;

pub use conformance::{check_conformance, observe_outcomes, ConformanceReport};
pub use litmus::{all_litmus_tests, LitmusTest};
pub use prog::{LOp, Loc, Outcome, Program, Thread};
pub use refmodel::tso_outcomes;
