//! `tus-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! tus-harness <experiment> [--quick|--full] [--seed N] [--out DIR]
//!             [--parallel-cap N] [--jobs N] [--no-cache]
//! tus-harness fuzz [--programs N] [--seeds N] [--seed N] [--jobs N]
//!             [--policy P] [--out DIR] [--replay FILE] [--no-shrink]
//!
//! experiments: table1 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15
//!              intext ablation all
//! ```
//!
//! Runs are executed by a worker pool (`--jobs`, default: available
//! parallelism), deduplicated across figures, and memoized on disk under
//! `<out>/.runcache` (`--no-cache` disables the disk cache). All of this
//! is output-neutral: simulations are seeded and deterministic, so the
//! tables and CSVs are byte-identical to a sequential, uncached run.
//! Each experiment reports wall-clock time and simulation throughput;
//! `all` additionally writes `BENCH_harness.json` next to the CSVs.

use std::io::Write as _;

use tus_harness::experiments::{Options, EXPERIMENTS};
use tus_harness::{ExecCounters, Executor, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: tus-harness <experiment> [--quick|--full] [--seed N] [--out DIR]\n\
         \x20                  [--parallel-cap N] [--jobs N] [--no-cache]\n\
         \x20      tus-harness fuzz [--programs N] [--seeds N] [--seed N] [--jobs N]\n\
         \x20                  [--policy P] [--out DIR] [--replay FILE] [--no-shrink]\n\
         experiments: table1 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 intext ablation all"
    );
    std::process::exit(2);
}

/// One experiment's measured execution cost.
struct Timing {
    name: &'static str,
    seconds: f64,
    counters: ExecCounters,
}

impl Timing {
    fn sims_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.counters.executed as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn report(t: &Timing) {
    eprintln!(
        "[{}: {:.1}s, {} sims ({:.1} sims/s), {} memo hits, {} cache hits]",
        t.name,
        t.seconds,
        t.counters.executed,
        t.sims_per_sec(),
        t.counters.memo_hits,
        t.counters.disk_hits,
    );
}

/// Writes `BENCH_harness.json`: per-experiment wall-clock seconds and
/// simulation throughput (hand-rolled JSON; the workspace is std-only).
fn write_bench_json(out: &std::path::Path, timings: &[Timing]) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let mut f = std::fs::File::create(out.join("BENCH_harness.json"))?;
    writeln!(f, "{{")?;
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        writeln!(
            f,
            "  \"{}\": {{\"seconds\": {:.3}, \"sims\": {}, \"sims_per_sec\": {:.2}, \"memo_hits\": {}, \"disk_hits\": {}}}{comma}",
            t.name,
            t.seconds,
            t.counters.executed,
            t.sims_per_sec(),
            t.counters.memo_hits,
            t.counters.disk_hits,
        )?;
    }
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "fuzz" {
        tus_harness::fuzz_cmd::main_fuzz(&args[1..]);
    }
    let mut opt = Options::default();
    let mut cmd = None;
    let mut jobs = Executor::default_jobs();
    let mut cache = true;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opt.scale = Scale::Quick,
            "--full" => opt.scale = Scale::Full,
            "--seed" => {
                opt.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => opt.out = it.next().unwrap_or_else(|| usage()).into(),
            "--parallel-cap" => {
                opt.parallel_cap = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--no-cache" => cache = false,
            c if cmd.is_none() && !c.starts_with('-') => cmd = Some(c.to_owned()),
            _ => usage(),
        }
    }
    let Some(cmd) = cmd else { usage() };
    let cache_dir = cache.then(|| opt.out.join(".runcache"));
    let ex = Executor::new(jobs, cache_dir);

    let run_timed = |name: &'static str, f: fn(&Executor, &Options)| -> Timing {
        let before = ex.counters();
        let started = std::time::Instant::now();
        f(&ex, &opt);
        Timing {
            name,
            seconds: started.elapsed().as_secs_f64(),
            counters: ex.counters().since(before),
        }
    };

    let started = std::time::Instant::now();
    if cmd == "all" {
        let timings: Vec<Timing> = EXPERIMENTS
            .iter()
            .map(|&(name, f)| {
                let t = run_timed(name, f);
                report(&t);
                t
            })
            .collect();
        if let Err(e) = write_bench_json(&opt.out, &timings) {
            eprintln!("warning: could not write BENCH_harness.json: {e}");
        }
    } else {
        let Some(&(name, f)) = EXPERIMENTS.iter().find(|&&(n, _)| n == cmd) else {
            usage()
        };
        report(&run_timed(name, f));
    }
    eprintln!("[{:.1}s]", started.elapsed().as_secs_f64());
}
