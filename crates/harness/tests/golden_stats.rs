//! Golden-stats snapshot tests.
//!
//! Re-runs reduced-scale versions of the Fig. 10 / Fig. 13 breakdown
//! points (SB-bound workloads × all five policies, 114- and 32-entry
//! SBs) and string-compares the resulting CSV against committed golden
//! files under `results/golden/`. Simulations are seeded and
//! deterministic, so any byte of drift means the simulator's observable
//! behaviour changed — which must be deliberate and accompanied by a
//! [`tus_harness::runner::CACHE_FORMAT_VERSION`] bump.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p tus-harness --test golden_stats
//! ```

use std::path::{Path, PathBuf};

use tus_harness::{run, RunSpec, Scale, Table};
use tus_sim::{CoherenceKind, PolicyKind};
use tus_workloads::sb_bound_single;

/// Reduced scale: enough instructions for every policy to reach steady
/// state, small enough for the suite to stay CI-friendly.
const INSTS: u64 = 5_000;
const WARMUP: u64 = 1_000;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

fn spec(
    w: &tus_workloads::Workload,
    policy: PolicyKind,
    sb: usize,
    coherence: CoherenceKind,
) -> RunSpec {
    RunSpec {
        warmup: WARMUP,
        insts: INSTS,
        coherence,
        ..RunSpec::new(w.clone(), policy, sb, Scale::Quick)
    }
}

/// Builds the fig10/fig13-breakdown-shaped table at one SB size under
/// one coherence backend: rows are SB-bound workloads (first three of
/// the suite), columns are per-policy speedups vs the same-SB baseline,
/// plus a geomean row.
fn breakdown_table(sb: usize, coherence: CoherenceKind) -> Table {
    let workloads: Vec<_> = sb_bound_single().into_iter().take(3).collect();
    let mut t = Table::new(
        format!(
            "golden: speedup vs {sb}-entry-SB baseline ({} backend, reduced scale)",
            coherence.label()
        ),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in &workloads {
        let base = run(&spec(w, PolicyKind::Baseline, sb, coherence)).ipc;
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                if p == PolicyKind::Baseline {
                    1.0
                } else {
                    run(&spec(w, p, sb, coherence)).ipc / base
                }
            })
            .collect();
        t.push(w.name.to_owned(), vals);
    }
    let mean = t.geomean_row();
    t.push("geomean", mean);
    t
}

/// Compares (or, under `UPDATE_GOLDEN=1`, rewrites) one golden CSV.
fn check_golden(name: &str, table: &Table) {
    let dir = golden_dir();
    let path = dir.join(format!("{name}.csv"));
    let got = table.to_csv();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).expect("create results/golden");
        std::fs::write(&path, &got).expect("write golden CSV");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test -p tus-harness --test golden_stats",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "golden stats drifted for {name}: the simulator's observable \
         behaviour changed. If intentional, bump CACHE_FORMAT_VERSION \
         and re-bless with UPDATE_GOLDEN=1; otherwise this is a \
         regression.",
    );
}

#[test]
fn golden_fig10_breakdown_sb114() {
    check_golden("fig10_breakdown_sb114", &breakdown_table(114, CoherenceKind::Mesi));
}

#[test]
fn golden_fig13_breakdown_sb32() {
    check_golden("fig13_breakdown_sb32", &breakdown_table(32, CoherenceKind::Mesi));
}

/// The Tardis backend gets its own pinned snapshots: timestamp-lease
/// coherence changes *timings* (and therefore IPC ratios), so its
/// numbers are a separate observable surface that must not drift
/// silently either.
#[test]
fn golden_fig10_breakdown_sb114_tardis() {
    check_golden("fig10_breakdown_sb114_tardis", &breakdown_table(114, CoherenceKind::Tardis));
}

#[test]
fn golden_fig13_breakdown_sb32_tardis() {
    check_golden("fig13_breakdown_sb32_tardis", &breakdown_table(32, CoherenceKind::Tardis));
}
