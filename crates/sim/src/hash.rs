//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 with per-process
//! random keys: robust against adversarial inputs, but several times
//! slower than necessary for the simulator's trusted keys (line
//! addresses, sequence numbers), and — because the key is random — maps
//! iterate in a different order every process, which would make any
//! accidental order dependence nondeterministic across runs.
//!
//! [`FxHasher`] is the multiply-rotate hash popularized by the Firefox
//! and rustc codebases (`FxHashMap`), implemented here from scratch so
//! the workspace stays std-only. Every coherence event pays several map
//! lookups in the directory and per-core caches; swapping SipHash for
//! this hasher is a measurable end-to-end win (see `BENCH_harness.json`
//! history) and makes iteration order a pure function of the insertion
//! sequence.
//!
//! # Example
//!
//! ```
//! use tus_sim::hash::FxHashMap;
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(3, "three");
//! assert_eq!(m.get(&3), Some(&"three"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the golden-ratio family used by rustc's FxHash
/// (0x9E3779B97F4A7C15 truncated to the odd 64-bit constant below).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast multiply-rotate hasher (FxHash-style), deterministic across
/// processes.
///
/// Not resistant to adversarial key choice — use only on trusted keys,
/// which is every key the simulator hashes.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" hash differently.
            buf[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; hash maps
        // index with the low bits, so fold the halves together.
        self.hash ^ (self.hash >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (stable across processes; used
/// for content-addressed cache keys).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(fx_hash_one(&0xdead_beefu64), fx_hash_one(&0xdead_beefu64));
        assert_eq!(fx_hash_one(&"store"), fx_hash_one(&"store"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not guaranteed in general, but these must differ for a sane
        // hasher; also pins the function against accidental rewrites.
        let vals = [0u64, 1, 2, 63, 64, 0xffff_ffff, u64::MAX];
        for (i, a) in vals.iter().enumerate() {
            for b in vals.iter().skip(i + 1) {
                assert_ne!(fx_hash_one(a), fx_hash_one(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn byte_tail_is_length_tagged() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
            s.insert(i * 64);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
            assert!(s.contains(&(i * 64)));
        }
    }

    #[test]
    fn low_bits_spread_for_aligned_keys() {
        // Line addresses are often 64-byte aligned; the low bits of the
        // hash (which HashMap indexes with) must still spread.
        let mut low7 = FxHashSet::default();
        for i in 0..128u64 {
            low7.insert(fx_hash_one(&(i * 64)) & 0x7f);
        }
        assert!(low7.len() > 64, "only {} of 128 low-7-bit buckets hit", low7.len());
    }
}
