//! x86-TSO verification for the TUS simulator.
//!
//! Section III-D of the paper argues that TUS preserves every x86-TSO
//! ordering. This crate turns that argument into an executable property:
//!
//! * [`prog`] — a tiny litmus-program representation (threads of
//!   stores/loads/fences over named locations).
//! * [`refmodel`] — the operational x86-TSO model of Sewell et al.
//!   (per-thread FIFO store buffers over a shared memory), with an
//!   exhaustive interleaving enumerator that computes the exact set of
//!   TSO-allowed outcomes.
//! * [`litmus`] — the canonical corpus (SB, MP, LB, IRIW, n5/n6, 2+2W,
//!   CoRR, ...) with the classifications from the x86-TSO paper, used to
//!   validate the reference model itself.
//! * [`conformance`] — compiles litmus programs onto the full simulator
//!   (one core per thread), runs them across many seeds with coherence-
//!   message jitter to explore timings, and checks that every observed
//!   outcome is TSO-allowed.
//! * [`fuzz`] — differential fuzzing: a seeded random litmus generator
//!   biased toward TUS-stressing shapes, a five-policy differential
//!   checker against the reference model, a counterexample shrinker and
//!   the corpus text format used by `tus-harness fuzz`.
//! * [`check`] — bounded exhaustive model checking: enumerates every
//!   reachable outcome of each policy's observable semantics (with
//!   store-buffer reduction and lazy-TSO pruning) and requires exact
//!   set equality with the reference model, upgrading the fuzzer's
//!   statistical verdicts to exhaustive-at-bound ones.

pub mod check;
pub mod conformance;
pub mod fuzz;
pub mod litmus;
pub mod prog;
pub mod refmodel;

pub use check::{
    check_case_model, check_program, explore_policy, Bound, CheckConfig, CheckOutcome,
    CheckReport, CheckStats, PolicyCheck,
};
pub use conformance::{
    check_conformance, check_conformance_at, observe_outcomes, ConformanceReport, RunVerdict,
};
pub use fuzz::{
    check_case, decode_case, encode_case, generate_case, shrink_case, shrink_with, CaseFailure,
    CorpusEntry, FailureKind, FuzzCase,
};
pub use litmus::{all_litmus_tests, LitmusTest};
pub use prog::{LOp, Loc, Outcome, Program, Thread};
pub use refmodel::tso_outcomes;
