//! Coherence messages and controller events.
//!
//! Messages ([`Msg`]) travel on the [`crate::net::Network`] between the
//! per-core private cache controllers and the directory. Events
//! ([`CacheEvent`]) are produced by a controller for the policy layer (the
//! `tus` crate) that drives it — most importantly
//! [`CacheEvent::ExternalConflict`], which asks the TUS authorization unit
//! to decide between *delaying* an external request to a temporarily
//! unauthorized line and *relinquishing* the line (Section III-C of the
//! paper).

use tus_sim::{CoreId, Cycle, LineAddr};

use crate::line::LineData;
use crate::mesi::Mesi;

/// What a core asks the directory for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read permission (grants S, or E when unshared).
    GetS,
    /// Write permission (grants M; permission-only when the requester is
    /// already a sharer).
    GetM,
}

/// What the directory asks an owner to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwdKind {
    /// Another core wants write permission: invalidate and surrender data.
    Inv,
    /// Another core wants read permission: downgrade to S and send data.
    Downgrade,
}

/// The flavour of external request hitting a temporarily unauthorized
/// line, reported to the policy layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// A remote GetM (invalidation) targets the line.
    WantM,
    /// A remote GetS (downgrade) targets the line.
    WantS,
}

impl From<FwdKind> for ConflictKind {
    fn from(k: FwdKind) -> Self {
        match k {
            FwdKind::Inv => ConflictKind::WantM,
            FwdKind::Downgrade => ConflictKind::WantS,
        }
    }
}

/// Per-line logical-timestamp pair carried by the Tardis backend.
///
/// `wts` is the logical time of the last write; `rts` is the end of the
/// latest read lease. A reader at logical time `pts` may use a copy while
/// `pts <= rts`; a writer must move to `rts + 1` before its store becomes
/// visible. The MESI backend never attaches leases (`Option::None`
/// everywhere), which keeps its wire traffic bit-identical to the
/// pre-contract code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Logical time of the line's last write.
    pub wts: u64,
    /// End of the line's current read lease (inclusive).
    pub rts: u64,
}

/// A message on the coherence interconnect.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Core → directory: request permission for a line.
    Req {
        /// Requesting core.
        core: CoreId,
        /// Target line.
        line: LineAddr,
        /// Read or write permission.
        kind: ReqKind,
        /// Whether this is a prefetch (fills without waking waiters and
        /// may be dropped under pressure).
        prefetch: bool,
        /// Requester's logical timestamp (Tardis only; 0 under MESI).
        /// A GetS lease must extend past this value or the grant would be
        /// unreadable on arrival; carrying it avoids renewal livelock.
        pts: u64,
    },
    /// Directory → core: grant of permission (completion of a `Req`).
    Grant {
        /// Target line.
        line: LineAddr,
        /// Granted state (S, E or M).
        state: Mesi,
        /// Line contents; `None` for a permission-only upgrade (the
        /// requester's copy is still valid).
        data: Option<Box<LineData>>,
        /// Echo of the request flavour.
        kind: ReqKind,
        /// Echo of the prefetch flag.
        prefetch: bool,
        /// Tardis timestamps for the granted line (`None` under MESI).
        lease: Option<Lease>,
    },
    /// Directory → owner core: act on behalf of another requester.
    Fwd {
        /// Target line.
        line: LineAddr,
        /// Invalidate or downgrade.
        kind: FwdKind,
        /// Whether the directory believes the target is the owner (expects
        /// a [`Msg::FwdResp`]) or a mere sharer (expects [`Msg::InvAck`]).
        to_owner: bool,
    },
    /// Owner core → directory: response to a [`Msg::Fwd`].
    FwdResp {
        /// Responding core.
        core: CoreId,
        /// Target line.
        line: LineAddr,
        /// Line contents if the core held valid data (`None` when the line
        /// raced away through an eviction).
        data: Option<Box<LineData>>,
        /// True when the core *relinquished* a temporarily unauthorized
        /// line: the data carried here is the old (pre-store) copy from
        /// its private L2, and the core keeps its unauthorized bytes
        /// locally for a later retry (paper Fig. 5, step 7–8).
        relinquished: bool,
        /// The owner's view of the line's Tardis timestamps (`None` under
        /// MESI); the directory merges these into its own entry.
        lease: Option<Lease>,
    },
    /// Sharer core → directory: invalidation acknowledged.
    InvAck {
        /// Responding core.
        core: CoreId,
        /// Target line.
        line: LineAddr,
    },
    /// Core → directory: eviction notice. `data` present for a dirty
    /// (PutM) eviction.
    Evict {
        /// Evicting core.
        core: CoreId,
        /// Target line.
        line: LineAddr,
        /// Dirty data, if any.
        data: Option<Box<LineData>>,
        /// The evictor's view of the line's Tardis timestamps (`None`
        /// under MESI).
        lease: Option<Lease>,
    },
}

impl Msg {
    /// Short static label for trace output (one per message flavour).
    pub fn label(&self) -> &'static str {
        match self {
            Msg::Req { kind: ReqKind::GetS, .. } => "req_gets",
            Msg::Req { kind: ReqKind::GetM, .. } => "req_getm",
            Msg::Grant { .. } => "grant",
            Msg::Fwd { kind: FwdKind::Inv, .. } => "fwd_inv",
            Msg::Fwd { kind: FwdKind::Downgrade, .. } => "fwd_downgrade",
            Msg::FwdResp { .. } => "fwd_resp",
            Msg::InvAck { .. } => "inv_ack",
            Msg::Evict { .. } => "evict",
        }
    }

    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match self {
            Msg::Req { line, .. }
            | Msg::Grant { line, .. }
            | Msg::Fwd { line, .. }
            | Msg::FwdResp { line, .. }
            | Msg::InvAck { line, .. }
            | Msg::Evict { line, .. } => *line,
        }
    }
}

/// Events produced by a private cache controller for the policy layer and
/// the core model.
#[derive(Debug, Clone)]
pub enum CacheEvent {
    /// A load previously issued with a token has completed.
    LoadDone {
        /// Token passed at issue.
        token: u64,
        /// Cycle at which the value is available.
        at: Cycle,
        /// Loaded value (little-endian, zero-extended).
        value: u64,
    },
    /// Write permission (and data, when needed) arrived for a temporarily
    /// unauthorized line; the line's data has been combined and its
    /// *ready* bit set. The policy layer must mark the matching WOQ entry
    /// ready and try to advance visibility.
    PermissionReady {
        /// The line.
        line: LineAddr,
        /// L1D set.
        set: usize,
        /// L1D way.
        way: usize,
    },
    /// An external request (via the directory) targets a temporarily
    /// unauthorized line for which this core holds write permission. The
    /// policy layer must call
    /// [`crate::PrivateCache::delay_external`] or
    /// [`crate::PrivateCache::relinquish`] to resolve it.
    ExternalConflict {
        /// The line.
        line: LineAddr,
        /// L1D set.
        set: usize,
        /// L1D way.
        way: usize,
        /// Whether the remote party wants read or write permission.
        kind: ConflictKind,
    },
    /// This core lost its copy of a line to a remote write (invalidation
    /// or relinquish). Speculatively executed loads that bound a value
    /// from that line must replay — this is how x86 cores preserve
    /// load→load ordering (the "memory ordering machine clear"), and how
    /// TUS preserves it too (Section III-D).
    Invalidated {
        /// The line.
        line: LineAddr,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_line_accessor() {
        let l = LineAddr::new(42);
        let msgs = [
            Msg::Req {
                core: CoreId::new(0),
                line: l,
                kind: ReqKind::GetS,
                prefetch: false,
                pts: 0,
            },
            Msg::Fwd {
                line: l,
                kind: FwdKind::Inv,
                to_owner: true,
            },
            Msg::InvAck {
                core: CoreId::new(1),
                line: l,
            },
        ];
        for m in msgs {
            assert_eq!(m.line(), l);
        }
    }

    #[test]
    fn conflict_kind_from_fwd() {
        assert_eq!(ConflictKind::from(FwdKind::Inv), ConflictKind::WantM);
        assert_eq!(ConflictKind::from(FwdKind::Downgrade), ConflictKind::WantS);
    }
}
