//! Structured event tracing and cycle attribution.
//!
//! Two related facilities live here:
//!
//! * [`Tracer`] — a zero-cost-when-disabled, ring-buffered recorder of
//!   [`TraceRecord`]s. Every simulated component (core front end, drain
//!   policy, WOQ, WCBs, private caches, directory, network, and the
//!   kernel itself) owns one; they all start disabled, and a disabled
//!   tracer's [`Tracer::emit`] is a single branch on a bool — the
//!   simulation's observable behaviour and statistics are identical with
//!   tracing on or off (the invariant test suite checks this bit for
//!   bit). When enabled, records land in a fixed-capacity ring so a long
//!   run can never exhaust memory; overwritten records are counted in
//!   [`Tracer::dropped`].
//! * [`AttrClass`] / [`Attribution`] — the stall-attribution accountant.
//!   Every core cycle is charged to **exactly one** class (useful
//!   dispatch, empty front end, or one of the four dispatch-stall
//!   causes), under both the lockstep and the idle-skipping kernels, so
//!   `sum(classes) == cycles` holds at any instant of any run. This is
//!   always on — the charges are plain integer adds, independent of the
//!   tracer — which is what lets the figures claim *where* cycles went
//!   rather than just how many there were.
//!
//! The harness's `trace` subcommand turns collected records into
//! Chrome-trace/Perfetto JSON; see `EXPERIMENTS.md`.

use crate::types::Cycle;

/// The exclusive per-cycle attribution classes.
///
/// [`AttrClass::label`] is the single source of the category names used
/// by the accountant, the trace export and the harness breakdown table —
/// a typo can no longer silently split a category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AttrClass {
    /// At least one µop dispatched this cycle.
    Dispatch = 0,
    /// Nothing to dispatch (front end empty, no back-end stall).
    FrontEmpty = 1,
    /// Dispatch blocked on a full ROB.
    Rob = 2,
    /// Dispatch blocked on a full load queue.
    Lq = 3,
    /// Dispatch blocked on a full store buffer.
    Sb = 4,
    /// Dispatch blocked on exhausted physical registers.
    Regs = 5,
}

impl AttrClass {
    /// Number of classes.
    pub const COUNT: usize = 6;

    /// Every class, in index order.
    pub const ALL: [AttrClass; AttrClass::COUNT] = [
        AttrClass::Dispatch,
        AttrClass::FrontEmpty,
        AttrClass::Rob,
        AttrClass::Lq,
        AttrClass::Sb,
        AttrClass::Regs,
    ];

    /// Stable category name (shared by stats, traces and tables).
    pub fn label(self) -> &'static str {
        match self {
            AttrClass::Dispatch => "dispatch",
            AttrClass::FrontEmpty => "frontend_empty",
            AttrClass::Rob => "stall_rob",
            AttrClass::Lq => "stall_lq",
            AttrClass::Sb => "stall_sb",
            AttrClass::Regs => "stall_regs",
        }
    }
}

/// Per-class cycle counts; the accountant's ledger for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    counts: [u64; AttrClass::COUNT],
}

impl Attribution {
    /// An empty ledger.
    pub fn new() -> Self {
        Attribution::default()
    }

    /// Charges `n` cycles to `class`.
    #[inline]
    pub fn charge(&mut self, class: AttrClass, n: u64) {
        self.counts[class as usize] += n;
    }

    /// Cycles charged to `class`.
    pub fn get(&self, class: AttrClass) -> u64 {
        self.counts[class as usize]
    }

    /// Total cycles charged — must equal the core's cycle count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(class, cycles)` pairs in class order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrClass, u64)> + '_ {
        AttrClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// The ledger of the window between an earlier snapshot and `self`.
    ///
    /// # Panics
    ///
    /// Panics if any category decreased (categories are monotone).
    pub fn since(&self, earlier: &Attribution) -> Attribution {
        let mut out = Attribution::new();
        for (i, v) in out.counts.iter_mut().enumerate() {
            *v = self.counts[i]
                .checked_sub(earlier.counts[i])
                .expect("attribution categories are monotone");
        }
        out
    }
}

/// One structured trace event. Instants carry their payload; spans (a
/// non-zero duration in the enclosing [`TraceRecord`]) describe a state
/// that persisted over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Span: the core spent the interval in one attribution class
    /// (emitted on class change; `Dispatch` intervals are left implicit).
    CommitStall {
        /// The stall class covering the interval.
        class: AttrClass,
    },
    /// Span: the idle-skipping kernel jumped the clock over a
    /// machine-wide idle window (keeps timelines gap-free).
    BulkIdle,
    /// Instant: stores drained from the SB into the WCBs this cycle.
    SbWcbDrain {
        /// Stores moved.
        stores: u32,
    },
    /// Instant: an unauthorized line entered the WOQ.
    WoqEnqueue {
        /// Line address.
        line: u64,
        /// Atomic group id.
        group: u32,
    },
    /// Instant: the WOQ head group became visible.
    WoqVisible {
        /// Atomic group id.
        group: u32,
        /// Lines made visible together.
        lines: u32,
    },
    /// Instant: entries merged into one atomic group (store cycle).
    AtomicGroupMerge {
        /// Surviving group id.
        group: u32,
        /// Members after the merge.
        size: u32,
    },
    /// Instant: the authorization unit relinquished a held line.
    LexRelinquish {
        /// Line address.
        line: u64,
    },
    /// Instant: a relinquished line re-requested write permission.
    LexRetry {
        /// Line address.
        line: u64,
    },
    /// Instant: a coherence state transition in a private cache.
    MesiTransition {
        /// Line address.
        line: u64,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// Span: the directory resolved a fetch in the L3 or DRAM (duration
    /// covers the access latency).
    DramAccess {
        /// Line address.
        line: u64,
        /// Whether the L3 hit (otherwise DRAM was accessed).
        l3_hit: bool,
    },
    /// Instant: a coherence message entered the interconnect.
    NetMsg {
        /// Message kind label.
        kind: &'static str,
    },
}

impl TraceEvent {
    /// Display name (the Chrome-trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CommitStall { class } => class.label(),
            TraceEvent::BulkIdle => "bulk_idle",
            TraceEvent::SbWcbDrain { .. } => "sb_wcb_drain",
            TraceEvent::WoqEnqueue { .. } => "woq_enqueue",
            TraceEvent::WoqVisible { .. } => "woq_visible",
            TraceEvent::AtomicGroupMerge { .. } => "atomic_group_merge",
            TraceEvent::LexRelinquish { .. } => "lex_relinquish",
            TraceEvent::LexRetry { .. } => "lex_retry",
            TraceEvent::MesiTransition { .. } => "mesi",
            TraceEvent::DramAccess { l3_hit, .. } => {
                if *l3_hit {
                    "l3_hit"
                } else {
                    "dram_access"
                }
            }
            TraceEvent::NetMsg { kind } => kind,
        }
    }

    /// `(key, value)` argument pairs for structured viewers.
    pub fn args(&self) -> Vec<(&'static str, String)> {
        match *self {
            TraceEvent::CommitStall { .. } | TraceEvent::BulkIdle => Vec::new(),
            TraceEvent::SbWcbDrain { stores } => vec![("stores", stores.to_string())],
            TraceEvent::WoqEnqueue { line, group } => vec![
                ("line", format!("{line:#x}")),
                ("group", group.to_string()),
            ],
            TraceEvent::WoqVisible { group, lines } => vec![
                ("group", group.to_string()),
                ("lines", lines.to_string()),
            ],
            TraceEvent::AtomicGroupMerge { group, size } => vec![
                ("group", group.to_string()),
                ("size", size.to_string()),
            ],
            TraceEvent::LexRelinquish { line } | TraceEvent::LexRetry { line } => {
                vec![("line", format!("{line:#x}"))]
            }
            TraceEvent::MesiTransition { line, from, to } => vec![
                ("line", format!("{line:#x}")),
                ("from", from.to_string()),
                ("to", to.to_string()),
            ],
            TraceEvent::DramAccess { line, l3_hit } => vec![
                ("line", format!("{line:#x}")),
                ("l3_hit", l3_hit.to_string()),
            ],
            TraceEvent::NetMsg { .. } => Vec::new(),
        }
    }
}

/// One recorded event: a timestamp, a duration (0 = instant) and the
/// event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Start cycle.
    pub at: Cycle,
    /// Duration in cycles (0 for instants).
    pub dur: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// A per-component ring-buffered event recorder.
///
/// Disabled by default; [`Tracer::emit`] on a disabled tracer is a
/// single predictable branch, so components can call it unconditionally
/// on their hot paths.
///
/// # Example
///
/// ```
/// use tus_sim::trace::{TraceEvent, Tracer};
/// use tus_sim::Cycle;
///
/// let mut t = Tracer::default();
/// t.emit(Cycle::new(5), 0, TraceEvent::BulkIdle); // disabled: dropped
/// assert!(t.take().is_empty());
/// t.enable(8);
/// t.emit(Cycle::new(7), 3, TraceEvent::BulkIdle);
/// assert_eq!(t.take().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    now: Cycle,
    cap: usize,
    buf: Vec<TraceRecord>,
    next: usize,
    dropped: u64,
}

impl Tracer {
    /// Enables recording into a ring of `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn enable(&mut self, cap: usize) {
        assert!(cap > 0, "tracer capacity must be positive");
        self.enabled = true;
        self.cap = cap;
        self.buf = Vec::with_capacity(cap.min(1024));
        self.next = 0;
        self.dropped = 0;
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the clock used by [`Tracer::emit_now`] (for components whose
    /// inner structures have no cycle parameter of their own).
    #[inline]
    pub fn set_now(&mut self, now: Cycle) {
        if self.enabled {
            self.now = now;
        }
    }

    /// Records an event starting at `at` lasting `dur` cycles.
    #[inline]
    pub fn emit(&mut self, at: Cycle, dur: u64, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord { at, dur, ev });
    }

    /// Records an instant at the clock last given to [`Tracer::set_now`].
    #[inline]
    pub fn emit_now(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord { at: self.now, dur: 0, ev });
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drains the recorded events, oldest first.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        let mut v = std::mem::take(&mut self.buf);
        if self.dropped > 0 {
            v.rotate_left(self.next);
        }
        self.next = 0;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        assert!(!t.is_enabled());
        t.emit(Cycle::new(1), 0, TraceEvent::BulkIdle);
        t.emit_now(TraceEvent::BulkIdle);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = Tracer::default();
        t.enable(3);
        for i in 0..5u64 {
            t.emit(Cycle::new(i), 0, TraceEvent::SbWcbDrain { stores: i as u32 });
        }
        assert_eq!(t.dropped(), 2);
        let recs = t.take();
        assert_eq!(recs.len(), 3);
        // Oldest-first after wrap: cycles 2, 3, 4.
        let at: Vec<u64> = recs.iter().map(|r| r.at.raw()).collect();
        assert_eq!(at, vec![2, 3, 4]);
    }

    #[test]
    fn emit_now_uses_last_set_clock() {
        let mut t = Tracer::default();
        t.enable(4);
        t.set_now(Cycle::new(9));
        t.emit_now(TraceEvent::LexRetry { line: 3 });
        let recs = t.take();
        assert_eq!(recs[0].at, Cycle::new(9));
    }

    #[test]
    fn attribution_partitions_and_diffs() {
        let mut a = Attribution::new();
        a.charge(AttrClass::Dispatch, 10);
        a.charge(AttrClass::Sb, 5);
        assert_eq!(a.total(), 15);
        assert_eq!(a.get(AttrClass::Sb), 5);
        let mut b = a;
        b.charge(AttrClass::Sb, 2);
        let d = b.since(&a);
        assert_eq!(d.get(AttrClass::Sb), 2);
        assert_eq!(d.total(), 2);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn attribution_since_rejects_decrease() {
        let mut a = Attribution::new();
        a.charge(AttrClass::Rob, 1);
        Attribution::new().since(&a);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in AttrClass::ALL {
            assert!(seen.insert(c.label()), "duplicate label {}", c.label());
        }
    }
}
