//! The paper's headline trade-off: TUS with a 32-entry SB matches or
//! beats the 114-entry baseline, while a smaller SB is cheaper (2x lower
//! search energy, 21% less area) and faster to forward from (3 vs 5
//! cycles).
//!
//! ```sh
//! cargo run --release --example sb_sizing
//! ```

use tus::System;
use tus_energy::{sb_area, sb_search_energy};
use tus_sim::{PolicyKind, SimConfig};
use tus_workloads::by_name;

fn ipc(policy: PolicyKind, sb: usize) -> f64 {
    let w = by_name("502.gcc3-like").expect("workload exists");
    let cfg = SimConfig::builder().policy(policy).sb_entries(sb).build();
    let insts = 120_000;
    let mut sys = System::new(&cfg, w.traces(1, 3, insts), 3);
    let stats = sys.run_committed(insts, 100_000_000);
    stats.get("core0.cpu.committed") / stats.get("cycles")
}

fn main() {
    println!("502.gcc3-like, IPC by SB size and policy\n");
    println!("{:>6} {:>10} {:>10} {:>12} {:>12} {:>8}", "SB", "baseline", "TUS", "E/search pJ", "area um^2", "fwd lat");
    for sb in [32, 56, 64, 114] {
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>12.1} {:>12.0} {:>8}",
            sb,
            ipc(PolicyKind::Baseline, sb),
            ipc(PolicyKind::Tus, sb),
            sb_search_energy(sb),
            sb_area(sb),
            tus_sim::config::SbConfig { entries: sb }.forward_latency(),
        );
    }
    let base114 = ipc(PolicyKind::Baseline, 114);
    let tus32 = ipc(PolicyKind::Tus, 32);
    println!(
        "\nTUS @ 32 entries vs baseline @ 114: {:+.1}% performance with 2x lower\nSB search energy and 21% less SB area.",
        (tus32 / base114 - 1.0) * 100.0
    );
}
