//! End-to-end tests of the `tus-serve` daemon over a real TCP socket.
//!
//! Each test binds an ephemeral loopback port, runs the daemon on a
//! background thread, and speaks the real frame protocol through
//! `TcpStream` — the same bytes a remote client would send. The unix
//! socket path shares every line of code above the listener, so TCP
//! coverage is transport coverage.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tus_harness::protocol::{
    decode_error, parse_headers, read_frame, write_frame, Frame, FrameKind, ReadOutcome,
};
use tus_harness::serve::{bind, ServeOptions};

/// A daemon running on a background thread, plus the address to dial.
struct TestServer {
    addr: std::net::SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    out: PathBuf,
}

fn start(configure: impl FnOnce(&mut ServeOptions)) -> TestServer {
    let out = std::env::temp_dir().join(format!(
        "tus-serve-test-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64)
    ));
    let mut opt = ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        jobs: 2,
        handlers: 2,
        out: out.clone(),
        ..ServeOptions::default()
    };
    configure(&mut opt);
    let bound = bind(opt).expect("bind ephemeral port");
    let addr = bound.tcp_addr().expect("tcp listener");
    let handle = std::thread::spawn(move || bound.run());
    TestServer { addr, handle, out }
}

impl TestServer {
    fn dial(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
        s
    }

    /// Sends one request and collects frames until a terminal reply.
    fn request(&self, kind: FrameKind, body: &str) -> Vec<Frame> {
        let mut s = self.dial();
        request_on(&mut s, kind, body)
    }

    /// Asks the daemon to shut down and joins it.
    fn shutdown(self) {
        let frames = self.request(FrameKind::Shutdown, "");
        assert_eq!(frames.last().expect("reply").kind, FrameKind::ShutdownOk);
        self.handle
            .join()
            .expect("server thread did not panic")
            .expect("clean shutdown");
        let _ = std::fs::remove_dir_all(&self.out);
    }
}

/// Sends one request on an existing connection, collecting the reply
/// stream (progress frames included) up to and including the terminal
/// frame.
fn request_on(s: &mut TcpStream, kind: FrameKind, body: &str) -> Vec<Frame> {
    write_frame(s, kind, body).expect("send");
    let mut frames = Vec::new();
    loop {
        match read_frame(s).expect("read reply") {
            ReadOutcome::Frame(f) => {
                let terminal = f.kind.is_terminal_reply();
                frames.push(f);
                if terminal {
                    return frames;
                }
            }
            other => panic!("expected a reply frame, got {other:?}"),
        }
    }
}

fn terminal(frames: &[Frame]) -> &Frame {
    frames.last().expect("at least one frame")
}

const POINT: &str = "workload=502.gcc1-like\npolicy=tus\nsb=114\nscale=quick\n";

#[test]
fn ping_echoes_and_daemon_shuts_down_cleanly() {
    let server = start(|_| {});
    let frames = server.request(FrameKind::Ping, "hello daemon");
    assert_eq!(frames.len(), 1);
    assert_eq!(terminal(&frames).kind, FrameKind::Pong);
    assert_eq!(terminal(&frames).body, "hello daemon");
    server.shutdown();
}

/// The tentpole claim: a warm daemon serves a repeated experiment point
/// with **zero** new simulations, and the result is bit-identical to a
/// direct in-process run.
#[test]
fn warm_point_requests_execute_zero_simulations() {
    let server = start(|_| {});

    let cold = server.request(FrameKind::RunPoint, POINT);
    let done = terminal(&cold);
    assert_eq!(done.kind, FrameKind::RunDone);
    assert!(cold.iter().any(|f| f.kind == FrameKind::Progress), "progress streamed");
    let (head, payload) = done.body.split_once("\n\n").expect("header + result");
    let head = format!("{head}\n");
    let h = parse_headers(&head).expect("headers");
    assert_eq!(h["executed"], "1", "cold request simulates");

    // Bit-exact vs the direct (non-daemon) path.
    let spec = tus_harness::RunSpec::new(
        tus_workloads::by_name("502.gcc1-like").expect("exists"),
        tus_sim::PolicyKind::Tus,
        114,
        tus_harness::Scale::Quick,
    );
    let direct = tus_harness::run(&spec);
    assert_eq!(
        payload,
        tus_harness::executor::encode_result(&direct, &spec.memo_key()),
        "daemon result must be bit-identical to a direct run"
    );

    // Warm repeat: same point, zero executions, served from memo.
    let warm = server.request(FrameKind::RunPoint, POINT);
    let done = terminal(&warm);
    assert_eq!(done.kind, FrameKind::RunDone);
    let (head, warm_payload) = done.body.split_once("\n\n").expect("header + result");
    let head = format!("{head}\n");
    let h = parse_headers(&head).expect("headers");
    assert_eq!(h["executed"], "0", "warm request must not simulate");
    assert_eq!(h["memo_hits"], "1");
    assert_eq!(warm_payload, payload, "warm bytes identical to cold bytes");

    server.shutdown();
}

/// Satellite: an unknown workload comes back as a structured error frame
/// with the `unknown_workload` kind token — and the daemon (same
/// connection!) keeps serving.
#[test]
fn unknown_workload_is_a_structured_error_and_daemon_survives() {
    let server = start(|_| {});
    let mut s = server.dial();

    let frames = request_on(
        &mut s,
        FrameKind::RunPoint,
        "workload=no-such-workload\npolicy=tus\nsb=114\nscale=quick\n",
    );
    let err = terminal(&frames);
    assert_eq!(err.kind, FrameKind::Error);
    let (token, message) = decode_error(&err.body);
    assert_eq!(token, "unknown_workload");
    assert!(message.contains("no-such-workload"));
    assert!(message.contains("505.mcf-like"), "lists valid names");

    // Same connection still works.
    let frames = request_on(&mut s, FrameKind::Ping, "still alive?");
    assert_eq!(terminal(&frames).body, "still alive?");

    // Unknown experiment takes the same path.
    let frames = request_on(&mut s, FrameKind::Experiment, "name=fig99\n");
    let (token, _) = decode_error(&terminal(&frames).body);
    assert_eq!(token, "unknown_experiment");

    server.shutdown();
}

/// An unknown coherence backend in the request headers is a structured
/// protocol-error frame (never a panic), a valid `coherence=tardis`
/// point runs under the timestamp backend, and the two backends memoize
/// under distinct keys — all on one surviving connection.
#[test]
fn coherence_backend_header_is_validated_and_routed() {
    let server = start(|_| {});
    let mut s = server.dial();

    let frames = request_on(&mut s, FrameKind::RunPoint, &format!("{POINT}coherence=moesi\n"));
    let err = terminal(&frames);
    assert_eq!(err.kind, FrameKind::Error);
    let (token, message) = decode_error(&err.body);
    assert_eq!(token, "protocol");
    assert!(message.contains("moesi") && message.contains("tardis"), "lists valid backends");

    // Same connection: the tardis leg of the same point simulates fine.
    let frames = request_on(&mut s, FrameKind::RunPoint, &format!("{POINT}coherence=tardis\n"));
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::RunDone);
    let tardis_key = done
        .body
        .lines()
        .find_map(|l| l.strip_prefix("key="))
        .expect("key header")
        .to_owned();
    assert!(tardis_key.contains("cotardis"), "memo key records the backend: {tardis_key}");

    // The mesi leg of the same point is a different memo entry: it must
    // execute a fresh simulation, not recall the tardis result.
    let frames = request_on(&mut s, FrameKind::RunPoint, &format!("{POINT}coherence=mesi\n"));
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::RunDone);
    let (head, _) = done.body.split_once("\n\n").expect("header + result");
    let head = format!("{head}\n");
    let h = parse_headers(&head).expect("headers");
    assert_eq!(h["executed"], "1", "backends must not share memo entries");

    server.shutdown();
}

/// Satellite 4: a budget-starved request comes back over the socket as a
/// structured `deadlock` error frame carrying the simulator's
/// `BudgetExhausted` report — and the daemon still serves the next
/// request afterwards.
#[test]
fn budget_expiry_is_a_structured_deadlock_reply() {
    let server = start(|_| {});

    let starved = format!("{POINT}budget=100\n");
    let frames = server.request(FrameKind::RunPoint, &starved);
    let err = terminal(&frames);
    assert_eq!(err.kind, FrameKind::Error);
    let (token, message) = decode_error(&err.body);
    assert_eq!(token, "deadlock");
    assert!(
        message.contains("budget") && message.contains("100"),
        "reply must carry the BudgetExhausted report, got: {message}"
    );

    // The failed attempt was not cached; the daemon happily runs the same
    // point to completion next.
    let frames = server.request(FrameKind::RunPoint, POINT);
    assert_eq!(terminal(&frames).kind, FrameKind::RunDone);

    server.shutdown();
}

/// A `wall_ms=` request header bounds the run in host wall-clock time:
/// an impossible deadline comes back as a structured `deadlock` error
/// frame carrying the `WallClockExpired` report, the failed attempt is
/// not cached, and the daemon keeps serving.
#[test]
fn wall_clock_expiry_is_a_structured_deadlock_reply() {
    let server = start(|_| {});

    let strangled = format!("{POINT}wall_ms=0\n");
    let frames = server.request(FrameKind::RunPoint, &strangled);
    let err = terminal(&frames);
    assert_eq!(err.kind, FrameKind::Error);
    let (token, message) = decode_error(&err.body);
    assert_eq!(token, "deadlock");
    assert!(
        message.contains("wall-clock") && message.contains("0 ms"),
        "reply must carry the WallClockExpired report, got: {message}"
    );

    // A generous deadline on the same point completes — proving the
    // expired attempt was not cached — and its result is bit-identical
    // to the wall-free path (the deadline only bounds, never perturbs).
    let roomy = format!("{POINT}wall_ms=600000\n");
    let frames = server.request(FrameKind::RunPoint, &roomy);
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::RunDone);
    let (_, payload) = done.body.split_once("\n\n").expect("header + result");

    let spec = tus_harness::RunSpec::new(
        tus_workloads::by_name("502.gcc1-like").expect("exists"),
        tus_sim::PolicyKind::Tus,
        114,
        tus_harness::Scale::Quick,
    );
    let direct = tus_harness::run(&spec);
    assert_eq!(
        payload,
        tus_harness::executor::encode_result(&direct, &spec.memo_key()),
        "wall-bounded result must be bit-identical to an unbounded run"
    );

    server.shutdown();
}

/// A server-wide `--max-budget` ceiling clamps every request, including
/// ones that ask for no budget at all.
#[test]
fn server_budget_ceiling_applies_to_all_requests() {
    let server = start(|opt| opt.max_budget = Some(100));
    let frames = server.request(FrameKind::RunPoint, POINT);
    let (token, _) = decode_error(&terminal(&frames).body);
    assert_eq!(token, "deadlock", "ceiling must starve the unbudgeted request");
    server.shutdown();
}

/// Malformed bytes — a bogus frame kind, a huge length prefix — get a
/// structured protocol error, and only that connection dies.
#[test]
fn malformed_frames_get_protocol_errors_not_a_dead_daemon() {
    let server = start(|_| {});

    // Unknown frame kind.
    let mut s = server.dial();
    s.write_all(&[5u8, 0, 0, 0, 0x7f, b'x', b'x', b'x', b'x']).expect("send");
    match read_frame(&mut s).expect("reply") {
        ReadOutcome::Frame(f) => {
            assert_eq!(f.kind, FrameKind::Error);
            assert_eq!(decode_error(&f.body).0, "protocol");
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    // Oversized length prefix: rejected before any allocation.
    let mut s = server.dial();
    s.write_all(&u32::MAX.to_le_bytes()).expect("send");
    s.write_all(&[0x01]).expect("send");
    match read_frame(&mut s).expect("reply") {
        ReadOutcome::Frame(f) => assert_eq!(f.kind, FrameKind::Error),
        other => panic!("expected error frame, got {other:?}"),
    }

    // A reply-kind frame sent as a request is also a protocol error.
    let frames = server.request(FrameKind::Pong, "");
    assert_eq!(decode_error(&terminal(&frames).body).0, "protocol");

    // The daemon outlived all three abusive connections.
    let frames = server.request(FrameKind::Ping, "ok");
    assert_eq!(terminal(&frames).kind, FrameKind::Pong);
    server.shutdown();
}

/// The counters endpoint aggregates executor state across clients.
#[test]
fn counters_reflect_shared_executor_state() {
    let server = start(|_| {});
    let _ = server.request(FrameKind::RunPoint, POINT);
    let _ = server.request(FrameKind::RunPoint, POINT);
    let frames = server.request(FrameKind::Counters, "");
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::CountersReply);
    let h = parse_headers(&done.body).expect("headers");
    assert_eq!(h["executed"], "1", "one simulation across both requests");
    assert_eq!(h["memo_hits"], "1");
    assert!(h["requests"].parse::<u64>().expect("requests") >= 3);
    server.shutdown();
}

/// A tiny fuzz sweep runs over the wire, streams progress, and reports a
/// clean verdict.
#[test]
fn fuzz_sweep_over_the_wire() {
    let server = start(|_| {});
    let frames = server.request(FrameKind::FuzzSweep, "programs=3\nseeds=2\nseed=1\n");
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::FuzzDone);
    let head = format!("{}\n", done.body.split_once("\n\n").expect("header").0);
    let h = parse_headers(&head).expect("headers");
    assert_eq!(h["programs"], "3");
    assert_eq!(h["violations"], "0");
    assert!(frames.iter().any(|f| f.kind == FrameKind::Progress));
    server.shutdown();
}

/// A bounded model check runs over the wire: the default litmus sweep
/// verifies every program, streams progress, and reports per-policy
/// exploration stats; a named-selection check and a generated-program
/// check ride the same request kind; an unknown litmus name is a
/// structured protocol error that leaves the connection serving.
#[test]
fn model_check_over_the_wire() {
    let server = start(|_| {});
    let mut s = server.dial();

    // Full litmus library (the header-free default), sim cross-check on.
    let frames = request_on(&mut s, FrameKind::Check, "seeds=2\n");
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::CheckDone);
    let (head, rendered) = done.body.split_once("\n\n").expect("header + body");
    let head = format!("{head}\n");
    let h = parse_headers(&head).expect("headers");
    assert_eq!(h["programs"], "18");
    assert_eq!(h["verified"], "18");
    assert_eq!(h["violations"], "0");
    assert_eq!(h["bound_exceeded"], "0");
    assert!(h["explored"].parse::<u64>().expect("explored") > 0);
    assert!(rendered.contains("TUS"), "per-policy stats table: {rendered}");
    assert!(frames.iter().any(|f| f.kind == FrameKind::Progress));

    // Named selection plus generated programs on the same connection.
    let frames = request_on(&mut s, FrameKind::Check, "litmus=SB,MP\nprograms=2\nseeds=0\n");
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::CheckDone);
    let head = format!("{}\n", done.body.split_once("\n\n").expect("header").0);
    let h = parse_headers(&head).expect("headers");
    assert_eq!(h["programs"], "4");
    assert_eq!(h["violations"], "0");

    // Unknown litmus name: structured error, connection survives.
    let frames = request_on(&mut s, FrameKind::Check, "litmus=no-such-test\n");
    let err = terminal(&frames);
    assert_eq!(err.kind, FrameKind::Error);
    let (token, message) = decode_error(&err.body);
    assert_eq!(token, "protocol");
    assert!(message.contains("no-such-test"));
    let frames = request_on(&mut s, FrameKind::Ping, "still here");
    assert_eq!(terminal(&frames).body, "still here");

    server.shutdown();
}

/// A trace capture returns the Chrome-trace JSON document in the reply
/// frame; a budget-starved capture returns a structured deadlock error.
#[test]
fn trace_capture_over_the_wire() {
    let server = start(|_| {});
    let frames = server.request(
        FrameKind::TraceCapture,
        "workload=502.gcc1-like\npolicy=tus\nsb=32\ninsts=3000\n",
    );
    let done = terminal(&frames);
    assert_eq!(done.kind, FrameKind::TraceDone);
    assert!(done.body.starts_with("{\"traceEvents\": ["));
    assert!(done.body.trim_end().ends_with("]}"));

    let frames = server.request(
        FrameKind::TraceCapture,
        "workload=502.gcc1-like\npolicy=tus\nsb=32\ninsts=3000\nbudget=10\n",
    );
    assert_eq!(decode_error(&terminal(&frames).body).0, "deadlock");
    server.shutdown();
}

/// The unix-socket transport serves the same protocol (and cleans up its
/// socket file on shutdown).
#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("tus-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let out = std::env::temp_dir().join(format!("tus-serve-unix-out-{}", std::process::id()));
    let bound = bind(ServeOptions {
        socket: Some(path.clone()),
        jobs: 1,
        handlers: 1,
        out: out.clone(),
        ..ServeOptions::default()
    })
    .expect("bind unix socket");
    let handle = std::thread::spawn(move || bound.run());

    let mut s = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    write_frame(&mut s, FrameKind::Ping, "over unix").expect("send");
    match read_frame(&mut s).expect("reply") {
        ReadOutcome::Frame(f) => {
            assert_eq!(f.kind, FrameKind::Pong);
            assert_eq!(f.body, "over unix");
        }
        other => panic!("expected pong, got {other:?}"),
    }
    write_frame(&mut s, FrameKind::Shutdown, "").expect("send");
    match read_frame(&mut s).expect("reply") {
        ReadOutcome::Frame(f) => assert_eq!(f.kind, FrameKind::ShutdownOk),
        other => panic!("expected shutdown-ok, got {other:?}"),
    }
    handle.join().expect("no panic").expect("clean shutdown");
    assert!(!path.exists(), "socket file removed on shutdown");
    let _ = std::fs::remove_dir_all(&out);
}

/// Out-of-band shutdown (`Server::request_shutdown`) also drains the
/// daemon — even with an idle client connection held open.
#[test]
fn out_of_band_shutdown_drains_with_idle_connection_open() {
    let server = start(|_| {});
    let bound_handle = server.dial(); // idle connection, never speaks
    let started = Instant::now();

    // Reach in via a normal request first so the daemon is demonstrably
    // busy-capable, then flip the flag from outside.
    let frames = server.request(FrameKind::Ping, "x");
    assert_eq!(terminal(&frames).kind, FrameKind::Pong);
    server.shutdown();
    drop(bound_handle);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "shutdown must not hang on the idle connection"
    );
}
