//! Deterministic delay queue.
//!
//! The simulator models latencies by pushing payloads into a [`DelayQueue`]
//! with a delivery cycle and draining everything that is due at the start of
//! each cycle. Entries due on the same cycle are delivered in insertion
//! order, which keeps the whole simulation deterministic.

use std::collections::BinaryHeap;

use crate::types::Cycle;

/// A min-queue of `(delivery cycle, payload)` with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use tus_sim::{Cycle, DelayQueue};
///
/// let mut q = DelayQueue::new();
/// q.push(Cycle::new(10), "b");
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(10), "c");
/// assert_eq!(q.pop_due(Cycle::new(4)), None);
/// assert_eq!(q.pop_due(Cycle::new(5)), Some("a"));
/// assert_eq!(q.pop_due(Cycle::new(10)), Some("b"));
/// assert_eq!(q.pop_due(Cycle::new(10)), Some("c"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    due: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest due first and
        // lowest sequence number (FIFO) among equals.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` for delivery at cycle `due`.
    pub fn push(&mut self, due: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// Pops the next payload whose delivery cycle is `<= now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.due <= now) {
            Some(self.heap.pop().expect("peeked entry exists").payload)
        } else {
            None
        }
    }

    /// Delivery cycle of the earliest pending entry.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.due)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_cycles() {
        let mut q = DelayQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_due(Cycle::new(7)), Some(i));
        }
    }

    #[test]
    fn earliest_first() {
        let mut q = DelayQueue::new();
        q.push(Cycle::new(30), 30);
        q.push(Cycle::new(10), 10);
        q.push(Cycle::new(20), 20);
        assert_eq!(q.next_due(), Some(Cycle::new(10)));
        assert_eq!(q.pop_due(Cycle::new(100)), Some(10));
        assert_eq!(q.pop_due(Cycle::new(100)), Some(20));
        assert_eq!(q.pop_due(Cycle::new(100)), Some(30));
        assert_eq!(q.pop_due(Cycle::new(100)), None);
    }

    #[test]
    fn not_due_yet() {
        let mut q = DelayQueue::new();
        q.push(Cycle::new(5), ());
        assert_eq!(q.pop_due(Cycle::new(4)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
