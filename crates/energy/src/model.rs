//! Per-event energy accounting and EDP.
//!
//! [`EnergyModel::evaluate`] walks a run's `StatSet` (as exported by
//! `tus::System`) and charges representative 22 nm per-event energies for
//! every memory-subsystem event, plus core dynamic energy per committed
//! instruction and static energy per cycle. The result feeds the EDP
//! figures (11, 12-right, 14-right, 15).
//!
//! The event set deliberately mirrors what the paper identifies as the
//! energy movers: SB searches (every load), L1D store writes (reduced 2×
//! by coalescing), SSB's per-store L2 write-through (its EDP downfall),
//! TUS's L2 updates on visible-hit overwrites (its main overhead), and
//! DRAM traffic.

use std::collections::BTreeMap;

use tus_sim::{SimConfig, StatSet};

use crate::cam;

/// Per-event energies (pJ) and static power, bundled with the structure
/// sizes they depend on.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    cores: usize,
    sb_entries: usize,
    woq_entries: usize,
    /// L1D read access (pJ).
    pub l1d_read: f64,
    /// L1D write access (pJ).
    pub l1d_write: f64,
    /// L2 access (pJ).
    pub l2_access: f64,
    /// L3 access (pJ).
    pub l3_access: f64,
    /// DRAM line transfer (pJ).
    pub dram_access: f64,
    /// WCB search/write (pJ).
    pub wcb_access: f64,
    /// TSOB (1K-entry SRAM FIFO) access (pJ).
    pub tsob_access: f64,
    /// Core dynamic energy per committed instruction (pJ) — front end,
    /// rename, ALUs, bypass.
    pub core_per_inst: f64,
    /// Static energy per core per cycle (pJ) — ~0.6 W per core at 3 GHz.
    pub static_per_core_cycle: f64,
}

impl EnergyModel {
    /// Builds the model for a machine configuration.
    pub fn from_config(cfg: &SimConfig) -> Self {
        EnergyModel {
            cores: cfg.cores,
            sb_entries: cfg.sb.entries,
            woq_entries: cfg.tus.woq_entries,
            l1d_read: 20.0,
            l1d_write: 25.0,
            l2_access: 80.0,
            l3_access: 300.0,
            dram_access: 15_000.0,
            wcb_access: 2.0,
            tsob_access: 10.0,
            core_per_inst: 100.0,
            static_per_core_cycle: 200.0,
        }
    }

    /// Evaluates the total energy of a run from its statistics.
    pub fn evaluate(&self, stats: &StatSet) -> EnergyBreakdown {
        let mut comp: BTreeMap<String, f64> = BTreeMap::new();
        let mut add = |name: &str, v: f64| {
            *comp.entry(name.to_owned()).or_insert(0.0) += v;
        };
        let cycles = stats.get("cycles");
        add(
            "static",
            cycles * self.cores as f64 * self.static_per_core_cycle,
        );
        for i in 0..self.cores {
            let g = |suffix: &str| stats.get(&format!("core{i}.{suffix}"));
            add("core_dynamic", g("cpu.committed") * self.core_per_inst);
            add(
                "sb_search",
                g("cpu.sb_searches") * cam::sb_search_energy(self.sb_entries),
            );
            add(
                "sb_write",
                g("cpu.stores") * cam::sb_write_energy(self.sb_entries),
            );
            let m = |suffix: &str| stats.get(&format!("mem.core{i}.{suffix}"));
            add("l1d_read", m("l1d_load_hits") * self.l1d_read);
            add("l1d_write", m("l1d_writes") * self.l1d_write);
            add(
                "l2",
                (m("l2_load_hits") + m("l2_load_misses") + m("prefetches")) * self.l2_access,
            );
            add("l2_update", m("l2_updates") * self.l2_access);
            add("ssb_l2_writes", m("ssb_l2_writes") * self.l2_access);
            let p = |suffix: &str| stats.get(&format!("core{i}.policy.{suffix}"));
            add("wcb", p("wcb_searches") * self.wcb_access);
            add(
                "woq_search",
                p("woq_searches") * cam::woq_search_energy(self.woq_entries),
            );
            add("tsob", p("tsob_searches") * self.tsob_access);
        }
        add("l3", stats.get("mem.dir.l3_hits") * self.l3_access);
        add("dram", stats.get("mem.dir.l3_misses") * self.dram_access);
        add(
            "coherence",
            stats.get("mem.net.msgs") * 5.0, // per-message interconnect energy
        );
        let total: f64 = comp.values().sum();
        EnergyBreakdown {
            total_pj: total,
            cycles,
            components: comp,
        }
    }

    /// Energy-delay product of a run (pJ·cycles).
    pub fn edp(&self, stats: &StatSet) -> f64 {
        let b = self.evaluate(stats);
        b.total_pj * b.cycles
    }
}

/// The result of an energy evaluation.
#[derive(Debug, Clone)]
pub struct EnergyBreakdown {
    /// Total energy in pJ.
    pub total_pj: f64,
    /// Run length in cycles.
    pub cycles: f64,
    /// Per-component energies in pJ.
    pub components: BTreeMap<String, f64>,
}

impl EnergyBreakdown {
    /// Energy-delay product (pJ·cycles).
    pub fn edp(&self) -> f64 {
        self.total_pj * self.cycles
    }

    /// The dynamic fraction (everything but static).
    pub fn dynamic_fraction(&self) -> f64 {
        let stat = self.components.get("static").copied().unwrap_or(0.0);
        if self.total_pj == 0.0 {
            0.0
        } else {
            1.0 - stat / self.total_pj
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(entries: &[(&str, f64)]) -> StatSet {
        let mut s = StatSet::new();
        for (k, v) in entries {
            s.set(k, *v);
        }
        s
    }

    fn model() -> EnergyModel {
        EnergyModel::from_config(&SimConfig::default())
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = model();
        let a = m.evaluate(&stats_with(&[("cycles", 1000.0)]));
        let b = m.evaluate(&stats_with(&[("cycles", 2000.0)]));
        assert!((b.total_pj / a.total_pj - 2.0).abs() < 1e-9);
        assert!((b.edp() / a.edp() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn l1d_writes_charged() {
        let m = model();
        let base = m.evaluate(&stats_with(&[("cycles", 100.0)]));
        let w = m.evaluate(&stats_with(&[
            ("cycles", 100.0),
            ("mem.core0.l1d_writes", 10.0),
        ]));
        assert!((w.total_pj - base.total_pj - 250.0).abs() < 1e-9);
    }

    #[test]
    fn sb_search_energy_depends_on_sb_size() {
        let cfg_big = SimConfig::builder().sb_entries(114).build();
        let cfg_small = SimConfig::builder().sb_entries(32).build();
        let s = stats_with(&[("cycles", 100.0), ("core0.cpu.sb_searches", 1000.0)]);
        let e_big = EnergyModel::from_config(&cfg_big).evaluate(&s);
        let e_small = EnergyModel::from_config(&cfg_small).evaluate(&s);
        let d_big = e_big.components["sb_search"];
        let d_small = e_small.components["sb_search"];
        assert!((d_big / d_small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dram_dominates_when_missing() {
        let m = model();
        let b = m.evaluate(&stats_with(&[
            ("cycles", 10.0),
            ("mem.dir.l3_misses", 100.0),
        ]));
        assert!(b.components["dram"] > b.components["static"]);
        assert!(b.dynamic_fraction() > 0.9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = model();
        let b = m.evaluate(&stats_with(&[
            ("cycles", 500.0),
            ("core0.cpu.committed", 1000.0),
            ("mem.core0.l1d_load_hits", 300.0),
            ("mem.net.msgs", 50.0),
        ]));
        let sum: f64 = b.components.values().sum();
        assert!((sum - b.total_pj).abs() < 1e-6);
    }
}
