//! The lexicographical order and the authorization unit.
//!
//! TUS avoids cross-core deadlocks on not-yet-visible lines with a global
//! *sub-address* order: the low bits of the line address (16 by default —
//! the same bits that index the directory). When an external request hits
//! a temporarily unauthorized line for which this core holds write
//! permission, the authorization unit decides (paper Section III-C,
//! Figure 5):
//!
//! * **Delay** the request when the core holds permission for *every*
//!   older pending line with a lex order less than or equal to the
//!   requested line's — the core cannot be part of a deadlock cycle, so
//!   it may keep the line until it becomes visible.
//! * **Relinquish** the line otherwise: reply with the old copy from the
//!   private L2, keep the unauthorized bytes locally, and re-request write
//!   permission only once the line is the lex-least unacquired line of the
//!   atomic group at the head of the WOQ.
//!
//! The unit is pure combinational logic over WOQ state — it has no storage
//! (paper Section IV, "no storage overhead").

use tus_sim::LineAddr;

use crate::woq::Woq;

/// The decision for an external request hitting an unauthorized line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictDecision {
    /// Keep the line; answer when it becomes visible.
    Delay,
    /// Give the line up (the requester proceeds with the old copy).
    Relinquish,
}

/// The (stateless) authorization unit.
///
/// # Example
///
/// ```
/// use tus::{AuthorizationUnit, ConflictDecision, Woq};
/// use tus_mem::ByteMask;
/// use tus_sim::LineAddr;
///
/// let unit = AuthorizationUnit::new(16);
/// let mut woq = Woq::new(8);
/// // One pending line we already hold: external request must be delayed.
/// woq.push(LineAddr::new(5), 0, 0, ByteMask::range(0, 8));
/// woq.mark_ready(0, 0);
/// assert_eq!(unit.decide(&woq, 0), ConflictDecision::Delay);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthorizationUnit {
    lex_bits: u32,
}

impl AuthorizationUnit {
    /// Creates a unit using `lex_bits` low bits of the line address as
    /// the sub-address.
    pub fn new(lex_bits: u32) -> Self {
        assert!((1..=32).contains(&lex_bits), "lex bits in 1..=32");
        AuthorizationUnit { lex_bits }
    }

    /// The lex order of a line.
    pub fn lex(&self, line: LineAddr) -> u64 {
        line.lex_order(self.lex_bits)
    }

    /// Whether two lines conflict (same sub-address but different lines) —
    /// forbidden within an atomic group.
    pub fn lex_conflict(&self, a: LineAddr, b: LineAddr) -> bool {
        a != b && self.lex(a) == self.lex(b)
    }

    /// The lex order extended to a *total* order over lines: ties in the
    /// sub-address (two lines sharing all `lex_bits` LSBs, possible when
    /// WOQ entries come from different atomic groups) are broken by the
    /// full line address. Without the tie-break, two cores each holding
    /// one line of a same-lex pair would both relinquish and then both
    /// re-request at once, livelocking; with it, exactly one side delays.
    pub fn total_lex(&self, line: LineAddr) -> (u64, u64) {
        (self.lex(line), line.raw())
    }

    /// Decides the fate of an external request targeting the WOQ entry at
    /// `idx` (which must be ready — the core holds its permission).
    ///
    /// The core *delays* iff it holds permission (`ready`) for every entry
    /// that is older in WOQ order than `idx` — or in the same atomic
    /// group — whose lex order is less than or equal to the requested
    /// line's (paper: "If the core has permissions for all addresses with
    /// lex order lesser or equal than the requested cache line it delays
    /// the request").
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn decide(&self, woq: &Woq, idx: usize) -> ConflictDecision {
        let target = woq.entry(idx);
        let target_lex = self.total_lex(target.line);
        let target_group = target.group;
        for (i, e) in woq.iter().enumerate() {
            let older_or_grouped = i <= idx || e.group == target_group;
            if !older_or_grouped {
                continue;
            }
            if self.total_lex(e.line) <= target_lex && !e.ready {
                return ConflictDecision::Relinquish;
            }
        }
        ConflictDecision::Delay
    }

    /// Whether a relinquished entry may re-request write permission: its
    /// atomic group must be at the head of the WOQ and every same-group
    /// line with a smaller lex order must already be ready (paper: the
    /// request is re-sent "when the cache line is the lesser-most address
    /// in lex order in the atomic group at the head of the WOQ").
    pub fn may_rerequest(&self, woq: &Woq, idx: usize) -> bool {
        let target = woq.entry(idx);
        let Some(head_group) = woq.head_group() else {
            return false;
        };
        if target.group != head_group {
            return false;
        }
        let target_lex = self.total_lex(target.line);
        woq.iter()
            .filter(|e| e.group == target.group && self.total_lex(e.line) < target_lex)
            .all(|e| e.ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_mem::ByteMask;

    fn mask() -> ByteMask {
        ByteMask::range(0, 8)
    }

    #[test]
    fn lex_uses_low_bits() {
        let u = AuthorizationUnit::new(8);
        assert_eq!(u.lex(LineAddr::new(0x1_02)), 0x02);
        assert!(u.lex_conflict(LineAddr::new(0x1_02), LineAddr::new(0x2_02)));
        assert!(!u.lex_conflict(LineAddr::new(0x1_02), LineAddr::new(0x1_02)));
        assert!(!u.lex_conflict(LineAddr::new(0x1_02), LineAddr::new(0x1_03)));
    }

    #[test]
    fn delay_when_all_smaller_lex_held() {
        // Entries: line 3 (ready), line 7 (ready, requested).
        let u = AuthorizationUnit::new(16);
        let mut woq = Woq::new(8);
        woq.push(LineAddr::new(3), 0, 0, mask());
        woq.push(LineAddr::new(7), 0, 1, mask());
        woq.mark_ready(0, 0);
        woq.mark_ready(0, 1);
        assert_eq!(u.decide(&woq, 1), ConflictDecision::Delay);
    }

    #[test]
    fn relinquish_when_waiting_on_smaller_lex() {
        // Fig. 5, core 1: waiting for C (lex 3) while holding D (lex 7).
        let u = AuthorizationUnit::new(16);
        let mut woq = Woq::new(8);
        let g = woq.push(LineAddr::new(3), 0, 0, mask()); // C, not ready
        woq.push_into_group(LineAddr::new(7), 0, 1, mask(), g); // D
        woq.mark_ready(0, 1); // we hold D only
        assert_eq!(u.decide(&woq, 1), ConflictDecision::Relinquish);
    }

    #[test]
    fn delay_when_waiting_only_on_larger_lex() {
        // Fig. 5, core 0: holds C (lex 3), waiting for D (lex 7): request
        // for C is delayed.
        let u = AuthorizationUnit::new(16);
        let mut woq = Woq::new(8);
        let g = woq.push(LineAddr::new(3), 0, 0, mask()); // C, ready
        woq.push_into_group(LineAddr::new(7), 0, 1, mask(), g); // D, not ready
        woq.mark_ready(0, 0);
        assert_eq!(u.decide(&woq, 0), ConflictDecision::Delay);
    }

    #[test]
    fn older_entries_outside_group_count() {
        // Older singleton group with smaller lex, not ready => relinquish.
        let u = AuthorizationUnit::new(16);
        let mut woq = Woq::new(8);
        woq.push(LineAddr::new(1), 0, 0, mask()); // older, lex 1, pending
        woq.push(LineAddr::new(9), 0, 1, mask());
        woq.mark_ready(0, 1);
        assert_eq!(u.decide(&woq, 1), ConflictDecision::Relinquish);
        // Once the older line is acquired, the same request is delayed.
        woq.mark_ready(0, 0);
        assert_eq!(u.decide(&woq, 1), ConflictDecision::Delay);
    }

    /// Regression: two lines sharing all 16 LSBs (equal lex order) must
    /// still have a *total* visibility order. The full line address
    /// breaks the tie, so in the symmetric two-core configuration one
    /// side delays and the other relinquishes — not both relinquishing
    /// (the livelock shape).
    #[test]
    fn lex_tie_is_broken_by_full_address() {
        let u = AuthorizationUnit::new(16);
        let lo = LineAddr::new(0x1_0003); // lex 3
        let hi = LineAddr::new(0x2_0003); // lex 3, larger full address
        assert_eq!(u.lex(lo), u.lex(hi));
        assert!(u.total_lex(lo) < u.total_lex(hi), "tie-break gives a total order");

        // Core A: holds `lo` (ready), waiting on `hi` in the same group.
        let mut a = Woq::new(8);
        let ga = a.push(lo, 0, 0, mask());
        a.push_into_group(hi, 0, 1, mask(), ga);
        a.mark_ready(0, 0);
        // Core B: holds `hi` (ready), waiting on `lo` in the same group.
        let mut b = Woq::new(8);
        let gb = b.push(hi, 0, 0, mask());
        b.push_into_group(lo, 0, 1, mask(), gb);
        b.mark_ready(0, 0);

        // A is asked for `lo` while waiting on the *larger* `hi`: delay.
        // B is asked for `hi` while waiting on the *smaller* `lo`:
        // relinquish. Exactly one side gives way.
        assert_eq!(u.decide(&a, 0), ConflictDecision::Delay);
        assert_eq!(u.decide(&b, 0), ConflictDecision::Relinquish);
    }

    /// Regression: with equal lex orders, re-request eligibility must be
    /// serialized by the tie-break too — otherwise both relinquished
    /// lines re-request simultaneously and collide again.
    #[test]
    fn lex_tie_serializes_rerequests() {
        let u = AuthorizationUnit::new(16);
        let lo = LineAddr::new(0x1_0003);
        let hi = LineAddr::new(0x2_0003);
        let mut woq = Woq::new(8);
        let g = woq.push(lo, 0, 0, mask());
        woq.push_into_group(hi, 0, 1, mask(), g);
        // Neither line held: only the tie-break-smaller `lo` may
        // re-request; `hi` must wait for `lo` to become ready.
        assert!(u.may_rerequest(&woq, 0), "smaller full address goes first");
        assert!(!u.may_rerequest(&woq, 1), "larger full address must wait");
        woq.mark_ready(0, 0);
        assert!(u.may_rerequest(&woq, 1));
    }

    /// The 16-bit sub-address wraps: line addresses that differ only above
    /// bit 15 collide, including at the 0xFFFF boundary, and widening the
    /// sub-address resolves exactly those collisions.
    #[test]
    fn lex_collision_at_16_bit_boundary_and_wraparound() {
        let u16bit = AuthorizationUnit::new(16);
        // Top of the sub-address space: 0xFFFF and 0x1FFFF share all 16
        // LSBs even though they are 64 KiB of lines apart.
        let top_a = LineAddr::new(0xFFFF);
        let top_b = LineAddr::new(0x1_FFFF);
        assert_eq!(u16bit.lex(top_a), 0xFFFF);
        assert_eq!(u16bit.lex(top_b), 0xFFFF);
        assert!(u16bit.lex_conflict(top_a, top_b));
        // Wraparound: the next line after 0xFFFF has sub-address 0, which
        // collides with line 0 — the smallest possible lex value.
        let wrap = LineAddr::new(0x1_0000);
        assert_eq!(u16bit.lex(wrap), 0);
        assert!(u16bit.lex_conflict(LineAddr::new(0), wrap));
        // The wrapped line sorts *below* the boundary line despite its
        // larger full address: lex dominates the tie-break.
        assert!(u16bit.total_lex(wrap) < u16bit.total_lex(top_a));
        // A wider sub-address separates both collisions.
        let u17bit = AuthorizationUnit::new(17);
        assert!(!u17bit.lex_conflict(top_a, top_b));
        assert!(!u17bit.lex_conflict(LineAddr::new(0), wrap));
    }

    /// `total_lex` must be a total order: antisymmetric and transitive
    /// over a set of lines that all share their 16 LSBs, with the full
    /// address as the deciding key.
    #[test]
    fn equal_lex_total_order_over_full_addresses() {
        let u = AuthorizationUnit::new(16);
        let lines = [
            LineAddr::new(0x0003),
            LineAddr::new(0x1_0003),
            LineAddr::new(0x2_0003),
            LineAddr::new(0x7_0003),
        ];
        for (i, &a) in lines.iter().enumerate() {
            for &b in lines.iter().skip(i + 1) {
                assert_eq!(u.lex(a), u.lex(b), "fixture must share lex order");
                // Exactly one direction holds (antisymmetry), and the
                // smaller full address wins.
                assert!(u.total_lex(a) < u.total_lex(b));
                assert!(u.total_lex(b) > u.total_lex(a));
            }
        }
        // Transitivity across the whole chain: sorting by total_lex equals
        // sorting by raw address.
        let mut by_total = lines;
        by_total.sort_by_key(|l| u.total_lex(*l));
        let mut by_raw = lines;
        by_raw.sort_by_key(|l| l.raw());
        assert_eq!(by_total, by_raw);
    }

    /// A three-way equal-lex chain must relinquish in a strict cascade:
    /// each core delays requests for its smallest held line and only the
    /// globally largest unheld line forces a relinquish.
    #[test]
    fn equal_lex_three_way_chain_resolves_by_address() {
        let u = AuthorizationUnit::new(16);
        let a = LineAddr::new(0x1_0042);
        let b = LineAddr::new(0x2_0042);
        let c = LineAddr::new(0x3_0042);
        // One WOQ holding {a (ready), b (pending), c (pending)} in a
        // group: a request for `a` is delayed (nothing smaller pending),
        // while the not-ready `b` blocks any request for `c`'s position
        // were it ready.
        let mut woq = Woq::new(8);
        let g = woq.push(a, 0, 0, mask());
        woq.push_into_group(b, 0, 1, mask(), g);
        woq.push_into_group(c, 0, 2, mask(), g);
        woq.mark_ready(0, 0);
        assert_eq!(u.decide(&woq, 0), ConflictDecision::Delay);
        woq.mark_ready(0, 2);
        // `c` is held but `b` (smaller total lex, same group) is not:
        // an external request for `c` must relinquish.
        assert_eq!(u.decide(&woq, 2), ConflictDecision::Relinquish);
        // Re-request order follows the address chain exactly: b before c.
        assert!(u.may_rerequest(&woq, 1));
        // `c` is ready, so eligibility is moot for it; un-ready it via a
        // fresh queue to check the ordering constraint directly.
        let mut woq2 = Woq::new(8);
        let g2 = woq2.push(b, 0, 0, mask());
        woq2.push_into_group(c, 0, 1, mask(), g2);
        assert!(u.may_rerequest(&woq2, 0), "b re-requests first");
        assert!(!u.may_rerequest(&woq2, 1), "c waits for b");
        woq2.mark_ready(0, 0);
        assert!(u.may_rerequest(&woq2, 1));
    }

    #[test]
    fn rerequest_requires_head_group_and_lex_order() {
        let u = AuthorizationUnit::new(16);
        let mut woq = Woq::new(8);
        let g0 = woq.push(LineAddr::new(20), 0, 0, mask()); // older group (P)
        let g1 = woq.push(LineAddr::new(3), 1, 0, mask()); // C
        woq.push_into_group(LineAddr::new(7), 1, 1, mask(), g1); // D
        let d_idx = 2;
        // Older group still present: no re-request.
        assert!(!u.may_rerequest(&woq, d_idx));
        // Pop the older group: now the {C, D} group is at the head, but C
        // (smaller lex) is not ready yet.
        woq.mark_ready(0, 0);
        assert_eq!(woq.head_group(), Some(g0));
        let popped = woq.pop_head_group();
        assert_eq!(popped.len(), 1);
        assert!(!u.may_rerequest(&woq, 1), "C not ready yet");
        woq.mark_ready(1, 0); // C acquired
        assert!(u.may_rerequest(&woq, 1), "D may re-request now");
    }
}
