//! TUS preserves x86-TSO (paper Section III-D), demonstrated: run the
//! canonical litmus corpus on the full simulator with the TUS policy and
//! check every observed outcome against the operational x86-TSO reference
//! model of Owens, Sarkar & Sewell.
//!
//! ```sh
//! cargo run --release --example litmus_tso
//! ```

use tus_sim::PolicyKind;
use tus_tso::{all_litmus_tests, check_conformance};

fn main() {
    let seeds = 24;
    println!("running the litmus corpus on the simulator (TUS policy, {seeds} timing seeds each)\n");
    println!(
        "{:12} {:>8} {:>10} {:>10} {:>10}  verdict",
        "test", "allowed", "observed", "coverage", "witness"
    );
    let mut all_ok = true;
    for t in all_litmus_tests() {
        let r = check_conformance(&t.program, PolicyKind::Tus, seeds);
        let witness_seen = r.observed.iter().any(|o| (t.witness)(o));
        let ok = r.conforms() && (t.allowed || !witness_seen);
        all_ok &= ok;
        println!(
            "{:12} {:>8} {:>10} {:>9.0}% {:>10}  {}",
            t.name,
            r.allowed.len(),
            r.observed.len(),
            r.coverage() * 100.0,
            if witness_seen { "seen" } else { "-" },
            if ok { "OK" } else { "VIOLATION" },
        );
        if !r.conforms() {
            for v in &r.violations {
                println!("    forbidden outcome observed: {v}");
            }
        }
    }
    println!();
    if all_ok {
        println!("all observed outcomes are x86-TSO-allowed: TUS preserves TSO.");
    } else {
        println!("TSO VIOLATIONS FOUND — see above.");
        std::process::exit(1);
    }
}
