//! Scheduling contract for the idle-skipping simulation kernel.
//!
//! Every simulated layer (cores, store-buffer policies, caches, network,
//! directory) answers one question: *given the current cycle, when is the
//! earliest cycle at which ticking you could change machine state?* The
//! kernel takes the machine-wide minimum of those answers and, when it lies
//! strictly in the future, jumps the clock straight there instead of
//! ticking idle components cycle by cycle.
//!
//! # Skip safety
//!
//! The contract is deliberately **conservative**: a component that is not
//! sure may always answer `Some(now)` ("tick me now"), which degrades the
//! kernel to lockstep for that cycle but can never change simulated
//! behaviour. The only way to break cycle-accuracy is to answer a *later*
//! cycle than the component's true next state change — so implementations
//! must only report a future cycle (or `None`) when their tick is provably
//! a no-op until then. [`DelayQueue::next_due`] is the primitive: a queue
//! whose earliest entry is due at `t > now` is untouched by any
//! `pop_due(now)` drain until `t`.
//!
//! Skipped cycles are *not* free in the statistics: the kernel charges each
//! idle cycle to the same stall/occupancy counters the lockstep tick would
//! have bumped, so `StatSet` output is bit-identical between kernels.
//!
//! [`DelayQueue::next_due`]: crate::DelayQueue::next_due

use crate::event::DelayQueue;
use crate::types::Cycle;

/// A component the idle-skipping kernel can query for its next event.
pub trait Schedulable {
    /// Earliest cycle `>= now` at which ticking this component could change
    /// simulated state, or `None` if it is fully quiesced (no pending work
    /// at all, not even in the future).
    ///
    /// Returning `Some(c)` with `c <= now` means "I have work right now".
    /// Returning `Some(now)` when unsure is always safe; returning a cycle
    /// later than the true next state change is a correctness bug.
    fn next_work(&self, now: Cycle) -> Option<Cycle>;
}

impl<T> Schedulable for DelayQueue<T> {
    fn next_work(&self, _now: Cycle) -> Option<Cycle> {
        self.next_due()
    }
}

/// Folds two optional next-event cycles into their minimum.
///
/// `None` means "no pending work", so it is the identity of the fold.
pub fn earliest(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_queue_is_schedulable() {
        let mut q = DelayQueue::new();
        assert_eq!(q.next_work(Cycle::new(0)), None);
        q.push(Cycle::new(17), "x");
        q.push(Cycle::new(5), "y");
        assert_eq!(q.next_work(Cycle::new(0)), Some(Cycle::new(5)));
    }

    #[test]
    fn earliest_folds_none_as_identity() {
        let a = Some(Cycle::new(3));
        let b = Some(Cycle::new(9));
        assert_eq!(earliest(a, b), Some(Cycle::new(3)));
        assert_eq!(earliest(None, b), Some(Cycle::new(9)));
        assert_eq!(earliest(a, None), Some(Cycle::new(3)));
        assert_eq!(earliest(None, None), None);
    }
}
