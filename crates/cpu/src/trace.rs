//! Instruction trace format.
//!
//! Traces are streams of [`TraceInst`] records. Each record carries an
//! operation class, a memory address for loads/stores, and up to two
//! register dependencies expressed as *distances* (how many instructions
//! earlier the producer appeared). Distances larger than the ROB window
//! are treated as already satisfied.

use tus_sim::Addr;

/// Operation classes with the Table I execution latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// 1-cycle integer ALU op.
    IntAlu,
    /// 4-cycle integer multiply.
    IntMul,
    /// 12-cycle integer divide.
    IntDiv,
    /// 5-cycle FP add.
    FpAdd,
    /// 5-cycle FP multiply.
    FpMul,
    /// 12-cycle FP divide.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Full memory fence (`mfence`): commits only once every earlier
    /// store is globally visible.
    Fence,
}

impl OpClass {
    /// Whether this is a memory operation.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the op writes a floating-point register.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether the op can only execute on a general (Int/FP/SIMD) ALU
    /// (everything but the plain integer ALU op).
    pub fn needs_general_alu(self) -> bool {
        matches!(
            self,
            OpClass::IntMul | OpClass::IntDiv | OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv
        )
    }
}

/// One instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInst {
    /// Operation class.
    pub op: OpClass,
    /// Byte address for loads/stores (ignored otherwise).
    pub addr: Addr,
    /// Access size in bytes (1, 2, 4 or 8) for loads/stores.
    pub size: u8,
    /// Value written by stores (ignored otherwise).
    pub value: u64,
    /// Distance to the first register producer (0 = no dependency).
    pub dep1: u32,
    /// Distance to the second register producer (0 = no dependency).
    pub dep2: u32,
}

impl TraceInst {
    /// A dependency-free ALU op.
    pub fn alu() -> Self {
        TraceInst {
            op: OpClass::IntAlu,
            addr: Addr::new(0),
            size: 0,
            value: 0,
            dep1: 0,
            dep2: 0,
        }
    }

    /// A load of `size` bytes at `addr`.
    pub fn load(addr: Addr, size: u8) -> Self {
        TraceInst {
            op: OpClass::Load,
            addr,
            size,
            value: 0,
            dep1: 0,
            dep2: 0,
        }
    }

    /// A store of `value` (`size` bytes) to `addr`.
    pub fn store(addr: Addr, size: u8, value: u64) -> Self {
        TraceInst {
            op: OpClass::Store,
            addr,
            size,
            value,
            dep1: 0,
            dep2: 0,
        }
    }

    /// A full memory fence.
    pub fn fence() -> Self {
        TraceInst {
            op: OpClass::Fence,
            addr: Addr::new(0),
            size: 0,
            value: 0,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Returns `self` with the given dependency distances.
    pub fn with_deps(mut self, dep1: u32, dep2: u32) -> Self {
        self.dep1 = dep1;
        self.dep2 = dep2;
        self
    }
}

/// A source of trace instructions.
///
/// Implementations are typically generators (see the `tus-workloads`
/// crate) so billion-instruction traces never need to be materialized.
pub trait TraceSource {
    /// Produces the next instruction, or `None` at end of trace.
    fn next_inst(&mut self) -> Option<TraceInst>;
}

/// A trace backed by a vector (tests, litmus threads).
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    insts: Vec<TraceInst>,
    pos: usize,
}

impl VecTrace {
    /// Creates a trace over `insts`.
    pub fn new(insts: Vec<TraceInst>) -> Self {
        VecTrace { insts, pos: 0 }
    }

    /// Remaining instructions.
    pub fn remaining(&self) -> usize {
        self.insts.len() - self.pos
    }
}

impl TraceSource for VecTrace {
    fn next_inst(&mut self) -> Option<TraceInst> {
        let i = self.insts.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

impl FromIterator<TraceInst> for VecTrace {
    fn from_iter<I: IntoIterator<Item = TraceInst>>(iter: I) -> Self {
        VecTrace::new(iter.into_iter().collect())
    }
}

/// Adapts a closure into a [`TraceSource`].
pub struct FnTrace<F>(pub F);

impl<F: FnMut() -> Option<TraceInst>> TraceSource for FnTrace<F> {
    fn next_inst(&mut self) -> Option<TraceInst> {
        (self.0)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Fence.is_mem());
        assert!(OpClass::FpDiv.is_fp());
        assert!(!OpClass::IntMul.is_fp());
        assert!(OpClass::IntMul.needs_general_alu());
        assert!(!OpClass::IntAlu.needs_general_alu());
    }

    #[test]
    fn vec_trace_yields_in_order() {
        let mut t = VecTrace::new(vec![TraceInst::alu(), TraceInst::fence()]);
        assert_eq!(t.remaining(), 2);
        assert_eq!(t.next_inst().map(|i| i.op), Some(OpClass::IntAlu));
        assert_eq!(t.next_inst().map(|i| i.op), Some(OpClass::Fence));
        assert_eq!(t.next_inst(), None);
        assert_eq!(t.next_inst(), None);
    }

    #[test]
    fn builders_set_fields() {
        let s = TraceInst::store(Addr::new(8), 4, 99).with_deps(1, 2);
        assert_eq!(s.op, OpClass::Store);
        assert_eq!(s.value, 99);
        assert_eq!((s.dep1, s.dep2), (1, 2));
        let l = TraceInst::load(Addr::new(16), 8);
        assert_eq!(l.op, OpClass::Load);
        assert_eq!(l.size, 8);
    }

    #[test]
    fn fn_trace_adapts_closures() {
        let mut n = 0;
        let mut t = FnTrace(move || {
            n += 1;
            if n <= 2 {
                Some(TraceInst::alu())
            } else {
                None
            }
        });
        assert!(t.next_inst().is_some());
        assert!(t.next_inst().is_some());
        assert!(t.next_inst().is_none());
    }
}
