//! Store-drain policies.
//!
//! The drain policy is the mechanism that moves committed stores out of
//! the store buffer and into the memory system — the axis the paper's
//! whole evaluation varies. Five policies are implemented behind the
//! [`Policy`] enum:
//!
//! * [`BaselinePolicy`] — prefetch-at-commit + stream prefetching; the SB
//!   head blocks on a store miss (the paper's strengthened baseline).
//! * [`SpbPolicy`] — baseline + Store Prefetch Burst (full-page GetM
//!   prefetch on store bursts) \[Cebrian et al., MICRO'20\].
//! * [`SsbPolicy`] — idealized Scalable Store Buffer: stores leave the SB
//!   into a 1K-entry in-order TSOB immediately and drain to the L2
//!   one-by-one (write-through, no coalescing) \[Wenisch et al.,
//!   ISCA'07\].
//! * [`CsbPolicy`] — Coalescing Store Buffer: WCB coalescing with atomic
//!   groups, but writes require permission, so a WCB write miss stops the
//!   SB drain \[Ros & Kaxiras, ISCA'18\].
//! * [`TusPolicy`] — Temporarily Unauthorized Stores: WCB coalescing plus
//!   unauthorized L1D writes ordered by the WOQ, with the lex-order
//!   authorization unit resolving external conflicts (the paper).

use std::collections::VecDeque;

use tus_cpu::StoreBuffer;
use tus_mem::prefetch::SpbPrefetcher;
use tus_mem::{
    CacheEvent, Network, PrivateCache, ProbeResult, StoreAttemptClass, StoreWriteOutcome,
};
use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{Addr, Cycle, LineAddr, PolicyKind, SimConfig, StatSet};

use crate::lex::{AuthorizationUnit, ConflictDecision};
use crate::wcb::{WcbBuf, WcbRefusal, WcbSet};
use crate::woq::{Woq, WoqEntry};

/// How many stores may move from the SB into the WCBs per cycle.
const SB_TO_WCB_PER_CYCLE: usize = 4;

/// Flush a WCB group once its oldest store has waited this long
/// (coalescing window).
const WCB_FLUSH_AGE: u64 = 100;

/// Maximum SPB backlog prefetches issued per cycle.
const SPB_ISSUE_PER_CYCLE: usize = 4;

/// Policy-side buffer occupancy at the moment a run stopped making
/// progress (WOQ/WCB/TSOB state for deadlock reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyOccupancy {
    /// WOQ entries still queued (TUS only).
    pub woq_len: usize,
    /// WOQ entries whose permission is already granted.
    pub woq_ready: usize,
    /// WOQ entries waiting on a lex-order re-request.
    pub woq_retries: usize,
    /// Occupied write-combining buffers (CSB/TUS).
    pub wcb_occupied: usize,
    /// TSOB entries (SSB only).
    pub tsob_len: usize,
}

/// A per-core store-drain policy.
#[derive(Debug)]
pub enum Policy {
    /// Strengthened baseline.
    Baseline(BaselinePolicy),
    /// Store Prefetch Burst.
    Spb(SpbPolicy),
    /// Scalable Store Buffer (idealized).
    Ssb(SsbPolicy),
    /// Coalescing Store Buffer.
    Csb(CsbPolicy),
    /// Temporarily Unauthorized Stores.
    Tus(TusPolicy),
}

impl Policy {
    /// Builds the policy selected by `cfg.policy`.
    pub fn new(cfg: &SimConfig) -> Self {
        match cfg.policy {
            PolicyKind::Baseline => Policy::Baseline(BaselinePolicy::new(cfg)),
            PolicyKind::Spb => Policy::Spb(SpbPolicy::new(cfg)),
            PolicyKind::Ssb => Policy::Ssb(SsbPolicy::new(cfg)),
            PolicyKind::Csb => Policy::Csb(CsbPolicy::new(cfg)),
            PolicyKind::Tus => Policy::Tus(TusPolicy::new(cfg)),
        }
    }

    /// Drains committed stores from `sb` into the memory system; called
    /// once per cycle before the core ticks.
    pub fn drain(
        &mut self,
        sb: &mut StoreBuffer,
        ctrl: &mut PrivateCache,
        net: &mut Network,
        now: Cycle,
    ) {
        match self {
            Policy::Baseline(p) => p.drain(sb, ctrl, net, now),
            Policy::Spb(p) => p.drain(sb, ctrl, net, now),
            Policy::Ssb(p) => p.drain(sb, ctrl, net, now),
            Policy::Csb(p) => p.drain(sb, ctrl, net, now),
            Policy::Tus(p) => p.drain(sb, ctrl, net, now),
        }
    }

    /// Handles a controller event (TUS consumes `PermissionReady` and
    /// `ExternalConflict`; other policies never receive them).
    pub fn on_event(&mut self, ev: &CacheEvent, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        match self {
            Policy::Tus(p) => p.on_event(ev, ctrl, net, now),
            _ => match ev {
                CacheEvent::ExternalConflict { .. } | CacheEvent::PermissionReady { .. } => {
                    unreachable!("unauthorized-line events without the TUS policy")
                }
                CacheEvent::LoadDone { .. } | CacheEvent::Invalidated { .. } => {}
            },
        }
    }

    /// Store-to-load forwarding from policy-owned buffers.
    pub fn forward_load(&mut self, addr: Addr, size: usize) -> Option<(u64, u64)> {
        match self {
            Policy::Baseline(_) | Policy::Spb(_) => None,
            Policy::Ssb(p) => p.forward_load(addr, size),
            Policy::Csb(p) => p.wcbs.forward(addr, size).map(|v| (v, p.l1_lat)),
            Policy::Tus(p) => p.wcbs.forward(addr, size).map(|v| (v, p.l1_lat)),
        }
    }

    /// Notification that a store committed (prefetch-at-commit, SPB
    /// training).
    pub fn store_committed(
        &mut self,
        ctrl: &mut PrivateCache,
        net: &mut Network,
        addr: Addr,
        now: Cycle,
    ) {
        let line = addr.line();
        let pac = match self {
            Policy::Baseline(p) => p.prefetch_at_commit,
            Policy::Spb(p) => {
                for l in p.spb.observe(line) {
                    p.backlog.push_back(l);
                }
                p.base_prefetch_at_commit
            }
            Policy::Ssb(p) => p.prefetch_at_commit,
            Policy::Csb(p) => p.prefetch_at_commit,
            Policy::Tus(p) => p.prefetch_at_commit,
        };
        if pac {
            ctrl.ensure_write_permission(line, true, now, net);
        }
    }

    /// Whether all policy-side store state has drained (fence condition).
    pub fn drained(&self) -> bool {
        match self {
            Policy::Baseline(_) | Policy::Spb(_) => true,
            Policy::Ssb(p) => p.tsob.is_empty(),
            Policy::Csb(p) => p.wcbs.is_empty(),
            Policy::Tus(p) => p.wcbs.is_empty() && p.woq.is_empty(),
        }
    }

    /// Whether the policy currently holds any store state (used by run
    /// loops to decide when a program has fully drained).
    pub fn holds_stores(&self) -> bool {
        !self.drained()
    }

    /// Earliest cycle at or after `now` at which [`Policy::drain`] would
    /// change any buffer, cache, network, or counter state, or `None`
    /// when nothing will change until another component acts first (the
    /// idle-skipping kernel's per-policy contract; see
    /// [`tus_sim::Schedulable`] for the conservatism rules).
    pub fn next_work(&self, sb: &StoreBuffer, ctrl: &PrivateCache, now: Cycle) -> Option<Cycle> {
        match self {
            Policy::Baseline(p) => p.next_work(sb, ctrl, now),
            Policy::Spb(p) => p.next_work(sb, ctrl, now),
            Policy::Ssb(p) => p.next_work(sb, ctrl, now),
            Policy::Csb(p) => p.next_work(sb, now),
            Policy::Tus(p) => p.next_work(sb, ctrl, now),
        }
    }

    /// Charges `n` skipped idle cycles with exactly the per-cycle counter
    /// increments that `n` lockstep [`Policy::drain`] calls would have
    /// made in this (idle) state. Only the baseline family counts blocked
    /// retry cycles; an idle CSB/TUS drain mutates nothing.
    pub fn charge_idle(&mut self, sb: &StoreBuffer, ctrl: &mut PrivateCache, n: u64) {
        match self {
            Policy::Baseline(p) => p.charge_idle(sb, ctrl, n),
            Policy::Spb(p) => p.charge_idle(sb, ctrl, n),
            Policy::Ssb(p) => p.charge_idle(ctrl, n),
            Policy::Csb(_) | Policy::Tus(_) => {}
        }
    }

    /// Snapshots policy-side buffer occupancy for deadlock diagnostics.
    pub fn occupancy(&self) -> PolicyOccupancy {
        match self {
            Policy::Baseline(_) | Policy::Spb(_) => PolicyOccupancy::default(),
            Policy::Ssb(p) => PolicyOccupancy {
                tsob_len: p.tsob.len(),
                ..PolicyOccupancy::default()
            },
            Policy::Csb(p) => PolicyOccupancy {
                wcb_occupied: p.wcbs.occupied(),
                ..PolicyOccupancy::default()
            },
            Policy::Tus(p) => PolicyOccupancy {
                wcb_occupied: p.wcbs.occupied(),
                woq_len: p.woq.len(),
                woq_ready: p.woq.iter().filter(|e| e.ready).count(),
                woq_retries: p.woq.iter().filter(|e| e.retry).count(),
                tsob_len: 0,
            },
        }
    }

    /// Arms tracing on this policy and its store-path buffers (WCBs, WOQ).
    /// The baseline family has no policy-side buffers and records nothing.
    pub fn trace_enable(&mut self, cap: usize) {
        match self {
            Policy::Baseline(_) | Policy::Spb(_) | Policy::Ssb(_) => {}
            Policy::Csb(p) => {
                p.tracer.enable(cap);
                p.wcbs.trace_enable(cap);
            }
            Policy::Tus(p) => {
                p.tracer.enable(cap);
                p.wcbs.trace_enable(cap);
                p.woq.trace_enable(cap);
            }
        }
    }

    /// Drains the buffered trace records of the policy and its buffers,
    /// merged into a single timestamp-ordered stream.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        let mut out = match self {
            Policy::Baseline(_) | Policy::Spb(_) | Policy::Ssb(_) => Vec::new(),
            Policy::Csb(p) => {
                let mut v = p.tracer.take();
                v.extend(p.wcbs.take_trace());
                v
            }
            Policy::Tus(p) => {
                let mut v = p.tracer.take();
                v.extend(p.wcbs.take_trace());
                v.extend(p.woq.take_trace());
                v
            }
        };
        out.sort_by_key(|r| r.at);
        out
    }

    /// Exports policy statistics.
    pub fn export_stats(&self) -> StatSet {
        let mut s = StatSet::new();
        match self {
            Policy::Baseline(p) => {
                s.set("head_block_cycles", p.head_block_cycles as f64);
                s.set("drained_stores", p.drained as f64);
            }
            Policy::Spb(p) => {
                s.set("head_block_cycles", p.head_block_cycles as f64);
                s.set("drained_stores", p.drained as f64);
                s.set("spb_bursts", p.bursts as f64);
            }
            Policy::Ssb(p) => {
                s.set("tsob_peak", p.tsob_peak as f64);
                s.set("tsob_searches", p.searches as f64);
                s.set("drained_stores", p.drained as f64);
            }
            Policy::Csb(p) => {
                s.set("wcb_coalesced", p.wcbs.coalesced_stores() as f64);
                s.set("wcb_searches", p.wcbs.searches() as f64);
                s.set("wcb_flushes", p.flushes as f64);
                s.set("head_block_cycles", p.head_block_cycles as f64);
            }
            Policy::Tus(p) => {
                s.set("wcb_coalesced", p.wcbs.coalesced_stores() as f64);
                s.set("wcb_searches", p.wcbs.searches() as f64);
                s.set("wcb_flushes", p.flushes as f64);
                s.set("woq_searches", p.woq.searches() as f64);
                s.set("woq_peak", p.woq.peak() as f64);
                s.set("visibility_flips", p.flips as f64);
                s.set("atomic_groups", p.groups_formed as f64);
                s.set("conflict_delays", p.delays as f64);
                s.set("conflict_relinquishes", p.relinquishes as f64);
                s.set("head_block_cycles", p.head_block_cycles as f64);
            }
        }
        s
    }
}

// ----------------------------------------------------------------------
// Baseline
// ----------------------------------------------------------------------

/// The strengthened baseline drain: write when permission is held, block
/// the SB head otherwise (permission was usually prefetched at commit).
#[derive(Debug)]
pub struct BaselinePolicy {
    store_ports: usize,
    prefetch_at_commit: bool,
    head_block_cycles: u64,
    drained: u64,
}

impl BaselinePolicy {
    /// Creates the baseline policy.
    pub fn new(cfg: &SimConfig) -> Self {
        BaselinePolicy {
            store_ports: cfg.backend.store_ports,
            prefetch_at_commit: cfg.tus.prefetch_at_commit,
            head_block_cycles: 0,
            drained: 0,
        }
    }

    fn drain(&mut self, sb: &mut StoreBuffer, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        for _ in 0..self.store_ports {
            let Some(head) = sb.head() else { return };
            if !head.committed {
                return;
            }
            let (addr, size, value) = (head.addr, head.size as usize, head.value);
            match ctrl.try_visible_store_write(addr, size, value, now, net) {
                StoreWriteOutcome::Done => {
                    sb.pop_head();
                    self.drained += 1;
                }
                StoreWriteOutcome::NotYet => {
                    self.head_block_cycles += 1;
                    return;
                }
            }
        }
    }

    fn next_work(&self, sb: &StoreBuffer, ctrl: &PrivateCache, now: Cycle) -> Option<Cycle> {
        let head = sb.head()?;
        if !head.committed {
            return None;
        }
        match ctrl.store_write_class(head.addr.line()) {
            // A write or a fresh GetM would happen this cycle.
            StoreAttemptClass::WouldComplete | StoreAttemptClass::BlockedWouldRequest => Some(now),
            // Retry cycles only move counters; chargeable in bulk. The
            // line state changes on a network delivery, which the memory
            // side schedules.
            StoreAttemptClass::BlockedCounting | StoreAttemptClass::BlockedQuiet => None,
        }
    }

    fn charge_idle(&mut self, sb: &StoreBuffer, ctrl: &mut PrivateCache, n: u64) {
        let Some(head) = sb.head() else { return };
        if !head.committed {
            return;
        }
        match ctrl.store_write_class(head.addr.line()) {
            StoreAttemptClass::BlockedCounting => {
                self.head_block_cycles += n;
                ctrl.charge_blocked_store_cycles(n);
            }
            StoreAttemptClass::BlockedQuiet => self.head_block_cycles += n,
            StoreAttemptClass::WouldComplete | StoreAttemptClass::BlockedWouldRequest => {
                unreachable!("idle cycle cannot have a drainable store")
            }
        }
    }
}

// ----------------------------------------------------------------------
// SPB
// ----------------------------------------------------------------------

/// Baseline + Store Prefetch Burst: on detecting a run of consecutive
/// store lines, prefetch write permission for the whole 4 KiB page.
#[derive(Debug)]
pub struct SpbPolicy {
    inner: BaselinePolicy,
    spb: SpbPrefetcher,
    backlog: VecDeque<LineAddr>,
    base_prefetch_at_commit: bool,
    bursts: u64,
    head_block_cycles: u64,
    drained: u64,
}

impl SpbPolicy {
    /// Creates the SPB policy.
    pub fn new(cfg: &SimConfig) -> Self {
        SpbPolicy {
            inner: BaselinePolicy::new(cfg),
            spb: SpbPrefetcher::new(cfg.tus.spb_trigger),
            backlog: VecDeque::new(),
            base_prefetch_at_commit: cfg.tus.prefetch_at_commit,
            bursts: 0,
            head_block_cycles: 0,
            drained: 0,
        }
    }

    fn drain(&mut self, sb: &mut StoreBuffer, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        if !self.backlog.is_empty() {
            self.bursts += 1;
        }
        for _ in 0..SPB_ISSUE_PER_CYCLE {
            if ctrl.mshrs_free() <= 2 {
                break;
            }
            let Some(l) = self.backlog.pop_front() else { break };
            ctrl.ensure_write_permission(l, true, now, net);
        }
        self.inner.drain(sb, ctrl, net, now);
        self.head_block_cycles = self.inner.head_block_cycles;
        self.drained = self.inner.drained;
    }

    fn next_work(&self, sb: &StoreBuffer, ctrl: &PrivateCache, now: Cycle) -> Option<Cycle> {
        // Backlogged prefetches issue as soon as more than two MSHRs are
        // free; MSHR occupancy only drops on a grant (a network event).
        if !self.backlog.is_empty() && ctrl.mshrs_free() > 2 {
            return Some(now);
        }
        self.inner.next_work(sb, ctrl, now)
    }

    fn charge_idle(&mut self, sb: &StoreBuffer, ctrl: &mut PrivateCache, n: u64) {
        // The burst counter ticks every cycle the backlog is non-empty,
        // even when no prefetch can issue.
        if !self.backlog.is_empty() {
            self.bursts += n;
        }
        self.inner.charge_idle(sb, ctrl, n);
        self.head_block_cycles = self.inner.head_block_cycles;
        self.drained = self.inner.drained;
    }
}

// ----------------------------------------------------------------------
// SSB
// ----------------------------------------------------------------------

/// Idealized Scalable Store Buffer: committed stores move to a large
/// in-order queue (TSOB) instantly, which drains store-by-store into the
/// L2 (write-through, no coalescing; invalidation recovery is free).
#[derive(Debug)]
pub struct SsbPolicy {
    tsob: VecDeque<(Addr, u8, u64)>,
    cap: usize,
    store_ports: usize,
    prefetch_at_commit: bool,
    l1_lat: u64,
    tsob_peak: usize,
    searches: u64,
    drained: u64,
}

impl SsbPolicy {
    /// Creates the SSB policy.
    pub fn new(cfg: &SimConfig) -> Self {
        SsbPolicy {
            tsob: VecDeque::with_capacity(cfg.tus.tsob_entries),
            cap: cfg.tus.tsob_entries,
            store_ports: cfg.backend.store_ports,
            prefetch_at_commit: cfg.tus.prefetch_at_commit,
            l1_lat: cfg.mem.l1d.latency,
            tsob_peak: 0,
            searches: 0,
            drained: 0,
        }
    }

    fn drain(&mut self, sb: &mut StoreBuffer, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        // SB → TSOB: wait-free as long as the TSOB has room. Entering
        // the TSOB re-arms the write-permission prefetch so the line is
        // (re)acquired within the TSOB drain window even if the
        // commit-time prefetch was evicted meanwhile.
        while self.tsob.len() < self.cap {
            let Some(head) = sb.head() else { break };
            if !head.committed {
                break;
            }
            let e = sb.pop_head();
            ctrl.ensure_write_permission(e.addr.line(), true, now, net);
            self.tsob.push_back((e.addr, e.size, e.value));
        }
        self.tsob_peak = self.tsob_peak.max(self.tsob.len());
        // TSOB → L1D/L2, in order, one coherence-checked write per port.
        for _ in 0..self.store_ports {
            let Some(&(addr, size, value)) = self.tsob.front() else {
                return;
            };
            match ctrl.ssb_store_write(addr, size as usize, value, now, net) {
                StoreWriteOutcome::Done => {
                    self.tsob.pop_front();
                    self.drained += 1;
                }
                StoreWriteOutcome::NotYet => return,
            }
        }
    }

    fn next_work(&self, sb: &StoreBuffer, ctrl: &PrivateCache, now: Cycle) -> Option<Cycle> {
        // SB → TSOB movement is unconditional while there is room.
        if self.tsob.len() < self.cap && sb.head().is_some_and(|h| h.committed) {
            return Some(now);
        }
        let &(addr, _, _) = self.tsob.front()?;
        match ctrl.store_write_class(addr.line()) {
            StoreAttemptClass::WouldComplete | StoreAttemptClass::BlockedWouldRequest => Some(now),
            StoreAttemptClass::BlockedCounting | StoreAttemptClass::BlockedQuiet => None,
        }
    }

    fn charge_idle(&mut self, ctrl: &mut PrivateCache, n: u64) {
        // An idle SSB cycle is one blocked TSOB-head write attempt (the
        // peak tracker is idempotent while the queue is untouched).
        if let Some(&(addr, _, _)) = self.tsob.front() {
            if ctrl.store_write_class(addr.line()) == StoreAttemptClass::BlockedCounting {
                ctrl.charge_blocked_store_cycles(n);
            }
        }
    }

    fn forward_load(&mut self, addr: Addr, size: usize) -> Option<(u64, u64)> {
        self.searches += 1;
        for &(a, s, v) in self.tsob.iter().rev() {
            let (a0, a1) = (a.raw(), a.raw() + s as u64);
            let (b0, b1) = (addr.raw(), addr.raw() + size as u64);
            if a0 <= b0 && b1 <= a1 {
                let shift = (b0 - a0) * 8;
                let mask = if size >= 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
                return Some(((v >> shift) & mask, self.l1_lat));
            }
            if a0 < b1 && b0 < a1 {
                // Partial overlap: fall through to memory (SSB forwards
                // through the L1D in the original design; partial cases
                // are rare and modeled as misses).
                return None;
            }
        }
        None
    }
}

// ----------------------------------------------------------------------
// Shared coalescing-drain machinery (CSB and TUS)
// ----------------------------------------------------------------------

/// The WCB-side state the two coalescing policies (CSB and TUS) share, so
/// the per-cycle SB→WCB drain loop and the merge-time lex check exist
/// once. The policies differ only in what flushing the oldest group does:
/// CSB writes visible data and stalls without permission, TUS writes
/// temporarily unauthorized data.
trait CoalescingDrain {
    fn wcbs(&self) -> &WcbSet;
    fn wcbs_mut(&mut self) -> &mut WcbSet;
    fn auth(&self) -> &AuthorizationUnit;
    fn tracer_mut(&mut self) -> &mut Tracer;
    /// Counts a cycle in which the SB head could not leave the buffer.
    fn note_head_block(&mut self);
    /// Attempts to flush the oldest WCB group; `true` when it left the
    /// buffers.
    fn flush_oldest(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) -> bool;
}

/// Whether adding `line` to the WCBs would merge groups containing a lex
/// conflict (disallowed: such a group could never be authorized
/// together).
fn lex_conflict_on_merge(p: &impl CoalescingDrain, line: LineAddr) -> bool {
    if p.wcbs().find(line).is_none() {
        return false;
    }
    // Writing to an existing buffer may merge all buffers; check all
    // pairs.
    let cap = p.wcbs().capacity();
    for i in 0..cap {
        let Some(a) = p.wcbs().buf(i).map(|b| b.line) else {
            continue;
        };
        for j in i + 1..cap {
            let Some(b) = p.wcbs().buf(j).map(|b| b.line) else {
                continue;
            };
            if p.auth().lex_conflict(a, b) {
                return true;
            }
        }
    }
    false
}

/// Moves up to [`SB_TO_WCB_PER_CYCLE`] committed stores from the SB into
/// the WCBs, flushing the oldest group when refused — the per-cycle drain
/// loop shared by CSB and TUS.
fn drain_sb_into_wcbs(
    p: &mut impl CoalescingDrain,
    sb: &mut StoreBuffer,
    ctrl: &mut PrivateCache,
    net: &mut Network,
    now: Cycle,
) {
    let mut moved = 0;
    while moved < SB_TO_WCB_PER_CYCLE {
        let Some(head) = sb.head() else { break };
        if !head.committed {
            break;
        }
        if lex_conflict_on_merge(p, head.addr.line()) {
            // Lex conflicts in a group are disallowed; wait for the
            // conflicting store to flush.
            p.flush_oldest(ctrl, net, now);
            p.note_head_block();
            break;
        }
        match p.wcbs_mut().write(head.addr, head.size as usize, head.value, now) {
            Ok(_) => {
                sb.pop_head();
                moved += 1;
            }
            Err(WcbRefusal::NeedFlush) => {
                if !p.flush_oldest(ctrl, net, now) {
                    p.note_head_block();
                    break;
                }
            }
        }
    }
    if moved > 0 {
        p.tracer_mut()
            .emit(now, 0, TraceEvent::SbWcbDrain { stores: moved as u32 });
    }
}

/// When the WCB age-flush branch next runs: `Some(now)` while the
/// threshold is already exceeded, the cycle the oldest buffer will cross
/// it otherwise, `None` with no buffered stores.
fn wcb_age_work(wcbs: &WcbSet, now: Cycle) -> Option<Cycle> {
    if wcbs.is_empty() {
        return None;
    }
    let age = wcbs.oldest_age(now);
    if age > WCB_FLUSH_AGE {
        Some(now)
    } else {
        Some(now + (WCB_FLUSH_AGE - age + 1))
    }
}

// ----------------------------------------------------------------------
// CSB
// ----------------------------------------------------------------------

/// Coalescing Store Buffer: WCB coalescing with atomic groups, but every
/// write to the L1D requires permission — a miss stops the drain.
#[derive(Debug)]
pub struct CsbPolicy {
    wcbs: WcbSet,
    auth: AuthorizationUnit,
    tracer: Tracer,
    prefetch_at_commit: bool,
    l1_lat: u64,
    flushes: u64,
    head_block_cycles: u64,
    /// Reused oldest-group index buffer (bounded by the WCB count).
    idxs_scratch: Vec<usize>,
}

impl CsbPolicy {
    /// Creates the CSB policy.
    pub fn new(cfg: &SimConfig) -> Self {
        CsbPolicy {
            wcbs: WcbSet::new(cfg.tus.wcbs),
            auth: AuthorizationUnit::new(cfg.tus.lex_bits),
            tracer: Tracer::default(),
            prefetch_at_commit: cfg.tus.prefetch_at_commit,
            l1_lat: cfg.mem.l1d.latency,
            flushes: 0,
            head_block_cycles: 0,
            idxs_scratch: Vec::new(),
        }
    }

    fn drain(&mut self, sb: &mut StoreBuffer, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        // Age-triggered flush keeps latency bounded.
        if self.wcbs.oldest_age(now) > WCB_FLUSH_AGE {
            self.try_flush(ctrl, net, now);
        }
        drain_sb_into_wcbs(self, sb, ctrl, net, now);
    }

    fn next_work(&self, sb: &StoreBuffer, now: Cycle) -> Option<Cycle> {
        // A committed SB head always enters the drain loop (and a blocked
        // head counts a stall cycle), so it is work even when the WCB
        // write will be refused.
        if sb.head().is_some_and(|h| h.committed) {
            return Some(now);
        }
        // Otherwise the only self-driven activity is the age flush. A
        // failing CSB flush attempt is side-effect-free only while the
        // permission request is in flight, so conservatively treat the
        // whole over-age window as work (it degrades to lockstep there).
        wcb_age_work(&self.wcbs, now)
    }

    /// Attempts to write the oldest WCB group to the L1D; all lines need
    /// write permission or nothing is written. Returns `true` when a
    /// group was flushed.
    fn try_flush(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) -> bool {
        let mut idxs = std::mem::take(&mut self.idxs_scratch);
        self.wcbs.oldest_group_into(&mut idxs);
        if idxs.is_empty() {
            self.idxs_scratch = idxs;
            return false;
        }
        let mut writable = true;
        for &i in &idxs {
            let b = self.wcbs.buf(i).expect("member");
            if !ctrl.hierarchy_writable(b.line) {
                // Request permission and stall — CSB cannot write without
                // it (this is the design weakness TUS removes).
                ctrl.ensure_write_permission(b.line, false, now, net);
                writable = false;
            }
        }
        if !writable {
            self.idxs_scratch = idxs;
            return false;
        }
        // The group's stores become visible at one logical instant under
        // the tardis backend (no-op under MESI): fusing may have merged a
        // store that is program-order-younger than stores to other group
        // lines, so per-line sequential timestamps would reorder it ahead
        // of them.
        ctrl.tardis_group_store_begin(
            idxs.iter().map(|&i| self.wcbs.buf(i).expect("member").line),
            now,
        );
        for &i in &idxs {
            let b = self.wcbs.buf(i).expect("member");
            let (line, data, mask) = (b.line, *b.data, b.mask);
            let out = ctrl.write_line_visible(line, &data, mask, now, net);
            assert_eq!(out, StoreWriteOutcome::Done, "probed writable line must accept");
        }
        self.wcbs.release(&idxs);
        self.flushes += 1;
        self.idxs_scratch = idxs;
        true
    }
}

impl CoalescingDrain for CsbPolicy {
    fn wcbs(&self) -> &WcbSet {
        &self.wcbs
    }
    fn wcbs_mut(&mut self) -> &mut WcbSet {
        &mut self.wcbs
    }
    fn auth(&self) -> &AuthorizationUnit {
        &self.auth
    }
    fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }
    fn note_head_block(&mut self) {
        // CSB's weakness: a write miss stops the drain.
        self.head_block_cycles += 1;
    }
    fn flush_oldest(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) -> bool {
        self.try_flush(ctrl, net, now)
    }
}

// ----------------------------------------------------------------------
// TUS
// ----------------------------------------------------------------------

/// Temporarily Unauthorized Stores — the paper's mechanism (Fig. 7 flow).
#[derive(Debug)]
pub struct TusPolicy {
    wcbs: WcbSet,
    woq: Woq,
    auth: AuthorizationUnit,
    tracer: Tracer,
    max_group: usize,
    prefetch_at_commit: bool,
    l1_lat: u64,
    flushes: u64,
    flips: u64,
    groups_formed: u64,
    delays: u64,
    relinquishes: u64,
    head_block_cycles: u64,
    // Reused buffers for the per-cycle flush/visibility paths. All are
    // bounded by the WCB or WOQ capacity, so they plateau and the
    // steady-state drain loop never allocates.
    idxs_scratch: Vec<usize>,
    flush_scratch: Vec<WcbBuf>,
    per_set_scratch: Vec<(usize, usize)>,
    lines_scratch: Vec<LineAddr>,
    merged_scratch: Vec<LineAddr>,
    group_scratch: Vec<WoqEntry>,
    coords_scratch: Vec<(usize, usize)>,
}

impl TusPolicy {
    /// Creates the TUS policy.
    pub fn new(cfg: &SimConfig) -> Self {
        TusPolicy {
            wcbs: WcbSet::new(cfg.tus.wcbs),
            woq: Woq::new(cfg.tus.woq_entries),
            auth: AuthorizationUnit::new(cfg.tus.lex_bits),
            tracer: Tracer::default(),
            max_group: cfg.tus.max_atomic_group,
            prefetch_at_commit: cfg.tus.prefetch_at_commit,
            l1_lat: cfg.mem.l1d.latency,
            flushes: 0,
            flips: 0,
            groups_formed: 0,
            delays: 0,
            relinquishes: 0,
            head_block_cycles: 0,
            idxs_scratch: Vec::new(),
            flush_scratch: Vec::new(),
            per_set_scratch: Vec::new(),
            lines_scratch: Vec::new(),
            merged_scratch: Vec::new(),
            group_scratch: Vec::new(),
            coords_scratch: Vec::new(),
        }
    }

    /// Read-only view of the WOQ (tests, introspection).
    pub fn woq(&self) -> &Woq {
        &self.woq
    }

    /// Read-only view of the WCBs.
    pub fn wcbs(&self) -> &WcbSet {
        &self.wcbs
    }

    fn drain(&mut self, sb: &mut StoreBuffer, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        self.woq.trace_set_now(now);
        self.advance_visibility(ctrl, net, now);
        self.rerequest(ctrl, net, now);
        if self.wcbs.oldest_age(now) > WCB_FLUSH_AGE {
            self.try_flush(ctrl, net, now);
        }
        drain_sb_into_wcbs(self, sb, ctrl, net, now);
    }

    fn next_work(&self, sb: &StoreBuffer, ctrl: &PrivateCache, now: Cycle) -> Option<Cycle> {
        // A fully-ready head group flips visible this cycle.
        if self.woq.head_group_ready() {
            return Some(now);
        }
        // A lex-order re-request that can actually go out sends a GetM.
        if self.rerequest_would_send(ctrl) {
            return Some(now);
        }
        if sb.head().is_some_and(|h| h.committed) {
            return Some(now);
        }
        // The age-flush branch must run in lockstep even when the flush
        // will fail: the TUS feasibility probe searches the WOQ
        // ([`Woq::find`] counts every search), so a failing attempt still
        // moves a counter.
        wcb_age_work(&self.wcbs, now)
    }

    /// Whether [`TusPolicy::rerequest`] would issue a permission request
    /// this cycle (the request only goes out when the lex order allows
    /// it, none is in flight, and an MSHR is free).
    fn rerequest_would_send(&self, ctrl: &PrivateCache) -> bool {
        if self.woq.retry_count() == 0 {
            return false;
        }
        self.woq.retry_iter().any(|idx| {
            self.auth.may_rerequest(&self.woq, idx)
                && !ctrl.request_in_flight(self.woq.entry(idx).line)
                && ctrl.mshrs_free() > 0
        })
    }

    /// Makes every fully-ready atomic group at the head of the WOQ
    /// visible (bulk *not visible* reset).
    fn advance_visibility(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        let mut entries = std::mem::take(&mut self.group_scratch);
        let mut coords = std::mem::take(&mut self.coords_scratch);
        loop {
            entries.clear();
            if !self.pop_next_visible_group(&mut entries) {
                break;
            }
            coords.clear();
            coords.extend(entries.iter().map(|e| (e.set, e.way)));
            ctrl.make_visible(&coords, now, net);
            self.flips += 1;
        }
        self.group_scratch = entries;
        self.coords_scratch = coords;
    }

    /// The next atomic group to flip visible: the head group, once every
    /// member is ready — WOQ order is what preserves TSO. Fills `out` and
    /// returns `true` when a group was popped.
    #[cfg(not(feature = "bug-woq-reorder"))]
    fn pop_next_visible_group(&mut self, out: &mut Vec<WoqEntry>) -> bool {
        if self.woq.head_group_ready() {
            self.woq.pop_head_group_into(out);
            true
        } else {
            false
        }
    }

    /// Fault injection (`bug-woq-reorder`): drain *any* fully-ready
    /// group, youngest first, ignoring queue order. Deliberately breaks
    /// store ordering so the differential fuzzer has a real bug to
    /// catch; never enabled in normal builds.
    #[cfg(feature = "bug-woq-reorder")]
    fn pop_next_visible_group(&mut self, out: &mut Vec<WoqEntry>) -> bool {
        let Some(g) = self.woq.youngest_ready_group() else {
            return false;
        };
        out.extend(self.woq.pop_group(g));
        true
    }

    /// Re-requests permission for relinquished entries allowed by the lex
    /// rule.
    fn rerequest(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        if self.woq.retry_count() == 0 {
            return;
        }
        // Index loop rather than an iterator: the WOQ itself is untouched
        // inside the body, but borrowing it for iteration would conflict
        // with the tracer emit on `self`.
        for idx in 0..self.woq.len() {
            if !self.woq.entry(idx).retry {
                continue;
            }
            if self.auth.may_rerequest(&self.woq, idx) {
                let line = self.woq.entry(idx).line;
                ctrl.request_permission(line, now, net);
                self.tracer
                    .emit(now, 0, TraceEvent::LexRetry { line: line.raw() });
            }
        }
    }

    /// The Figure 7 flow: writes the oldest WCB group into the L1D as
    /// temporarily unauthorized data. All-or-nothing per atomic group.
    fn try_flush(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) -> bool {
        self.wcbs.oldest_group_into(&mut self.idxs_scratch);
        if self.idxs_scratch.is_empty() {
            return false;
        }
        // ---------------- feasibility checks ----------------
        let mut new_entries = 0usize;
        let mut getm_needed = 0usize;
        self.per_set_scratch.clear();
        let mut merge_at: Option<usize> = None;
        self.lines_scratch.clear();
        for &i in &self.idxs_scratch {
            let b = self.wcbs.buf(i).expect("member");
            self.lines_scratch.push(b.line);
            match ctrl.probe(b.line) {
                ProbeResult::Busy => return false,
                ProbeResult::Miss { ways_free } => {
                    new_entries += 1;
                    getm_needed += 1;
                    let set = ctrl.l1d_set_of(b.line);
                    match self.per_set_scratch.iter_mut().find(|(s, _)| *s == set) {
                        Some((_, d)) => *d += 1,
                        None => self.per_set_scratch.push((set, 1)),
                    }
                    let demand = self
                        .per_set_scratch
                        .iter()
                        .find(|(s, _)| *s == set)
                        .map(|(_, d)| *d)
                        .unwrap_or(0);
                    if demand > ways_free {
                        return false; // associativity restriction
                    }
                }
                ProbeResult::HitVisible { writable } => {
                    new_entries += 1;
                    if !writable {
                        getm_needed += 1;
                    }
                }
                ProbeResult::HitUnauth { set, way, .. } => {
                    // A store cycle: the line already has a WOQ entry.
                    let Some(e) = self.woq.find(set, way) else {
                        return false;
                    };
                    if self.woq.merge_blocked(e) {
                        // CanCycle cleared while a conflict resolves: the
                        // store at the head of the SB may not complete.
                        return false;
                    }
                    merge_at = Some(merge_at.map_or(e, |m| m.min(e)));
                }
            }
        }
        if self.woq.free() < new_entries {
            return false;
        }
        if ctrl.mshrs_free() < getm_needed {
            return false;
        }
        // Atomic-group size and lex restrictions for the merged result.
        if let Some(m) = merge_at {
            if self.woq.merged_size(m) + new_entries > self.max_group {
                return false;
            }
            self.merged_scratch.clear();
            self.woq.merged_lines_into(m, &mut self.merged_scratch);
            self.merged_scratch.extend(self.lines_scratch.iter().copied());
            self.merged_scratch.sort_by_key(|l| l.raw());
            self.merged_scratch.dedup();
            for (i, &a) in self.merged_scratch.iter().enumerate() {
                for &b in self.merged_scratch.iter().skip(i + 1) {
                    if self.auth.lex_conflict(a, b) {
                        return false;
                    }
                }
            }
        }
        // ---------------- execution ----------------
        let mut bufs = std::mem::take(&mut self.flush_scratch);
        self.wcbs.take_into(&self.idxs_scratch, &mut bufs);
        let mut group = None;
        for b in &bufs {
            match ctrl.probe(b.line) {
                ProbeResult::Miss { .. } => {
                    let (set, way) = ctrl
                        .unauthorized_alloc(b.line, &b.data, b.mask, now, net)
                        .expect("feasibility checked");
                    match group {
                        None => {
                            group = Some(self.woq.push(b.line, set, way, b.mask));
                            self.groups_formed += 1;
                        }
                        Some(g) => self.woq.push_into_group(b.line, set, way, b.mask, g),
                    }
                    // The allocation may have completed ready (the L2 held
                    // write permission for the hierarchy).
                    if ctrl
                        .line_state(b.line)
                        .is_some_and(|(st, unauth, _)| unauth && st.can_write())
                    {
                        self.woq.mark_ready(set, way);
                    }
                }
                ProbeResult::HitVisible { writable } => {
                    let (set, way) = ctrl
                        .unauth_write_on_visible_hit(b.line, &b.data, b.mask, now, net)
                        .expect("feasibility checked");
                    match group {
                        None => {
                            group = Some(self.woq.push(b.line, set, way, b.mask));
                            self.groups_formed += 1;
                        }
                        Some(g) => self.woq.push_into_group(b.line, set, way, b.mask, g),
                    }
                    if writable {
                        self.woq.mark_ready(set, way);
                    }
                }
                ProbeResult::HitUnauth { set, way, .. } => {
                    ctrl.unauthorized_coalesce(set, way, &b.data, b.mask);
                    let e = self.woq.find(set, way).expect("unauth line tracked");
                    let still_ready = ctrl
                        .line_state(b.line)
                        .is_some_and(|(st, unauth, _)| unauth && st.can_write());
                    self.woq.coalesce(e, b.mask, still_ready);
                }
                ProbeResult::Busy => unreachable!("feasibility checked"),
            }
        }
        for b in bufs.drain(..) {
            self.wcbs.recycle(b);
        }
        self.flush_scratch = bufs;
        if let Some(m) = merge_at {
            self.woq.merge_to_tail(m);
        }
        self.flushes += 1;
        // Some writes may be immediately ready (write permission already
        // held via prefetch-at-commit): try to advance.
        self.advance_visibility(ctrl, net, now);
        true
    }

    fn on_event(&mut self, ev: &CacheEvent, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) {
        self.woq.trace_set_now(now);
        match *ev {
            CacheEvent::PermissionReady { set, way, .. } => {
                self.woq.mark_ready(set, way);
                self.advance_visibility(ctrl, net, now);
            }
            CacheEvent::ExternalConflict { set, way, kind, .. } => {
                let Some(idx) = self.woq.find(set, way) else {
                    // The line's atomic group became visible in the same
                    // cycle (a PermissionReady processed just before this
                    // event); the controller already answered the request
                    // in make_visible.
                    return;
                };
                self.woq.forbid_cycle(idx);
                match self.auth.decide(&self.woq, idx) {
                    ConflictDecision::Delay => {
                        let line = self.woq.entry(idx).line;
                        ctrl.delay_external(line);
                        self.delays += 1;
                    }
                    ConflictDecision::Relinquish => {
                        ctrl.relinquish(set, way, now, net);
                        self.woq.mark_relinquished(set, way);
                        self.relinquishes += 1;
                    }
                }
                let _ = kind;
            }
            CacheEvent::LoadDone { .. } | CacheEvent::Invalidated { .. } => {}
        }
    }
}

impl CoalescingDrain for TusPolicy {
    fn wcbs(&self) -> &WcbSet {
        &self.wcbs
    }
    fn wcbs_mut(&mut self) -> &mut WcbSet {
        &mut self.wcbs
    }
    fn auth(&self) -> &AuthorizationUnit {
        &self.auth
    }
    fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }
    fn note_head_block(&mut self) {
        self.head_block_cycles += 1;
    }
    fn flush_oldest(&mut self, ctrl: &mut PrivateCache, net: &mut Network, now: Cycle) -> bool {
        self.try_flush(ctrl, net, now)
    }
}
