//! `tus-harness client` — talk to a running `tus-serve` daemon.
//!
//! A thin synchronous client for the frame protocol of
//! [`crate::protocol`]: builds one request, streams `Progress` frames to
//! stderr as they arrive, prints the terminal reply body to stdout, and
//! maps the outcome onto process exit codes:
//!
//! * `0` — success reply (for `fuzz`, additionally: zero violations),
//! * `1` — the daemon answered with a structured error reply (or a fuzz
//!   sweep found violations — mirroring the `fuzz` subcommand),
//! * `2` — usage error, connect failure, or a broken connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::protocol::{decode_error, read_frame, write_frame, Frame, FrameKind, ReadOutcome};

/// Where the daemon lives.
#[derive(Debug, Clone)]
pub enum Target {
    /// `--connect HOST:PORT`.
    Tcp(String),
    /// `--socket PATH`.
    Unix(PathBuf),
}

/// Parsed `client` subcommand invocation.
#[derive(Debug)]
pub struct ClientOptions {
    /// Daemon address.
    pub target: Target,
    /// Keep retrying the connect for this long (daemon still starting).
    pub wait: Option<Duration>,
    /// The request frame to send.
    pub request: (FrameKind, String),
    /// Expected number of violations is zero: `fuzz` exits 1 when the
    /// reply reports any.
    pub is_fuzz: bool,
    /// Write the terminal reply body here instead of stdout (`--out`,
    /// chiefly for `trace` JSON).
    pub out: Option<PathBuf>,
}

fn client_usage() -> ! {
    eprintln!(
        "usage: tus-harness client (--connect HOST:PORT | --socket PATH) [--wait SECS] <action>\n\
         actions:\n\
         \x20 ping [MESSAGE]\n\
         \x20 point WORKLOAD --policy base|SSB|CSB|SPB|TUS [--sb N] [--quick|--normal|--full]\n\
         \x20       [--seed N] [--kernel K] [--coherence mesi|tardis] [--budget CYCLES]\n\
         \x20       [--wall-ms MS]\n\
         \x20 experiment NAME [--quick|--normal|--full] [--seed N] [--kernel K]\n\
         \x20       [--coherence C] [--parallel-cap N]\n\
         \x20 fuzz [--programs N] [--seeds N] [--seed N] [--policy P] [--kernel K] [--coherence C]\n\
         \x20 check [--litmus all|NAME[,NAME]] [--corpus DIR] [--programs N] [--seed N]\n\
         \x20       [--max-threads N] [--max-ops N] [--max-states N] [--seeds N]\n\
         \x20       [--no-reduction] [--no-lazy] [--policy P] [--kernel K] [--coherence C]\n\
         \x20 trace WORKLOAD [--policy P] [--sb N] [--insts N] [--seed N] [--kernel K]\n\
         \x20       [--coherence C] [--budget CYCLES] [--out FILE]\n\
         \x20 counters\n\
         \x20 shutdown\n\
         exit codes: 0 success, 1 structured error reply (or fuzz violations), 2 usage/IO"
    );
    std::process::exit(2);
}

/// Collects `key=value\n` header lines from flag/value pairs.
struct Headers(String);

impl Headers {
    fn new() -> Self {
        Headers(String::new())
    }
    fn push(&mut self, key: &str, value: &str) {
        self.0.push_str(key);
        self.0.push('=');
        self.0.push_str(value);
        self.0.push('\n');
    }
}

/// Parses the arguments following the `client` keyword.
pub fn parse_client_args(args: &[String]) -> ClientOptions {
    let mut target: Option<Target> = None;
    let mut wait = None;
    let mut out = None;
    let mut it = args.iter().peekable();

    // Connection flags come first, then the action and its flags.
    while let Some(a) = it.peek() {
        match a.as_str() {
            "--connect" => {
                it.next();
                target = Some(Target::Tcp(it.next().unwrap_or_else(|| client_usage()).clone()));
            }
            "--socket" => {
                it.next();
                target = Some(Target::Unix(it.next().unwrap_or_else(|| client_usage()).into()));
            }
            "--wait" => {
                it.next();
                let secs: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| client_usage());
                wait = Some(Duration::from_secs_f64(secs));
            }
            _ => break,
        }
    }
    let Some(target) = target else { client_usage() };
    let Some(action) = it.next() else { client_usage() };

    // Shared flag plumbing: most actions accept the same spec knobs.
    let mut h = Headers::new();
    let mut positional: Option<&String> = None;
    let mut is_fuzz = false;
    let kind = match action.as_str() {
        "ping" => {
            if let Some(msg) = it.next() {
                h.0.push_str(msg);
            }
            FrameKind::Ping
        }
        "point" | "trace" | "experiment" | "fuzz" | "check" => {
            while let Some(a) = it.next() {
                let mut val = |name: &str| -> String {
                    it.next().cloned().unwrap_or_else(|| {
                        eprintln!("client: {name} needs a value");
                        client_usage()
                    })
                };
                match a.as_str() {
                    "--policy" => h.push("policy", &val("--policy")),
                    "--sb" => h.push("sb", &val("--sb")),
                    "--seed" => h.push("seed", &val("--seed")),
                    "--kernel" => h.push("kernel", &val("--kernel")),
                    "--coherence" => h.push("coherence", &val("--coherence")),
                    "--budget" => h.push("budget", &val("--budget")),
                    "--wall-ms" => h.push("wall_ms", &val("--wall-ms")),
                    "--insts" => h.push("insts", &val("--insts")),
                    "--programs" => h.push("programs", &val("--programs")),
                    "--seeds" => h.push("seeds", &val("--seeds")),
                    "--parallel-cap" => h.push("parallel_cap", &val("--parallel-cap")),
                    "--litmus" => h.push("litmus", &val("--litmus")),
                    "--corpus" => h.push("corpus", &val("--corpus")),
                    "--max-threads" => h.push("max_threads", &val("--max-threads")),
                    "--max-ops" => h.push("max_ops", &val("--max-ops")),
                    "--max-states" => h.push("max_states", &val("--max-states")),
                    "--no-reduction" => h.push("reduction", "0"),
                    "--no-lazy" => h.push("lazy", "0"),
                    "--quick" => h.push("scale", "quick"),
                    "--normal" => h.push("scale", "normal"),
                    "--full" => h.push("scale", "full"),
                    "--out" => out = Some(PathBuf::from(val("--out"))),
                    w if !w.starts_with('-') && positional.is_none() => positional = Some(a),
                    _ => client_usage(),
                }
            }
            match action.as_str() {
                "point" => {
                    h.push("workload", positional.unwrap_or_else(|| client_usage()));
                    FrameKind::RunPoint
                }
                "trace" => {
                    h.push("workload", positional.unwrap_or_else(|| client_usage()));
                    FrameKind::TraceCapture
                }
                "experiment" => {
                    h.push("name", positional.unwrap_or_else(|| client_usage()));
                    FrameKind::Experiment
                }
                "fuzz" => {
                    is_fuzz = true;
                    FrameKind::FuzzSweep
                }
                _ => {
                    // `check` replies also carry a `violations=` header;
                    // a violating sweep exits 1 exactly like `fuzz`.
                    is_fuzz = true;
                    FrameKind::Check
                }
            }
        }
        "counters" => FrameKind::Counters,
        "shutdown" => FrameKind::Shutdown,
        _ => client_usage(),
    };
    if it.next().is_some() {
        client_usage();
    }
    ClientOptions {
        target,
        wait,
        request: (kind, h.0),
        is_fuzz,
        out,
    }
}

/// A connected stream of either flavor.
trait Stream: Read + Write {}
impl<T: Read + Write> Stream for T {}

/// Connects, retrying until the `--wait` deadline (covers the window
/// where CI has just forked the daemon and it hasn't bound yet).
fn connect(target: &Target, wait: Option<Duration>) -> std::io::Result<Box<dyn Stream>> {
    let deadline = wait.map(|w| Instant::now() + w);
    loop {
        let attempt: std::io::Result<Box<dyn Stream>> = match target {
            Target::Tcp(addr) => TcpStream::connect(addr).map(|s| Box::new(s) as _),
            Target::Unix(path) => UnixStream::connect(path).map(|s| Box::new(s) as _),
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) => match deadline {
                Some(d) if Instant::now() < d => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                _ => return Err(e),
            },
        }
    }
}

/// Sends the request and pumps replies until a terminal frame; returns
/// the process exit code.
pub fn run_client(opt: &ClientOptions) -> i32 {
    let mut stream = match connect(&opt.target, opt.wait) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("client: cannot connect: {e}");
            return 2;
        }
    };
    let (kind, body) = &opt.request;
    if let Err(e) = write_frame(&mut stream, *kind, body) {
        eprintln!("client: cannot send request: {e}");
        return 2;
    }
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Eof) => {
                eprintln!("client: connection closed before a terminal reply");
                return 2;
            }
            Ok(ReadOutcome::Malformed(what)) => {
                eprintln!("client: malformed reply: {what}");
                return 2;
            }
            Err(e) => {
                eprintln!("client: read error: {e}");
                return 2;
            }
        };
        match frame.kind {
            FrameKind::Progress => {
                eprint!("[{}]", frame.body.trim_end());
                eprintln!();
            }
            FrameKind::Error => {
                let (token, message) = decode_error(&frame.body);
                eprintln!("client: server error ({token}):");
                eprintln!("{message}");
                return 1;
            }
            k if k.is_terminal_reply() => return finish(opt, &frame),
            k => {
                eprintln!("client: unexpected {k:?} frame");
                return 2;
            }
        }
    }
}

/// Handles the terminal success reply.
fn finish(opt: &ClientOptions, frame: &Frame) -> i32 {
    if let Some(path) = &opt.out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("client: cannot create {}: {e}", dir.display());
                    return 2;
                }
            }
        }
        if let Err(e) = std::fs::write(path, &frame.body) {
            eprintln!("client: cannot write {}: {e}", path.display());
            return 2;
        }
        eprintln!("client: wrote {} bytes to {}", frame.body.len(), path.display());
    } else {
        print!("{}", frame.body);
        if !frame.body.ends_with('\n') && !frame.body.is_empty() {
            println!();
        }
    }
    if opt.is_fuzz {
        // Mirror the local `fuzz` subcommand: violations mean exit 1.
        let violations = frame
            .body
            .lines()
            .find_map(|l| l.strip_prefix("violations="))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        if violations > 0 {
            return 1;
        }
    }
    0
}

/// Entry point for `tus-harness client ...`.
pub fn main_client(args: &[String]) -> ! {
    let opt = parse_client_args(args);
    std::process::exit(run_client(&opt));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_point_request() {
        let o = parse_client_args(&strings(&[
            "--connect", "127.0.0.1:9", "--wait", "2", "point", "502.gcc1-like", "--policy",
            "tus", "--sb", "32", "--quick", "--seed", "7", "--budget", "1000", "--coherence",
            "tardis",
        ]));
        assert!(matches!(o.target, Target::Tcp(ref a) if a == "127.0.0.1:9"));
        assert_eq!(o.wait, Some(Duration::from_secs(2)));
        assert_eq!(o.request.0, FrameKind::RunPoint);
        let body = &o.request.1;
        for line in [
            "policy=tus", "sb=32", "scale=quick", "seed=7", "budget=1000",
            "coherence=tardis", "workload=502.gcc1-like",
        ] {
            assert!(body.contains(&format!("{line}\n")), "missing {line} in {body:?}");
        }
        assert!(!o.is_fuzz);
    }

    #[test]
    fn parse_experiment_and_fuzz_and_plain_actions() {
        let o = parse_client_args(&strings(&[
            "--socket", "/tmp/t.sock", "experiment", "fig10", "--quick",
        ]));
        assert!(matches!(o.target, Target::Unix(_)));
        assert_eq!(o.request.0, FrameKind::Experiment);
        assert!(o.request.1.contains("name=fig10\n"));

        let o = parse_client_args(&strings(&[
            "--connect", "h:1", "fuzz", "--programs", "5", "--seeds", "2",
        ]));
        assert_eq!(o.request.0, FrameKind::FuzzSweep);
        assert!(o.is_fuzz);

        let o = parse_client_args(&strings(&[
            "--connect", "h:1", "check", "--litmus", "SB,MP", "--corpus", "results/fuzz-corpus",
            "--max-threads", "4", "--max-ops", "10", "--max-states", "5000", "--no-reduction",
            "--no-lazy", "--programs", "3",
        ]));
        assert_eq!(o.request.0, FrameKind::Check);
        assert!(o.is_fuzz, "check exits 1 on violations like fuzz");
        for line in [
            "litmus=SB,MP", "corpus=results/fuzz-corpus", "max_threads=4", "max_ops=10",
            "max_states=5000", "reduction=0", "lazy=0", "programs=3",
        ] {
            assert!(
                o.request.1.contains(&format!("{line}\n")),
                "missing {line} in {:?}",
                o.request.1
            );
        }

        let o = parse_client_args(&strings(&["--connect", "h:1", "ping", "hello"]));
        assert_eq!(o.request, (FrameKind::Ping, "hello".to_owned()));

        let o = parse_client_args(&strings(&["--connect", "h:1", "shutdown"]));
        assert_eq!(o.request.0, FrameKind::Shutdown);
        let o = parse_client_args(&strings(&["--connect", "h:1", "counters"]));
        assert_eq!(o.request.0, FrameKind::Counters);
    }

    #[test]
    fn fuzz_reply_violation_count_drives_exit_code() {
        let opt = parse_client_args(&strings(&["--connect", "h:1", "fuzz"]));
        let clean = Frame {
            kind: FrameKind::FuzzDone,
            body: "programs=5\nviolations=0\n".into(),
        };
        assert_eq!(finish(&opt, &clean), 0);
        let dirty = Frame {
            kind: FrameKind::FuzzDone,
            body: "programs=5\nviolations=2\n".into(),
        };
        assert_eq!(finish(&opt, &dirty), 1);
    }
}
