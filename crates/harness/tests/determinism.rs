//! Parallel execution must be output-neutral: `run_many` with a worker
//! pool produces results bit-identical to a sequential (`jobs = 1`)
//! uncached run, down to the CSV bytes the tables serialize to.

use tus_harness::{Executor, RunSpec, Scale, Table, Tweak};
use tus_sim::PolicyKind;
use tus_workloads::by_name;

/// A mixed spec list: several workloads × policies × SB sizes, a second
/// seed, a 16-core run and an ablation tweak, with duplicates sprinkled
/// in so dedup/memoization is on the path under test.
fn mixed_specs() -> Vec<RunSpec> {
    let short = |mut s: RunSpec| {
        s.warmup = 1_000;
        s.insts = 6_000;
        s
    };
    let w = |name: &str| by_name(name).expect("workload exists");
    let mut specs = Vec::new();
    for (wl, policy, sb) in [
        ("502.gcc1-like", PolicyKind::Baseline, 114),
        ("502.gcc1-like", PolicyKind::Tus, 114),
        ("502.gcc1-like", PolicyKind::Tus, 32),
        ("557.xz-like", PolicyKind::Baseline, 56),
        ("557.xz-like", PolicyKind::Ssb, 56),
        ("510.parest-like", PolicyKind::Spb, 64),
    ] {
        specs.push(short(RunSpec::new(w(wl), policy, sb, Scale::Quick)));
    }
    // Different seed → distinct run.
    specs.push(RunSpec {
        seed: 7,
        ..specs[0].clone()
    });
    // A (shortened) 16-core PARSEC run.
    let mut par = RunSpec::new(w("canneal-like"), PolicyKind::Tus, 114, Scale::Quick);
    par.warmup = 500;
    par.insts = 2_000;
    specs.push(par);
    // An ablation tweak.
    specs.push(RunSpec {
        tweak: Some(Tweak {
            name: "woq16",
            apply: |b| {
                b.woq_entries(16);
            },
        }),
        ..specs[1].clone()
    });
    // Duplicates of earlier entries.
    specs.push(specs[0].clone());
    specs.push(specs[3].clone());
    specs
}

fn to_csv(results: &[tus_harness::RunResult]) -> String {
    let mut t = Table::new(
        "determinism",
        vec!["ipc".into(), "sb_stall".into(), "edp".into()],
    );
    for (i, r) in results.iter().enumerate() {
        t.push(format!("run{i}"), vec![r.ipc, r.sb_stall_frac, r.edp]);
    }
    t.to_csv()
}

#[test]
fn jobs8_matches_jobs1_bit_exactly() {
    let specs = mixed_specs();
    let seq = Executor::new(1, None).run_many(&specs);
    let par = Executor::new(8, None).run_many(&specs);

    assert_eq!(seq.len(), specs.len());
    assert_eq!(par.len(), specs.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        let key = specs[i].memo_key();
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "cycles differ: {key}");
        assert_eq!(a.committed.to_bits(), b.committed.to_bits(), "committed differ: {key}");
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "ipc differs: {key}");
        assert_eq!(
            a.sb_stall_frac.to_bits(),
            b.sb_stall_frac.to_bits(),
            "sb_stall_frac differs: {key}"
        );
        assert_eq!(a.edp.to_bits(), b.edp.to_bits(), "edp differs: {key}");
        assert_eq!(
            a.energy.total_pj.to_bits(),
            b.energy.total_pj.to_bits(),
            "energy differs: {key}"
        );
    }
    // The rendered CSV bytes must match too.
    assert_eq!(to_csv(&seq), to_csv(&par));
}

#[test]
fn duplicate_specs_share_one_result() {
    let specs = mixed_specs();
    let ex = Executor::new(4, None);
    let results = ex.run_many(&specs);
    // The trailing duplicates are bit-identical to their originals…
    let n = specs.len();
    assert_eq!(results[n - 2].ipc.to_bits(), results[0].ipc.to_bits());
    assert_eq!(results[n - 1].ipc.to_bits(), results[3].ipc.to_bits());
    // …and were not re-executed.
    let c = ex.counters();
    assert_eq!(c.executed, n as u64 - 2);
    assert_eq!(c.memo_hits, 2);
}
