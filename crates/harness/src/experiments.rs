//! One function per table/figure of the paper's evaluation.
//!
//! Every function prints the regenerated table(s) and writes CSVs under
//! the output directory. The paper's absolute numbers came from gem5 +
//! SPEC/PARSEC reference runs; here the *shape* is the target (see
//! `EXPERIMENTS.md` for the paper-vs-measured record).

use std::path::Path;

use tus_energy::{sb_area, sb_search_energy, woq_area, woq_search_energy};
use tus_sim::stats::geomean;
use tus_sim::{PolicyKind, SimConfig};
use tus_workloads::{all_single, parsec16, sb_bound_single, Workload};

use crate::runner::{run, RunResult, RunSpec, Scale};
use crate::table::Table;

/// Shared experiment options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Run-length scaling.
    pub scale: Scale,
    /// Base seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out: std::path::PathBuf,
    /// Restrict parallel suites to this many workloads (they are 16-core
    /// and expensive); `None` = all.
    pub parallel_cap: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Normal,
            seed: 42,
            out: "results".into(),
            parallel_cap: None,
        }
    }
}

fn spec(w: &Workload, policy: PolicyKind, sb: usize, opt: &Options) -> RunSpec {
    RunSpec {
        seed: opt.seed,
        ..RunSpec::new(w.clone(), policy, sb, opt.scale)
    }
}

fn run_one(w: &Workload, policy: PolicyKind, sb: usize, opt: &Options) -> RunResult {
    run(&spec(w, policy, sb, opt))
}

fn parsec_suite(opt: &Options) -> Vec<Workload> {
    let mut v = parsec16();
    if let Some(cap) = opt.parallel_cap {
        v.truncate(cap);
    }
    v
}

fn emit(t: &Table, opt: &Options, file: &str) {
    println!("{}", t.render());
    if let Err(e) = t.write_csv(Path::new(&opt.out), file) {
        eprintln!("warning: could not write {file}.csv: {e}");
    }
}

/// Table I: configuration parameters.
pub fn table1(_opt: &Options) {
    println!("{}", SimConfig::default().render_table1());
}

/// Figure 8: speedup (geomean over each suite) vs SB size for every
/// policy, normalized to the 114-entry-SB baseline of that suite.
pub fn fig08(opt: &Options) {
    let sizes = [32usize, 56, 64, 114];
    for (suite_name, workloads) in [
        ("spec-tf-sb-bound", sb_bound_single()),
        ("parsec", parsec_suite(opt)),
    ] {
        let mut t = Table::new(
            format!("Fig. 8 ({suite_name}): geomean speedup vs 114-entry-SB baseline"),
            PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
        );
        let refs: Vec<f64> = workloads
            .iter()
            .map(|w| run_one(w, PolicyKind::Baseline, 114, opt).ipc)
            .collect();
        for sb in sizes {
            let mut row = Vec::new();
            for policy in PolicyKind::ALL {
                let speedups = workloads.iter().zip(&refs).map(|(w, &r)| {
                    let ipc = if policy == PolicyKind::Baseline && sb == 114 {
                        r
                    } else {
                        run_one(w, policy, sb, opt).ipc
                    };
                    ipc / r
                });
                row.push(geomean(speedups));
            }
            t.push(format!("SB={sb}"), row);
        }
        emit(&t, opt, &format!("fig08_{suite_name}"));
    }
}

/// Figure 9: SB-induced dispatch stalls (% of cycles) per SB-bound
/// workload and policy, 114-entry SB. Lower is better.
pub fn fig09(opt: &Options) {
    let mut t = Table::new(
        "Fig. 9: SB-induced stalls (% of cycles), 114-entry SB",
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for w in sb_bound_single() {
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| run_one(&w, p, 114, opt).sb_stall_frac * 100.0)
            .collect();
        rows.push((w.name.to_owned(), vals));
    }
    // The paper sorts by baseline stalls, descending.
    rows.sort_by(|a, b| b.1[0].total_cmp(&a.1[0]));
    let means: Vec<f64> = (0..PolicyKind::ALL.len())
        .map(|c| rows.iter().map(|(_, v)| v[c]).sum::<f64>() / rows.len() as f64)
        .collect();
    for (name, vals) in rows {
        t.push(name, vals);
    }
    t.push("mean", means);
    emit(&t, opt, "fig09");
}

/// Figure 10: speedup S-curve over all applications (left) and the
/// per-benchmark SB-bound breakdown (right), normalized to the
/// 114-entry-SB baseline.
pub fn fig10(opt: &Options) {
    speedup_figure(opt, 114, "Fig. 10", "fig10");
}

/// Figure 11: EDP normalized to the 114-entry-SB baseline, single-thread
/// SB-bound workloads. Lower is better.
pub fn fig11(opt: &Options) {
    edp_figure(opt, 114, "Fig. 11", "fig11", sb_bound_single());
}

/// Figure 12: PARSEC (16 cores) speedup and EDP vs the 114-entry-SB
/// baseline.
pub fn fig12(opt: &Options) {
    parallel_figure(opt, 114, "Fig. 12", "fig12");
}

/// Figure 13: S-curve + breakdown vs the **32-entry-SB** baseline.
pub fn fig13(opt: &Options) {
    speedup_figure(opt, 32, "Fig. 13", "fig13");
}

/// Figure 14: PARSEC speedup and EDP vs the 32-entry-SB baseline.
pub fn fig14(opt: &Options) {
    parallel_figure(opt, 32, "Fig. 14", "fig14");
}

/// Figure 15: EDP vs the 32-entry-SB baseline, single-thread SB-bound.
pub fn fig15(opt: &Options) {
    edp_figure(opt, 32, "Fig. 15", "fig15", sb_bound_single());
}

fn speedup_figure(opt: &Options, sb: usize, title: &str, file: &str) {
    // Right panel: per-benchmark speedups for SB-bound workloads.
    let mut right = Table::new(
        format!("{title} (right): speedup vs {sb}-entry-SB baseline, SB-bound"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in sb_bound_single() {
        let base = run_one(&w, PolicyKind::Baseline, sb, opt).ipc;
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                if p == PolicyKind::Baseline {
                    1.0
                } else {
                    run_one(&w, p, sb, opt).ipc / base
                }
            })
            .collect();
        right.push(w.name.to_owned(), vals);
    }
    let mean = right.geomean_row();
    right.push("geomean", mean);
    emit(&right, opt, &format!("{file}_breakdown"));

    // Left panel: the S-curve of TUS speedups over *all* applications.
    let mut curve: Vec<(String, f64)> = all_single()
        .iter()
        .map(|w| {
            let base = run_one(w, PolicyKind::Baseline, sb, opt).ipc;
            let tus = run_one(w, PolicyKind::Tus, sb, opt).ipc;
            (w.name.to_owned(), tus / base)
        })
        .collect();
    curve.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut left = Table::new(
        format!("{title} (left): TUS speedup S-curve over all applications vs {sb}-entry SB"),
        vec!["speedup".to_owned()],
    );
    for (name, s) in &curve {
        left.push(name.clone(), vec![*s]);
    }
    left.push("geomean(All)".to_owned(), vec![geomean(curve.iter().map(|c| c.1))]);
    emit(&left, opt, &format!("{file}_scurve"));
}

fn edp_figure(opt: &Options, sb: usize, title: &str, file: &str, workloads: Vec<Workload>) {
    let mut t = Table::new(
        format!("{title}: EDP normalized to {sb}-entry-SB baseline (lower is better)"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in workloads {
        let base = run_one(&w, PolicyKind::Baseline, sb, opt).edp;
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                if p == PolicyKind::Baseline {
                    1.0
                } else {
                    run_one(&w, p, sb, opt).edp / base
                }
            })
            .collect();
        t.push(w.name.to_owned(), vals);
    }
    let mean = t.geomean_row();
    t.push("geomean", mean);
    emit(&t, opt, file);
}

fn parallel_figure(opt: &Options, sb: usize, title: &str, file: &str) {
    let workloads = parsec_suite(opt);
    let mut speed = Table::new(
        format!("{title} (left): PARSEC speedup vs {sb}-entry-SB baseline, 16 cores"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    let mut edp = Table::new(
        format!("{title} (right): PARSEC EDP vs {sb}-entry-SB baseline (lower is better)"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in &workloads {
        let base = run_one(w, PolicyKind::Baseline, sb, opt);
        let mut srow = Vec::new();
        let mut erow = Vec::new();
        for policy in PolicyKind::ALL {
            if policy == PolicyKind::Baseline {
                srow.push(1.0);
                erow.push(1.0);
            } else {
                let r = run_one(w, policy, sb, opt);
                srow.push(r.ipc / base.ipc);
                erow.push(r.edp / base.edp);
            }
        }
        speed.push(w.name.to_owned(), srow);
        edp.push(w.name.to_owned(), erow);
    }
    let m = speed.geomean_row();
    speed.push("geomean", m);
    let m = edp.geomean_row();
    edp.push("geomean", m);
    emit(&speed, opt, &format!("{file}_speedup"));
    emit(&edp, opt, &format!("{file}_edp"));
}

/// In-text claims: SB/WOQ area & energy ratios, L1D-write reduction,
/// stall totals, hit rates and memory-boundness.
pub fn intext(opt: &Options) {
    // Structure ratios (analytic model, Section IV / V of the paper).
    let mut t = Table::new(
        "In-text: structure area and search-energy model",
        vec!["area_um2".into(), "energy_pJ".into()],
    );
    for sb in [32usize, 64, 114] {
        t.push(format!("SB-{sb}"), vec![sb_area(sb), sb_search_energy(sb)]);
    }
    t.push("WOQ-64", vec![woq_area(64), woq_search_energy(64)]);
    t.push(
        "ratio SB114/SB32",
        vec![sb_area(114) / sb_area(32), sb_search_energy(114) / sb_search_energy(32)],
    );
    t.push(
        "ratio SB114/WOQ",
        vec![sb_area(114) / woq_area(64), sb_search_energy(114) / woq_search_energy(64)],
    );
    t.push(
        "ratio SB32/WOQ",
        vec![sb_area(32) / woq_area(64), sb_search_energy(32) / woq_search_energy(64)],
    );
    emit(&t, opt, "intext_structures");

    // L1D write reduction, stalls, hit rates, boundness.
    let mut t = Table::new(
        "In-text: per-workload TUS vs baseline (114-entry SB)",
        vec![
            "write_reduction_x".into(),
            "stall_base_pct".into(),
            "stall_tus_pct".into(),
            "l1d_hit_base_pct".into(),
            "l1d_hit_tus_pct".into(),
        ],
    );
    for w in sb_bound_single() {
        let base = run_one(&w, PolicyKind::Baseline, 114, opt);
        let tus = run_one(&w, PolicyKind::Tus, 114, opt);
        let writes = |r: &RunResult| r.stats.get("mem.core0.l1d_writes").max(1.0);
        let hits = |r: &RunResult| {
            let h = r.stats.get("mem.core0.l1d_load_hits");
            let m = r.stats.get("mem.core0.l1d_load_misses");
            100.0 * h / (h + m).max(1.0)
        };
        t.push(
            w.name.to_owned(),
            vec![
                writes(&base) / writes(&tus),
                base.sb_stall_frac * 100.0,
                tus.sb_stall_frac * 100.0,
                hits(&base),
                hits(&tus),
            ],
        );
    }
    let mean = t.geomean_row();
    t.push("geomean", mean);
    emit(&t, opt, "intext_tus_vs_base");
}

/// Design-space ablations of the TUS parameters called out in DESIGN.md:
/// WOQ size, WCB count, atomic-group cap, lex bits, prefetch-at-commit.
pub fn ablation(opt: &Options) {
    let w = tus_workloads::by_name("502.gcc4-like").expect("workload exists");
    let base = run_one(&w, PolicyKind::Baseline, 114, opt).ipc;
    let run_tweak = |tweak: fn(&mut tus_sim::SimConfigBuilder)| {
        let mut s = spec(&w, PolicyKind::Tus, 114, opt);
        s.tweak = Some(tweak);
        run(&s).ipc / base
    };

    let mut t = Table::new(
        "Ablation (502.gcc4-like): TUS speedup vs baseline by design point",
        vec!["speedup".into()],
    );
    t.push(
        "default (WOQ=64, WCB=2, group<=16, lex=16, pf@commit)",
        vec![run_one(&w, PolicyKind::Tus, 114, opt).ipc / base],
    );
    t.push("WOQ=16", vec![run_tweak(|b| {
        b.woq_entries(16);
    })]);
    t.push("WOQ=32", vec![run_tweak(|b| {
        b.woq_entries(32);
    })]);
    t.push("WOQ=128", vec![run_tweak(|b| {
        b.woq_entries(128);
    })]);
    t.push("WCB=1", vec![run_tweak(|b| {
        b.wcbs(1);
    })]);
    t.push("WCB=4", vec![run_tweak(|b| {
        b.wcbs(4);
    })]);
    t.push("group<=4", vec![run_tweak(|b| {
        b.max_atomic_group(4);
    })]);
    t.push("group<=8", vec![run_tweak(|b| {
        b.max_atomic_group(8);
    })]);
    t.push("lex=8", vec![run_tweak(|b| {
        b.lex_bits(8);
    })]);
    t.push("no prefetch-at-commit", vec![run_tweak(|b| {
        b.prefetch_at_commit(false);
    })]);
    t.push("no stream prefetcher", vec![run_tweak(|b| {
        b.stream_prefetcher(false);
    })]);
    t.push("L1D unauth forwarding on", vec![run_tweak(|b| {
        b.l1d_unauth_forwarding(true);
    })]);
    emit(&t, opt, "ablation");
}

/// Runs every experiment in figure order.
pub fn all(opt: &Options) {
    table1(opt);
    fig08(opt);
    fig09(opt);
    fig10(opt);
    fig11(opt);
    fig12(opt);
    fig13(opt);
    fig14(opt);
    fig15(opt);
    intext(opt);
    ablation(opt);
}
