//! Single-core value correctness: whatever the drain policy does with
//! unauthorized lines, coalescing, or write-through queues, a single
//! core's loads must observe exactly the sequential semantics of the
//! program, and the final (coherent) memory must match a software oracle.

use std::collections::HashMap;

use tus::System;
use tus_cpu::{TraceInst, VecTrace};
use tus_sim::{Addr, PolicyKind, SimConfig, SimRng};

/// Generates a random single-core program of loads/stores/ALUs/fences
/// over a small set of 8-byte-aligned slots, plus its expected load
/// values under sequential semantics.
fn random_program(seed: u64, len: usize) -> (Vec<TraceInst>, Vec<u64>, HashMap<u64, u64>) {
    let mut rng = SimRng::seed(seed);
    let slots: Vec<u64> = (0..24).map(|i| 0x9_0000 + i * 8).collect();
    let mut mem: HashMap<u64, u64> = HashMap::new();
    let mut insts = Vec::new();
    let mut expected = Vec::new();
    let mut next_val = 1u64;
    for _ in 0..len {
        let r = rng.range(0, 100);
        if r < 35 {
            let a = slots[rng.index(slots.len())];
            mem.insert(a, next_val);
            insts.push(TraceInst::store(Addr::new(a), 8, next_val));
            next_val += 1;
        } else if r < 70 {
            let a = slots[rng.index(slots.len())];
            expected.push(mem.get(&a).copied().unwrap_or(0));
            insts.push(TraceInst::load(Addr::new(a), 8));
        } else if r < 74 {
            insts.push(TraceInst::fence());
        } else {
            insts.push(TraceInst::alu());
        }
    }
    (insts, expected, mem)
}

fn check_policy(policy: PolicyKind, seed: u64) {
    let (insts, expected, final_mem) = random_program(seed, 600);
    let cfg = SimConfig::builder()
        .policy(policy)
        .sb_entries(12)
        .scale_caches_down(64)
        .build();
    let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(insts))], seed);
    sys.core_mut(0).record_loads(true);
    sys.run_to_completion(5_000_000);
    assert_eq!(
        sys.core(0).loaded_values(),
        &expected[..],
        "{policy} seed {seed}: loads diverged from sequential semantics"
    );
    for (&addr, &val) in &final_mem {
        let got = sys.mem().read_coherent(Addr::new(addr), 8);
        assert_eq!(got, val, "{policy} seed {seed}: final memory at {addr:#x}");
    }
}

#[test]
fn sequential_semantics_baseline() {
    for seed in 0..6 {
        check_policy(PolicyKind::Baseline, seed);
    }
}

#[test]
fn sequential_semantics_tus() {
    for seed in 0..10 {
        check_policy(PolicyKind::Tus, seed);
    }
}

#[test]
fn sequential_semantics_ssb() {
    for seed in 0..6 {
        check_policy(PolicyKind::Ssb, seed);
    }
}

#[test]
fn sequential_semantics_csb() {
    for seed in 0..6 {
        check_policy(PolicyKind::Csb, seed);
    }
}

#[test]
fn sequential_semantics_spb() {
    for seed in 0..6 {
        check_policy(PolicyKind::Spb, seed);
    }
}

/// The same program must leave the same final memory under every policy —
/// policies change *timing*, never architecture.
#[test]
fn final_memory_agrees_across_policies() {
    let (insts, _, final_mem) = random_program(99, 800);
    for policy in PolicyKind::ALL {
        let cfg = SimConfig::builder()
            .policy(policy)
            .sb_entries(16)
            .scale_caches_down(64)
            .build();
        let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(insts.clone()))], 99);
        sys.run_to_completion(5_000_000);
        for (&addr, &val) in &final_mem {
            assert_eq!(
                sys.mem().read_coherent(Addr::new(addr), 8),
                val,
                "{policy}: final memory at {addr:#x}"
            );
        }
    }
}
