//! One function per table/figure of the paper's evaluation.
//!
//! Every experiment is *declarative*: it first enumerates the full list
//! of [`RunSpec`]s it needs, hands the batch to the [`Executor`] (which
//! deduplicates, memoizes and parallelizes), and only then formats
//! tables from the results. Baseline runs shared between figures are
//! therefore simulated once per `all` invocation, regardless of figure
//! order, and `--jobs N` parallelizes every batch without changing a
//! single output byte.
//!
//! Every function prints the regenerated table(s) and writes CSVs under
//! the output directory. The paper's absolute numbers came from gem5 +
//! SPEC/PARSEC reference runs; here the *shape* is the target (see
//! `EXPERIMENTS.md` for the paper-vs-measured record).

use std::path::Path;

use tus_energy::{sb_area, sb_search_energy, woq_area, woq_search_energy};
use tus_sim::stats::geomean;
use tus_sim::{CoherenceKind, KernelKind, PolicyKind, SimConfig};
use tus_workloads::{all_single, parsec16, sb_bound_single, Workload};

use crate::executor::Executor;
use crate::runner::{RunResult, RunSpec, Scale, Tweak};
use crate::table::Table;

/// Shared experiment options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Run-length scaling.
    pub scale: Scale,
    /// Base seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out: std::path::PathBuf,
    /// Restrict parallel suites to this many workloads (they are 16-core
    /// and expensive); `None` = all.
    pub parallel_cap: Option<usize>,
    /// Simulation kernel for every run (`--kernel`). Either kernel yields
    /// byte-identical CSVs; lockstep exists for equivalence checking.
    pub kernel: KernelKind,
    /// Coherence backend for every run (`--coherence`). Unlike the
    /// kernel, this *changes* measured results — Tardis trades
    /// invalidation traffic for lease expiries — so CSVs regenerated
    /// under `tardis` are expected to differ. The `coherence` experiment
    /// sweeps both backends explicitly regardless of this option.
    pub coherence: CoherenceKind,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::Normal,
            seed: 42,
            out: "results".into(),
            parallel_cap: None,
            kernel: KernelKind::default(),
            coherence: CoherenceKind::default(),
        }
    }
}

/// Every experiment, in figure order (the `all` command and the CLI
/// dispatch both iterate this table).
pub const EXPERIMENTS: &[(&str, fn(&Executor, &Options))] = &[
    ("table1", table1),
    ("fig08", fig08),
    ("fig09", fig09),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("intext", intext),
    ("ablation", ablation),
    ("coherence", coherence),
];

fn spec(w: &Workload, policy: PolicyKind, sb: usize, opt: &Options) -> RunSpec {
    RunSpec {
        seed: opt.seed,
        kernel: opt.kernel,
        coherence: opt.coherence,
        ..RunSpec::new(w.clone(), policy, sb, opt.scale)
    }
}

fn parsec_suite(opt: &Options) -> Vec<Workload> {
    let mut v = parsec16();
    if let Some(cap) = opt.parallel_cap {
        v.truncate(cap);
    }
    v
}

fn emit(t: &Table, opt: &Options, file: &str) {
    println!("{}", t.render());
    if let Err(e) = t.write_csv(Path::new(&opt.out), file) {
        eprintln!("warning: could not write {file}.csv: {e}");
    }
}

/// Enumerates the cross product of workloads × policies at one SB size.
fn sweep_specs(
    workloads: &[Workload],
    policies: &[PolicyKind],
    sb: usize,
    opt: &Options,
) -> Vec<RunSpec> {
    workloads
        .iter()
        .flat_map(|w| policies.iter().map(|&p| spec(w, p, sb, opt)))
        .collect()
}

/// Table I: configuration parameters.
pub fn table1(_ex: &Executor, _opt: &Options) {
    println!("{}", SimConfig::default().render_table1());
}

/// Figure 8: speedup (geomean over each suite) vs SB size for every
/// policy, normalized to the 114-entry-SB baseline of that suite.
pub fn fig08(ex: &Executor, opt: &Options) {
    let sizes = [32usize, 56, 64, 114];
    for (suite_name, workloads) in [
        ("spec-tf-sb-bound", sb_bound_single()),
        ("parsec", parsec_suite(opt)),
    ] {
        // Declare the whole sweep up front: the per-suite baseline plus
        // every (size × policy × workload) point.
        let mut specs: Vec<RunSpec> = workloads
            .iter()
            .map(|w| spec(w, PolicyKind::Baseline, 114, opt))
            .collect();
        for sb in sizes {
            specs.extend(sweep_specs(&workloads, &PolicyKind::ALL, sb, opt));
        }
        let rs = ex.run_set(&specs);

        let mut t = Table::new(
            format!("Fig. 8 ({suite_name}): geomean speedup vs 114-entry-SB baseline"),
            PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
        );
        let refs: Vec<f64> = workloads
            .iter()
            .map(|w| rs.get(&spec(w, PolicyKind::Baseline, 114, opt)).ipc)
            .collect();
        for sb in sizes {
            let mut row = Vec::new();
            for policy in PolicyKind::ALL {
                let speedups = workloads.iter().zip(&refs).map(|(w, &r)| {
                    let ipc = if policy == PolicyKind::Baseline && sb == 114 {
                        r
                    } else {
                        rs.get(&spec(w, policy, sb, opt)).ipc
                    };
                    ipc / r
                });
                row.push(geomean(speedups));
            }
            t.push(format!("SB={sb}"), row);
        }
        emit(&t, opt, &format!("fig08_{suite_name}"));
    }
}

/// Figure 9: SB-induced dispatch stalls (% of cycles) per SB-bound
/// workload and policy, 114-entry SB. Lower is better.
pub fn fig09(ex: &Executor, opt: &Options) {
    let workloads = sb_bound_single();
    let rs = ex.run_set(&sweep_specs(&workloads, &PolicyKind::ALL, 114, opt));

    let mut t = Table::new(
        "Fig. 9: SB-induced stalls (% of cycles), 114-entry SB",
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for w in &workloads {
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| rs.get(&spec(w, p, 114, opt)).sb_stall_frac * 100.0)
            .collect();
        rows.push((w.name.to_owned(), vals));
    }
    // The paper sorts by baseline stalls, descending.
    rows.sort_by(|a, b| b.1[0].total_cmp(&a.1[0]));
    let means: Vec<f64> = (0..PolicyKind::ALL.len())
        .map(|c| rows.iter().map(|(_, v)| v[c]).sum::<f64>() / rows.len() as f64)
        .collect();
    for (name, vals) in rows {
        t.push(name, vals);
    }
    t.push("mean", means);
    emit(&t, opt, "fig09");
}

/// Figure 10: speedup S-curve over all applications (left) and the
/// per-benchmark SB-bound breakdown (right), normalized to the
/// 114-entry-SB baseline.
pub fn fig10(ex: &Executor, opt: &Options) {
    speedup_figure(ex, opt, 114, "Fig. 10", "fig10");
}

/// Figure 11: EDP normalized to the 114-entry-SB baseline, single-thread
/// SB-bound workloads. Lower is better.
pub fn fig11(ex: &Executor, opt: &Options) {
    edp_figure(ex, opt, 114, "Fig. 11", "fig11", sb_bound_single());
}

/// Figure 12: PARSEC (16 cores) speedup and EDP vs the 114-entry-SB
/// baseline.
pub fn fig12(ex: &Executor, opt: &Options) {
    parallel_figure(ex, opt, 114, "Fig. 12", "fig12");
}

/// Figure 13: S-curve + breakdown vs the **32-entry-SB** baseline.
pub fn fig13(ex: &Executor, opt: &Options) {
    speedup_figure(ex, opt, 32, "Fig. 13", "fig13");
}

/// Figure 14: PARSEC speedup and EDP vs the 32-entry-SB baseline.
pub fn fig14(ex: &Executor, opt: &Options) {
    parallel_figure(ex, opt, 32, "Fig. 14", "fig14");
}

/// Figure 15: EDP vs the 32-entry-SB baseline, single-thread SB-bound.
pub fn fig15(ex: &Executor, opt: &Options) {
    edp_figure(ex, opt, 32, "Fig. 15", "fig15", sb_bound_single());
}

fn speedup_figure(ex: &Executor, opt: &Options, sb: usize, title: &str, file: &str) {
    let bound = sb_bound_single();
    let everything = all_single();
    // One batch covers both panels: the SB-bound suite under every
    // policy, plus baseline/TUS for the S-curve over all applications.
    let mut specs = sweep_specs(&bound, &PolicyKind::ALL, sb, opt);
    specs.extend(sweep_specs(
        &everything,
        &[PolicyKind::Baseline, PolicyKind::Tus],
        sb,
        opt,
    ));
    let rs = ex.run_set(&specs);

    // Right panel: per-benchmark speedups for SB-bound workloads.
    let mut right = Table::new(
        format!("{title} (right): speedup vs {sb}-entry-SB baseline, SB-bound"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in &bound {
        let base = rs.get(&spec(w, PolicyKind::Baseline, sb, opt)).ipc;
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                if p == PolicyKind::Baseline {
                    1.0
                } else {
                    rs.get(&spec(w, p, sb, opt)).ipc / base
                }
            })
            .collect();
        right.push(w.name.to_owned(), vals);
    }
    let mean = right.geomean_row();
    right.push("geomean", mean);
    emit(&right, opt, &format!("{file}_breakdown"));

    // Left panel: the S-curve of TUS speedups over *all* applications.
    let mut curve: Vec<(String, f64)> = everything
        .iter()
        .map(|w| {
            let base = rs.get(&spec(w, PolicyKind::Baseline, sb, opt)).ipc;
            let tus = rs.get(&spec(w, PolicyKind::Tus, sb, opt)).ipc;
            (w.name.to_owned(), tus / base)
        })
        .collect();
    curve.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut left = Table::new(
        format!("{title} (left): TUS speedup S-curve over all applications vs {sb}-entry SB"),
        vec!["speedup".to_owned()],
    );
    for (name, s) in &curve {
        left.push(name.clone(), vec![*s]);
    }
    left.push("geomean(All)".to_owned(), vec![geomean(curve.iter().map(|c| c.1))]);
    emit(&left, opt, &format!("{file}_scurve"));
}

fn edp_figure(
    ex: &Executor,
    opt: &Options,
    sb: usize,
    title: &str,
    file: &str,
    workloads: Vec<Workload>,
) {
    let rs = ex.run_set(&sweep_specs(&workloads, &PolicyKind::ALL, sb, opt));

    let mut t = Table::new(
        format!("{title}: EDP normalized to {sb}-entry-SB baseline (lower is better)"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in &workloads {
        let base = rs.get(&spec(w, PolicyKind::Baseline, sb, opt)).edp;
        let vals: Vec<f64> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                if p == PolicyKind::Baseline {
                    1.0
                } else {
                    rs.get(&spec(w, p, sb, opt)).edp / base
                }
            })
            .collect();
        t.push(w.name.to_owned(), vals);
    }
    let mean = t.geomean_row();
    t.push("geomean", mean);
    emit(&t, opt, file);
}

fn parallel_figure(ex: &Executor, opt: &Options, sb: usize, title: &str, file: &str) {
    let workloads = parsec_suite(opt);
    let rs = ex.run_set(&sweep_specs(&workloads, &PolicyKind::ALL, sb, opt));

    let mut speed = Table::new(
        format!("{title} (left): PARSEC speedup vs {sb}-entry-SB baseline, 16 cores"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    let mut edp = Table::new(
        format!("{title} (right): PARSEC EDP vs {sb}-entry-SB baseline (lower is better)"),
        PolicyKind::ALL.iter().map(|p| p.label().to_owned()).collect(),
    );
    for w in &workloads {
        let base = rs.get(&spec(w, PolicyKind::Baseline, sb, opt));
        let mut srow = Vec::new();
        let mut erow = Vec::new();
        for policy in PolicyKind::ALL {
            if policy == PolicyKind::Baseline {
                srow.push(1.0);
                erow.push(1.0);
            } else {
                let r = rs.get(&spec(w, policy, sb, opt));
                srow.push(r.ipc / base.ipc);
                erow.push(r.edp / base.edp);
            }
        }
        speed.push(w.name.to_owned(), srow);
        edp.push(w.name.to_owned(), erow);
    }
    let m = speed.geomean_row();
    speed.push("geomean", m);
    let m = edp.geomean_row();
    edp.push("geomean", m);
    emit(&speed, opt, &format!("{file}_speedup"));
    emit(&edp, opt, &format!("{file}_edp"));
}

/// In-text claims: SB/WOQ area & energy ratios, L1D-write reduction,
/// stall totals, hit rates and memory-boundness.
pub fn intext(ex: &Executor, opt: &Options) {
    // Structure ratios (analytic model, Section IV / V of the paper).
    let mut t = Table::new(
        "In-text: structure area and search-energy model",
        vec!["area_um2".into(), "energy_pJ".into()],
    );
    for sb in [32usize, 64, 114] {
        t.push(format!("SB-{sb}"), vec![sb_area(sb), sb_search_energy(sb)]);
    }
    t.push("WOQ-64", vec![woq_area(64), woq_search_energy(64)]);
    t.push(
        "ratio SB114/SB32",
        vec![sb_area(114) / sb_area(32), sb_search_energy(114) / sb_search_energy(32)],
    );
    t.push(
        "ratio SB114/WOQ",
        vec![sb_area(114) / woq_area(64), sb_search_energy(114) / woq_search_energy(64)],
    );
    t.push(
        "ratio SB32/WOQ",
        vec![sb_area(32) / woq_area(64), sb_search_energy(32) / woq_search_energy(64)],
    );
    emit(&t, opt, "intext_structures");

    // L1D write reduction, stalls, hit rates, boundness.
    let workloads = sb_bound_single();
    let rs = ex.run_set(&sweep_specs(
        &workloads,
        &[PolicyKind::Baseline, PolicyKind::Tus],
        114,
        opt,
    ));

    let mut t = Table::new(
        "In-text: per-workload TUS vs baseline (114-entry SB)",
        vec![
            "write_reduction_x".into(),
            "stall_base_pct".into(),
            "stall_tus_pct".into(),
            "l1d_hit_base_pct".into(),
            "l1d_hit_tus_pct".into(),
        ],
    );
    for w in &workloads {
        let base = rs.get(&spec(w, PolicyKind::Baseline, 114, opt));
        let tus = rs.get(&spec(w, PolicyKind::Tus, 114, opt));
        use tus_sim::stats::names;
        let writes = |r: &RunResult| r.stats.get(&names::mem_core(0, names::L1D_WRITES)).max(1.0);
        let hits = |r: &RunResult| {
            let h = r.stats.get(&names::mem_core(0, names::L1D_LOAD_HITS));
            let m = r.stats.get(&names::mem_core(0, names::L1D_LOAD_MISSES));
            100.0 * h / (h + m).max(1.0)
        };
        t.push(
            w.name.to_owned(),
            vec![
                writes(base) / writes(tus),
                base.sb_stall_frac * 100.0,
                tus.sb_stall_frac * 100.0,
                hits(base),
                hits(tus),
            ],
        );
    }
    let mean = t.geomean_row();
    t.push("geomean", mean);
    emit(&t, opt, "intext_tus_vs_base");
}

/// The named design points of the ablation (also the memo/cache keys of
/// the tweaked runs).
const ABLATION_TWEAKS: &[(&str, Tweak)] = &[
    ("WOQ=16", Tweak { name: "woq16", apply: |b| { b.woq_entries(16); } }),
    ("WOQ=32", Tweak { name: "woq32", apply: |b| { b.woq_entries(32); } }),
    ("WOQ=128", Tweak { name: "woq128", apply: |b| { b.woq_entries(128); } }),
    ("WCB=1", Tweak { name: "wcb1", apply: |b| { b.wcbs(1); } }),
    ("WCB=4", Tweak { name: "wcb4", apply: |b| { b.wcbs(4); } }),
    ("group<=4", Tweak { name: "group4", apply: |b| { b.max_atomic_group(4); } }),
    ("group<=8", Tweak { name: "group8", apply: |b| { b.max_atomic_group(8); } }),
    ("lex=8", Tweak { name: "lex8", apply: |b| { b.lex_bits(8); } }),
    ("no prefetch-at-commit", Tweak { name: "no-pf-commit", apply: |b| { b.prefetch_at_commit(false); } }),
    ("no stream prefetcher", Tweak { name: "no-stream-pf", apply: |b| { b.stream_prefetcher(false); } }),
    ("L1D unauth forwarding on", Tweak { name: "unauth-fwd", apply: |b| { b.l1d_unauth_forwarding(true); } }),
];

/// Design-space ablations of the TUS parameters called out in DESIGN.md:
/// WOQ size, WCB count, atomic-group cap, lex bits, prefetch-at-commit.
pub fn ablation(ex: &Executor, opt: &Options) {
    let w = tus_workloads::by_name("502.gcc4-like").expect("workload exists");
    let mut specs = vec![
        spec(&w, PolicyKind::Baseline, 114, opt),
        spec(&w, PolicyKind::Tus, 114, opt),
    ];
    for (_, tweak) in ABLATION_TWEAKS {
        specs.push(RunSpec {
            tweak: Some(*tweak),
            ..spec(&w, PolicyKind::Tus, 114, opt)
        });
    }
    let rs = ex.run_set(&specs);

    let base = rs.get(&specs[0]).ipc;
    let mut t = Table::new(
        "Ablation (502.gcc4-like): TUS speedup vs baseline by design point",
        vec!["speedup".into()],
    );
    t.push(
        "default (WOQ=64, WCB=2, group<=16, lex=16, pf@commit)",
        vec![rs.get(&specs[1]).ipc / base],
    );
    for ((label, _), spec) in ABLATION_TWEAKS.iter().zip(&specs[2..]) {
        t.push(*label, vec![rs.get(spec).ipc / base]);
    }
    emit(&t, opt, "ablation");
}

/// Coherence-backend comparison: TUS vs CSB vs SPB speedup over the
/// same-backend baseline, under both the MESI directory and the Tardis
/// timestamp backend (32-entry SB, the size where drain pressure and
/// thus coherence behaviour matters most). Each backend is normalized
/// to *its own* baseline so the columns isolate the policy × backend
/// interaction — in particular how the TUS unauthorized-line machinery
/// fares when remote conflicts arrive as lease expiries rather than
/// invalidations.
pub fn coherence(ex: &Executor, opt: &Options) {
    let workloads = sb_bound_single();
    let policies = [PolicyKind::Tus, PolicyKind::Csb, PolicyKind::Spb];
    let cospec = |w: &Workload, p: PolicyKind, co: CoherenceKind| RunSpec {
        coherence: co,
        ..spec(w, p, 32, opt)
    };
    let mut specs = Vec::new();
    for co in CoherenceKind::ALL {
        for w in &workloads {
            specs.push(cospec(w, PolicyKind::Baseline, co));
            specs.extend(policies.iter().map(|&p| cospec(w, p, co)));
        }
    }
    let rs = ex.run_set(&specs);

    let mut t = Table::new(
        "Coherence backends: TUS/CSB/SPB speedup vs same-backend baseline (32-entry SB)",
        CoherenceKind::ALL
            .iter()
            .flat_map(|co| {
                policies
                    .iter()
                    .map(move |p| format!("{}-{}", p.label(), co.label()))
            })
            .collect(),
    );
    for w in &workloads {
        let mut row = Vec::new();
        for co in CoherenceKind::ALL {
            let base = rs.get(&cospec(w, PolicyKind::Baseline, co)).ipc;
            for &p in &policies {
                row.push(rs.get(&cospec(w, p, co)).ipc / base);
            }
        }
        t.push(w.name.to_owned(), row);
    }
    let mean = t.geomean_row();
    t.push("geomean", mean);
    emit(&t, opt, "coherence_backends");
}

/// Runs every experiment in figure order.
pub fn all(ex: &Executor, opt: &Options) {
    for (_, f) in EXPERIMENTS {
        f(ex, opt);
    }
}
