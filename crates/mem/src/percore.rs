//! Per-core private cache controller (L1D + private L2, inclusive).
//!
//! One [`PrivateCache`] per core is the coherence endpoint for that core's
//! private hierarchy. It implements:
//!
//! * the load path (L1D → L2 → directory) with MSHR merging,
//! * the baseline store path (write when permission held, GetM otherwise),
//! * the TUS mechanisms of Section III/IV of the paper: *unauthorized*
//!   writes into the L1D without permission, combine-on-arrival using the
//!   byte mask, bulk visibility flips, and the delay/relinquish protocol
//!   for external requests that hit not-visible lines,
//! * the inclusive-hierarchy plumbing: L1D victims write back into the L2,
//!   L2 victims invalidate L1D copies and notify the directory, and an L2
//!   way whose L1D copy is unauthorized is never selected as a victim (the
//!   paper's NACK-refresh replacement rule),
//! * the baseline stream prefetcher (trained on demand load misses).
//!
//! Decision logic — *when* to write unauthorized data, atomic groups, lex
//! order — lives in the `tus` crate and drives this controller through its
//! public methods; decisions flow back via [`CacheEvent`]s.

use tus_sim::stats::names;
use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{
    Addr, CoherenceKind, CoreId, Cycle, DelayQueue, FxHashMap, LineAddr, Schedulable, SimConfig,
    StatSet,
};

use crate::cache::CacheArray;
use crate::line::{combine, read_value, write_value, ByteMask, LineData};
use crate::mesi::Mesi;
use crate::msgs::{CacheEvent, ConflictKind, FwdKind, Lease, Msg, ReqKind};
use crate::net::{Network, Node};
use crate::prefetch::StreamPrefetcher;

/// What a TUS probe of the L1D found for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// Not present; `ways_free` ways could hold it right now.
    Miss {
        /// Unoccupied or evictable ways in the line's set.
        ways_free: usize,
    },
    /// Present and visible to coherence.
    HitVisible {
        /// Write permission currently held.
        writable: bool,
    },
    /// Present as a temporarily unauthorized line (a store cycle if
    /// written again — paper Section III-B).
    HitUnauth {
        /// L1D set.
        set: usize,
        /// L1D way.
        way: usize,
        /// Permission acquired and data combined.
        ready: bool,
    },
    /// A fill or permission request is outstanding; retry later.
    Busy,
}

/// Result of a store write attempt that requires permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreWriteOutcome {
    /// The write was performed.
    Done,
    /// Permission is missing; a request is (already) in flight — retry.
    NotYet,
}

/// What [`PrivateCache::write_line_visible`] would do for a line *right
/// now*, without doing it — a read-only mirror used by the idle-skipping
/// kernel to decide whether a blocked store drain is pending work, a
/// counting retry (chargeable in bulk), or fully quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAttemptClass {
    /// The write would complete ([`StoreWriteOutcome::Done`]) — work now.
    WouldComplete,
    /// The write would miss and *send a new GetM* — work now (state
    /// changes: MSHR allocation plus a network message).
    BlockedWouldRequest,
    /// The write would miss with the request already in flight (or MSHRs
    /// full): each retry cycle only bumps `l1d_store_misses`.
    BlockedCounting,
    /// The write would bounce off an unauthorized line with no counter
    /// charged at all.
    BlockedQuiet,
}

/// Why an unauthorized allocation could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnauthAllocError {
    /// Every way in the set is pinned (locked or unauthorized).
    NoWay,
    /// A fill or request for the line is already in flight.
    Outstanding,
    /// No MSHR available for the write-permission request.
    MshrFull,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    token: u64,
    offset: usize,
    size: usize,
}

/// One MSHR: a request in flight to the directory. Slots are stored in a
/// flat array scanned linearly (the live population is bounded by the
/// MSHR count plus demand-load oversubscription, i.e. small); a dead slot
/// keeps its `waiters` buffer so reuse allocates nothing.
#[derive(Debug)]
struct MshrSlot {
    live: bool,
    line: LineAddr,
    kind: ReqKind,
    prefetch: bool,
    waiters: Vec<Waiter>,
}

impl MshrSlot {
    fn empty() -> Self {
        MshrSlot {
            live: false,
            line: LineAddr::new(0),
            kind: ReqKind::GetS,
            prefetch: false,
            waiters: Vec::new(),
        }
    }
}

/// Loads parked on a not-ready unauthorized line. Same slot-array shape
/// as [`MshrSlot`]; per-line arrival order is the `waiters` push order,
/// which the wake path must preserve.
#[derive(Debug)]
struct UnauthWaitSlot {
    live: bool,
    line: LineAddr,
    waiters: Vec<Waiter>,
}

#[derive(Debug, Clone, Copy)]
struct PendingFwd {
    kind: FwdKind,
    to_owner: bool,
}

/// A parked external request keyed by line (at most one per line by the
/// one-transaction-per-line directory invariant).
type FwdSlots = Vec<(bool, LineAddr, PendingFwd)>;

fn fwd_find(slots: &FwdSlots, line: LineAddr) -> Option<usize> {
    slots.iter().position(|s| s.0 && s.1 == line)
}

fn fwd_insert(slots: &mut FwdSlots, line: LineAddr, f: PendingFwd) {
    debug_assert!(fwd_find(slots, line).is_none(), "one parked external per line");
    if let Some(s) = slots.iter_mut().find(|s| !s.0) {
        *s = (true, line, f);
    } else {
        slots.push((true, line, f));
    }
}

fn fwd_remove(slots: &mut FwdSlots, line: LineAddr) -> Option<PendingFwd> {
    let i = fwd_find(slots, line)?;
    slots[i].0 = false;
    Some(slots[i].2)
}

fn fwd_live(slots: &FwdSlots) -> usize {
    slots.iter().filter(|s| s.0).count()
}

/// Counters exported per core.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Demand loads issued to the hierarchy.
    pub loads: u64,
    /// Loads that hit in L1D.
    pub l1d_load_hits: u64,
    /// Loads that missed in L1D.
    pub l1d_load_misses: u64,
    /// Loads served by the L2.
    pub l2_load_hits: u64,
    /// Loads that left the private hierarchy.
    pub l2_load_misses: u64,
    /// Loads that had to wait for an unauthorized line to become ready.
    pub loads_blocked_unauth: u64,
    /// Loads forwarded from not-ready unauthorized lines (ablation knob,
    /// off by default as in the paper).
    pub l1d_unauth_forwards: u64,
    /// Store write accesses performed on the L1D data array. Coalescing
    /// (CSB/TUS) reduces this; the paper reports a 2× average reduction.
    pub l1d_writes: u64,
    /// Stores that hit a writable line on their first attempt.
    pub l1d_store_hits: u64,
    /// Store attempts that found no writable line.
    pub l1d_store_misses: u64,
    /// Authorized-copy updates pushed into the L2 before overwriting a
    /// dirty visible line with unauthorized data (TUS energy overhead).
    pub l2_updates: u64,
    /// L2 data writes performed by the SSB write-through drain.
    pub ssb_l2_writes: u64,
    /// Unauthorized line allocations (TUS).
    pub unauth_allocs: u64,
    /// Lines relinquished to resolve external conflicts (TUS).
    pub relinquishes: u64,
    /// External requests delayed while a line was not visible (TUS).
    pub delayed_externals: u64,
    /// Stale Tardis read grants re-requested with a newer logical clock
    /// (diagnostics; always 0 under MESI and not exported).
    pub lease_renewals: u64,
    /// Shared copies dropped by Tardis lease expiry (self-downgrade;
    /// always 0 under MESI and not exported).
    pub lease_expiries: u64,
    /// Prefetch requests issued (stream + commit + SPB).
    pub prefetches: u64,
    /// Invalidations received.
    pub invs_received: u64,
    /// L2 evictions notified to the directory.
    pub l2_evictions: u64,
}

/// A per-core private cache hierarchy controller.
pub struct PrivateCache {
    core: CoreId,
    l1d: CacheArray,
    l2: CacheArray,
    mshrs: usize,
    l1_lat: u64,
    l2_rt: u64,
    stream: Option<StreamPrefetcher>,
    unauth_forwarding: bool,
    outstanding: Vec<MshrSlot>,
    outstanding_live: usize,
    unauth_waiters: Vec<UnauthWaitSlot>,
    pending_fwd: FwdSlots,
    delayed_fwd: FwdSlots,
    deferred_fwd: DelayQueue<(LineAddr, FwdKind, bool)>,
    events: Vec<CacheEvent>,
    /// Scratch for processing a dead MSHR's waiters without holding a
    /// borrow on the slot array (swapped in and out, capacity retained).
    waiter_scratch: Vec<Waiter>,
    /// Tardis mode: the backend runs logical-timestamp coherence. All
    /// timestamp state below is dead (and stays 0/empty) under MESI.
    tardis: bool,
    /// This core's logical program timestamp (Tardis `pts`).
    pts: u64,
    /// Per-line `(wts, rts)` pairs for lines this hierarchy holds; the
    /// local mirror of the lease each copy was granted under.
    leases: FxHashMap<LineAddr, Lease>,
    /// Scratch for the lease-expiry sweep (capacity retained).
    expire_scratch: Vec<LineAddr>,
    tracer: Tracer,
    /// Counters.
    pub stats: MemStats,
}

/// One-letter MESI state label for trace records.
fn mesi_label(s: Mesi) -> &'static str {
    match s {
        Mesi::Invalid => "I",
        Mesi::Shared => "S",
        Mesi::Exclusive => "E",
        Mesi::Modified => "M",
    }
}

impl std::fmt::Debug for PrivateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateCache")
            .field("core", &self.core)
            .field("outstanding", &self.outstanding_live)
            .field("pending_fwd", &fwd_live(&self.pending_fwd))
            .finish()
    }
}

impl PrivateCache {
    /// Creates the controller for `core` from the machine configuration.
    pub fn new(core: CoreId, cfg: &SimConfig) -> Self {
        let m = &cfg.mem;
        PrivateCache {
            core,
            l1d: CacheArray::new(m.l1d.sets(), m.l1d.ways),
            l2: CacheArray::new(m.l2.sets(), m.l2.ways),
            mshrs: m.l1d.mshrs.min(m.l2.mshrs),
            l1_lat: m.l1d.latency,
            l2_rt: m.l2.latency,
            stream: if m.stream_prefetcher {
                Some(StreamPrefetcher::new(16, m.stream_degree))
            } else {
                None
            },
            unauth_forwarding: cfg.tus.l1d_unauth_forwarding,
            outstanding: Vec::new(),
            outstanding_live: 0,
            unauth_waiters: Vec::new(),
            pending_fwd: Vec::new(),
            delayed_fwd: Vec::new(),
            deferred_fwd: DelayQueue::new(),
            events: Vec::new(),
            waiter_scratch: Vec::new(),
            tardis: cfg.coherence == CoherenceKind::Tardis,
            pts: 0,
            leases: FxHashMap::default(),
            expire_scratch: Vec::new(),
            tracer: Tracer::default(),
            stats: MemStats::default(),
        }
    }

    /// This core's logical program timestamp (always 0 under MESI).
    pub fn logical_ts(&self) -> u64 {
        self.pts
    }

    /// Arms structured MESI-transition tracing with a ring of `cap`
    /// records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Drains the buffered trace records, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.take()
    }

    /// Records an L1D coherence-state transition on `line` (no-op while
    /// tracing is disabled).
    fn trace_mesi(&mut self, line: LineAddr, from: Mesi, to: Mesi, now: Cycle) {
        if self.tracer.is_enabled() && from != to {
            self.tracer.emit(
                now,
                0,
                TraceEvent::MesiTransition {
                    line: line.raw(),
                    from: mesi_label(from),
                    to: mesi_label(to),
                },
            );
        }
    }

    /// This controller's core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    // --- MSHR slot array -------------------------------------------------

    fn mshr_find(&self, line: LineAddr) -> Option<usize> {
        self.outstanding.iter().position(|s| s.live && s.line == line)
    }

    fn mshr_contains(&self, line: LineAddr) -> bool {
        self.mshr_find(line).is_some()
    }

    /// Claims a slot (reusing a dead one, with its warm waiter buffer) for
    /// a new in-flight request. The caller checked `line` has none.
    fn mshr_insert(&mut self, line: LineAddr, kind: ReqKind, prefetch: bool) -> usize {
        debug_assert!(self.mshr_find(line).is_none(), "one request per line");
        self.outstanding_live += 1;
        if let Some(i) = self.outstanding.iter().position(|s| !s.live) {
            let s = &mut self.outstanding[i];
            s.live = true;
            s.line = line;
            s.kind = kind;
            s.prefetch = prefetch;
            debug_assert!(s.waiters.is_empty());
            return i;
        }
        let mut s = MshrSlot::empty();
        s.live = true;
        s.line = line;
        s.kind = kind;
        s.prefetch = prefetch;
        self.outstanding.push(s);
        self.outstanding.len() - 1
    }

    /// Kills the slot for `line` and moves its waiters into
    /// `waiter_scratch` (replacing its contents). Returns whether a slot
    /// existed.
    fn mshr_remove_into_scratch(&mut self, line: LineAddr) -> bool {
        let Some(i) = self.mshr_find(line) else {
            self.waiter_scratch.clear();
            return false;
        };
        self.outstanding_live -= 1;
        let s = &mut self.outstanding[i];
        s.live = false;
        self.waiter_scratch.clear();
        std::mem::swap(&mut self.waiter_scratch, &mut s.waiters);
        true
    }

    /// Takes the events produced since the last call.
    pub fn take_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves the events produced since the last call into `out`
    /// (appending), leaving the internal buffer empty but warm — the
    /// allocation-free drain used by the per-cycle system loop.
    pub fn drain_events_into(&mut self, out: &mut Vec<CacheEvent>) {
        out.append(&mut self.events);
    }

    /// Whether no request is outstanding and no external request pending.
    pub fn quiesced(&self) -> bool {
        self.outstanding_live == 0
            && fwd_live(&self.pending_fwd) == 0
            && fwd_live(&self.delayed_fwd) == 0
            && self.deferred_fwd.is_empty()
    }

    /// Processes external requests whose grant-hold window has expired.
    /// Called by the memory system once per cycle.
    pub fn tick(&mut self, now: Cycle, net: &mut Network) {
        while let Some((line, kind, to_owner)) = self.deferred_fwd.pop_due(now) {
            self.dispatch_fwd(line, kind, to_owner, now, net, false);
        }
    }

    /// L1D set index of a line (for atomic-group way accounting).
    pub fn l1d_set_of(&self, line: LineAddr) -> usize {
        self.l1d.set_of(line)
    }

    /// Ways in `line`'s L1D set that could hold a new line right now.
    pub fn l1d_ways_free(&self, line: LineAddr) -> usize {
        self.l1d.free_or_evictable_ways(line)
    }

    /// Coherence/TUS state of a line, if present in the L1D:
    /// `(state, unauth, ready)` — for tests and assertions.
    pub fn line_state(&self, line: LineAddr) -> Option<(Mesi, bool, bool)> {
        self.l1d
            .lookup(line)
            .map(|(s, w)| {
                let l = self.l1d.way(s, w);
                (l.state, l.unauth, l.ready)
            })
            .or_else(|| {
                self.l2
                    .lookup(line)
                    .map(|(s, w)| (self.l2.way(s, w).state, false, false))
            })
    }

    /// Number of MSHRs still available.
    pub fn mshrs_free(&self) -> usize {
        self.mshrs.saturating_sub(self.outstanding_live)
    }

    /// Number of requests in flight to the directory (diagnostics).
    pub fn outstanding_requests(&self) -> usize {
        self.outstanding_live
    }

    /// Lines with a request in flight, sorted (diagnostics).
    pub fn outstanding_lines(&self) -> Vec<LineAddr> {
        let mut v: Vec<LineAddr> = self
            .outstanding
            .iter()
            .filter(|s| s.live)
            .map(|s| s.line)
            .collect();
        v.sort_by_key(|l| l.raw());
        v
    }

    /// External requests parked on this core: pending a policy decision
    /// plus explicitly delayed ones (diagnostics).
    pub fn parked_externals(&self) -> usize {
        fwd_live(&self.pending_fwd) + fwd_live(&self.delayed_fwd) + self.deferred_fwd.len()
    }

    /// Whether a request for `line` is currently in flight to the
    /// directory.
    pub fn request_in_flight(&self, line: LineAddr) -> bool {
        self.mshr_contains(line)
    }

    /// Whether events are queued for the policy/core layer to consume.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Due cycle of the earliest deferred external request (grant-hold
    /// window expiry).
    pub fn next_deferred_fwd(&self) -> Option<Cycle> {
        self.deferred_fwd.next_due()
    }

    /// Read-only classification of what [`PrivateCache::write_line_visible`]
    /// (and therefore the baseline/SSB/CSB store-drain attempts built on
    /// it) would do for `line` this cycle. Mirrors that method's control
    /// flow exactly; see [`StoreAttemptClass`].
    pub fn store_write_class(&self, line: LineAddr) -> StoreAttemptClass {
        if let Some((set, way)) = self.l1d.lookup(line) {
            let l2_writable = self
                .l2
                .lookup(line)
                .is_some_and(|(s2, w2)| self.l2.way(s2, w2).state.can_write());
            let l = self.l1d.way(set, way);
            if l.unauth {
                return StoreAttemptClass::BlockedQuiet;
            }
            if l.state.can_write() || (l.state.can_read() && l2_writable) {
                return StoreAttemptClass::WouldComplete;
            }
        } else if let Some((s2, w2)) = self.l2.lookup(line) {
            if self.l2.way(s2, w2).state.can_write() {
                return StoreAttemptClass::WouldComplete;
            }
        }
        // Miss path: `ensure_write_permission` is a no-op exactly when a
        // request is already in flight or MSHRs are exhausted.
        if self.mshr_contains(line) || self.outstanding_live >= self.mshrs {
            StoreAttemptClass::BlockedCounting
        } else {
            StoreAttemptClass::BlockedWouldRequest
        }
    }

    /// Charges `n` skipped idle cycles to the blocked-store retry
    /// counter: the bulk equivalent of `n` consecutive failed
    /// [`PrivateCache::write_line_visible`] attempts in the
    /// [`StoreAttemptClass::BlockedCounting`] state.
    pub fn charge_blocked_store_cycles(&mut self, n: u64) {
        self.stats.l1d_store_misses += n;
    }

    /// Whether the private hierarchy holds write permission for `line`
    /// (M/E in the L1D or the L2) — the CSB flush feasibility test.
    pub fn hierarchy_writable(&self, line: LineAddr) -> bool {
        self.l1d
            .lookup(line)
            .is_some_and(|(s, w)| {
                let l = self.l1d.way(s, w);
                !l.unauth && l.state.can_write()
            })
            || self
                .l2
                .lookup(line)
                .is_some_and(|(s, w)| self.l2.way(s, w).state.can_write())
    }

    /// The coherent copy of a line held by this hierarchy, if any:
    /// `(state, data)` from the L1D when present, else the L2. Intended
    /// for post-run inspection (oracles, final-state extraction).
    pub fn peek_line(&self, line: LineAddr) -> Option<(Mesi, Box<LineData>)> {
        if let Some((s, w)) = self.l1d.lookup(line) {
            let l = self.l1d.way(s, w);
            if !l.unauth && l.state.can_read() {
                return Some((l.state, Box::new(*self.l1d.data(s, w))));
            }
            if l.unauth {
                return None; // not visible to the coherent world
            }
        }
        self.l2.lookup(line).and_then(|(s, w)| {
            let l = self.l2.way(s, w);
            if l.state.can_read() {
                Some((l.state, Box::new(*self.l2.data(s, w))))
            } else {
                None
            }
        })
    }

    // ------------------------------------------------------------------
    // Load path
    // ------------------------------------------------------------------

    /// Issues a demand load. Completion is reported through
    /// [`CacheEvent::LoadDone`] carrying `token` (possibly in the same
    /// call for hits, with the availability cycle in the event).
    pub fn load(&mut self, addr: Addr, size: usize, token: u64, now: Cycle, net: &mut Network) {
        self.stats.loads += 1;
        let line = addr.line();
        let waiter = Waiter {
            token,
            offset: addr.line_offset(),
            size,
        };
        if let Some((set, way)) = self.l1d.lookup(line) {
            let l = self.l1d.way(set, way);
            if l.unauth {
                if l.ready {
                    self.stats.l1d_load_hits += 1;
                    let v = read_value(self.l1d.data(set, way), waiter.offset, waiter.size);
                    self.complete_load(waiter.token, now + self.l1_lat, v);
                } else if self.unauth_forwarding && l.mask.covers(waiter.offset, waiter.size) {
                    // Ablation variant (paper Section IV, "Other
                    // considerations"): the locally written bytes fully
                    // cover the load, so it can forward from the L1D
                    // before permission arrives — reading one's own
                    // store early is always TSO-legal.
                    self.stats.l1d_unauth_forwards += 1;
                    let v = read_value(self.l1d.data(set, way), waiter.offset, waiter.size);
                    self.complete_load(waiter.token, now + self.l1_lat, v);
                } else {
                    self.stats.loads_blocked_unauth += 1;
                    self.park_unauth_waiter(line, waiter);
                }
                self.l1d.touch(set, way);
                return;
            }
            if l.state.can_read() {
                self.stats.l1d_load_hits += 1;
                self.tardis_read_touch(line, now);
                let v = read_value(self.l1d.data(set, way), waiter.offset, waiter.size);
                self.l1d.touch(set, way);
                self.complete_load(waiter.token, now + self.l1_lat, v);
                return;
            }
        }
        self.stats.l1d_load_misses += 1;
        if let Some(stream) = &mut self.stream {
            let hints = stream.train(line);
            for h in hints {
                self.prefetch_read(h, now, net);
            }
        }
        if let Some(i) = self.mshr_find(line) {
            let o = &mut self.outstanding[i];
            o.waiters.push(waiter);
            o.prefetch = false;
            return;
        }
        if let Some((s2, w2)) = self.l2.lookup(line) {
            if self.l2.way(s2, w2).state.can_read() {
                self.stats.l2_load_hits += 1;
                self.tardis_read_touch(line, now);
                self.l2.touch(s2, w2);
                let v = read_value(self.l2.data(s2, w2), waiter.offset, waiter.size);
                self.fill_l1_from_l2(line);
                self.complete_load(waiter.token, now + self.l1_lat + self.l2_rt, v);
                return;
            }
        }
        self.stats.l2_load_misses += 1;
        // Demand loads may oversubscribe the MSHRs (they are effectively
        // reserved entries); only prefetches and store-permission requests
        // honor the cap strictly.
        let i = self.mshr_insert(line, ReqKind::GetS, false);
        self.outstanding[i].waiters.push(waiter);
        net.send(
            Node::Core(self.core),
            Node::Dir,
            now,
            Msg::Req {
                core: self.core,
                line,
                kind: ReqKind::GetS,
                prefetch: false,
                pts: self.pts,
            },
        );
    }

    fn complete_load(&mut self, token: u64, at: Cycle, value: u64) {
        self.events.push(CacheEvent::LoadDone { token, at, value });
    }

    // ------------------------------------------------------------------
    // Prefetch & permission requests
    // ------------------------------------------------------------------

    /// Issues a read prefetch for `line` if it is absent and an MSHR is
    /// free.
    pub fn prefetch_read(&mut self, line: LineAddr, now: Cycle, net: &mut Network) {
        if self.mshr_contains(line)
            || self.outstanding_live >= self.mshrs
            || self.l1d.lookup(line).is_some()
            || self.l2.lookup(line).is_some()
        {
            return;
        }
        self.stats.prefetches += 1;
        self.mshr_insert(line, ReqKind::GetS, true);
        net.send(
            Node::Core(self.core),
            Node::Dir,
            now,
            Msg::Req {
                core: self.core,
                line,
                kind: ReqKind::GetS,
                prefetch: true,
                pts: self.pts,
            },
        );
    }

    /// Ensures write permission for `line` is held or being acquired
    /// (prefetch-at-commit, SPB bursts, baseline store misses). Returns
    /// `true` if permission is already held.
    pub fn ensure_write_permission(
        &mut self,
        line: LineAddr,
        prefetch: bool,
        now: Cycle,
        net: &mut Network,
    ) -> bool {
        if let Some((s, w)) = self.l1d.lookup(line) {
            if self.l1d.way(s, w).state.can_write() {
                return true;
            }
        }
        if let Some((s, w)) = self.l2.lookup(line) {
            if self.l2.way(s, w).state.can_write() {
                return true;
            }
        }
        if self.mshr_contains(line) || self.outstanding_live >= self.mshrs {
            return false;
        }
        if prefetch {
            self.stats.prefetches += 1;
        }
        self.mshr_insert(line, ReqKind::GetM, prefetch);
        net.send(
            Node::Core(self.core),
            Node::Dir,
            now,
            Msg::Req {
                core: self.core,
                line,
                kind: ReqKind::GetM,
                prefetch,
                pts: self.pts,
            },
        );
        false
    }

    // ------------------------------------------------------------------
    // Authorized (baseline / CSB / SSB) store paths
    // ------------------------------------------------------------------

    /// Baseline store drain: writes `size` bytes of `value` if write
    /// permission is held, otherwise requests it and reports
    /// [`StoreWriteOutcome::NotYet`].
    pub fn try_visible_store_write(
        &mut self,
        addr: Addr,
        size: usize,
        value: u64,
        now: Cycle,
        net: &mut Network,
    ) -> StoreWriteOutcome {
        let line = addr.line();
        let mut data = [0u8; tus_sim::LINE_BYTES];
        write_value(&mut data, addr.line_offset(), size, value);
        let mask = ByteMask::range(addr.line_offset(), size);
        self.write_line_visible(line, &data, mask, now, net)
    }

    /// Writes masked bytes to a line, requiring write permission (the CSB
    /// flush path; also the building block of the baseline path). One call
    /// is one L1D write access regardless of how many stores coalesced
    /// into the mask.
    pub fn write_line_visible(
        &mut self,
        line: LineAddr,
        data: &LineData,
        mask: ByteMask,
        now: Cycle,
        net: &mut Network,
    ) -> StoreWriteOutcome {
        if let Some((set, way)) = self.l1d.lookup(line) {
            // Write permission is a property of the private hierarchy: an
            // L2 copy in M/E authorizes the write even if the L1D tag
            // still says S.
            let l2_writable = self
                .l2
                .lookup(line)
                .is_some_and(|(s2, w2)| self.l2.way(s2, w2).state.can_write());
            let (l, d) = self.l1d.way_and_data_mut(set, way);
            if l.unauth {
                return StoreWriteOutcome::NotYet;
            }
            if l.state.can_write() || (l.state.can_read() && l2_writable) {
                combine(d, data, mask);
                l.state = Mesi::Modified;
                l.dirty = true;
                self.l1d.touch(set, way);
                self.set_l2_state(line, Mesi::Modified);
                self.stats.l1d_writes += 1;
                self.stats.l1d_store_hits += 1;
                self.tardis_store_visible(line, now);
                return StoreWriteOutcome::Done;
            }
        } else if let Some((s2, w2)) = self.l2.lookup(line) {
            if self.l2.way(s2, w2).state.can_write() {
                // Write-allocate into L1D from the L2 and complete the
                // write (the L2 round trip is folded into pipelined store
                // handling).
                self.fill_l1_from_l2(line);
                if let Some((s1, w1)) = self.l1d.lookup(line) {
                    let (l, d) = self.l1d.way_and_data_mut(s1, w1);
                    combine(d, data, mask);
                    l.state = Mesi::Modified;
                    l.dirty = true;
                    self.l1d.touch(s1, w1);
                    self.set_l2_state(line, Mesi::Modified);
                    self.stats.l1d_writes += 1;
                    self.stats.l1d_store_hits += 1;
                    self.tardis_store_visible(line, now);
                    return StoreWriteOutcome::Done;
                }
                // No L1D way could be claimed (fully pinned set): write
                // directly into the L2 copy instead of stalling forever.
                let (l2l, l2d) = self.l2.way_and_data_mut(s2, w2);
                combine(l2d, data, mask);
                l2l.state = Mesi::Modified;
                l2l.dirty = true;
                self.stats.l1d_writes += 1;
                self.tardis_store_visible(line, now);
                return StoreWriteOutcome::Done;
            }
        }
        self.stats.l1d_store_misses += 1;
        self.ensure_write_permission(line, false, now, net);
        StoreWriteOutcome::NotYet
    }

    /// SSB drain: like [`PrivateCache::try_visible_store_write`] but also
    /// writes through to the L2 data array (SSB updates the second-level
    /// cache for each store — its main energy overhead).
    pub fn ssb_store_write(
        &mut self,
        addr: Addr,
        size: usize,
        value: u64,
        now: Cycle,
        net: &mut Network,
    ) -> StoreWriteOutcome {
        let out = self.try_visible_store_write(addr, size, value, now, net);
        if out == StoreWriteOutcome::Done {
            self.stats.ssb_l2_writes += 1;
            let line = addr.line();
            if let (Some((s1, w1)), Some((s2, w2))) = (self.l1d.lookup(line), self.l2.lookup(line))
            {
                let d = *self.l1d.data(s1, w1);
                let (l2l, l2d) = self.l2.way_and_data_mut(s2, w2);
                *l2d = d;
                l2l.dirty = true;
                l2l.state = Mesi::Modified;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // TUS store paths
    // ------------------------------------------------------------------

    /// Classifies the L1D state of `line` for the TUS drain flow (Fig. 7).
    ///
    /// A line with a write-permission request already in flight (e.g.
    /// from prefetch-at-commit) reports as a [`ProbeResult::Miss`]: the
    /// unauthorized write proceeds immediately and the in-flight grant
    /// combines on arrival — this is the paper's "an allocated entry from
    /// the prefetch-at-commit should be found" fast path. Only an
    /// in-flight *read* (GetS) blocks the write.
    pub fn probe(&self, line: LineAddr) -> ProbeResult {
        if let Some((set, way)) = self.l1d.lookup(line) {
            let l = self.l1d.way(set, way);
            if l.locked {
                return ProbeResult::Busy;
            }
            if l.unauth {
                return ProbeResult::HitUnauth {
                    set,
                    way,
                    ready: l.ready,
                };
            }
            return ProbeResult::HitVisible {
                writable: l.state.can_write(),
            };
        }
        if let Some(i) = self.mshr_find(line) {
            if self.outstanding[i].kind == ReqKind::GetS {
                return ProbeResult::Busy;
            }
        }
        ProbeResult::Miss {
            ways_free: self.l1d.free_or_evictable_ways(line),
        }
    }

    /// Writes unauthorized data for a line that misses in the L1D:
    /// allocates a way, writes the masked bytes, marks the line *not
    /// visible*, and requests write permission (paper Fig. 7, left path).
    ///
    /// # Errors
    ///
    /// Fails without side effects when no way can be claimed, a request
    /// for the line is already in flight, or MSHRs are exhausted.
    pub fn unauthorized_alloc(
        &mut self,
        line: LineAddr,
        data: &LineData,
        mask: ByteMask,
        now: Cycle,
        net: &mut Network,
    ) -> Result<(usize, usize), UnauthAllocError> {
        // A write-permission request already in flight (prefetch-at-commit
        // or a previous demand) is reused: the grant combines on arrival.
        let getm_in_flight = match self.mshr_find(line) {
            Some(i) if self.outstanding[i].kind == ReqKind::GetM => true,
            Some(_) => return Err(UnauthAllocError::Outstanding),
            None => false,
        };
        if !getm_in_flight && self.outstanding_live >= self.mshrs {
            return Err(UnauthAllocError::MshrFull);
        }
        debug_assert!(self.l1d.lookup(line).is_none(), "use the hit paths");
        let Some((set, way)) = self.l1d.victim(line) else {
            return Err(UnauthAllocError::NoWay);
        };
        // The L2 may still hold a coherent copy of the line (the L1D copy
        // was evicted): it supplies the base bytes, and its permission is
        // the hierarchy's permission.
        let l2_copy = self.l2.lookup(line).and_then(|(s2, w2)| {
            let l2l = self.l2.way(s2, w2);
            if l2l.state.can_read() {
                Some((l2l.state, *self.l2.data(s2, w2)))
            } else {
                None
            }
        });
        self.evict_l1_way(set, way);
        self.l1d.clear_way(set, way);
        let (l, ld) = self.l1d.way_and_data_mut(set, way);
        l.line = line;
        l.unauth = true;
        l.mask = mask;
        match l2_copy {
            Some((state, base)) => {
                *ld = base;
                combine(ld, data, mask);
                l.state = state;
                l.base_valid = true;
                l.ready = state.can_write();
            }
            None => {
                l.state = Mesi::Invalid;
                l.ready = false;
                l.base_valid = false;
                *ld = *data;
            }
        }
        let ready = l.ready;
        self.l1d.touch(set, way);
        self.stats.unauth_allocs += 1;
        self.stats.l1d_writes += 1;
        if !getm_in_flight && !ready {
            self.mshr_insert(line, ReqKind::GetM, false);
            net.send(
                Node::Core(self.core),
                Node::Dir,
                now,
                Msg::Req {
                    core: self.core,
                    line,
                    kind: ReqKind::GetM,
                    prefetch: false,
                    pts: self.pts,
                },
            );
        }
        Ok((set, way))
    }

    /// Writes more unauthorized bytes into an existing unauthorized line
    /// (the store-cycle case — the line's WOQ entry joins an atomic
    /// group; the policy layer handles the group bookkeeping).
    pub fn unauthorized_coalesce(&mut self, set: usize, way: usize, data: &LineData, mask: ByteMask) {
        let (l, ld) = self.l1d.way_and_data_mut(set, way);
        debug_assert!(l.unauth, "coalesce target must be unauthorized");
        combine(ld, data, mask);
        l.mask = l.mask.union(mask);
        self.l1d.touch(set, way);
        self.stats.l1d_writes += 1;
    }

    /// Writes unauthorized data over a *visible* line (paper Fig. 7 right
    /// path): pushes the current authorized copy to the L2 first when
    /// dirty, then overwrites and hides the line. The line is immediately
    /// *ready* when write permission was already held.
    ///
    /// # Errors
    ///
    /// Fails when write permission is absent and no MSHR is free for the
    /// upgrade request.
    pub fn unauth_write_on_visible_hit(
        &mut self,
        line: LineAddr,
        data: &LineData,
        mask: ByteMask,
        now: Cycle,
        net: &mut Network,
    ) -> Result<(usize, usize), UnauthAllocError> {
        let (set, way) = self.l1d.lookup(line).expect("caller probed a visible hit");
        let needs_request = {
            let l = self.l1d.way(set, way);
            debug_assert!(!l.unauth);
            !l.state.can_write() && !self.mshr_contains(line)
        };
        if needs_request && self.outstanding_live >= self.mshrs {
            return Err(UnauthAllocError::MshrFull);
        }
        // Push the authorized dirty copy down to the L2 so a relinquish
        // can always supply the pre-store version.
        let dirty = self.l1d.way(set, way).dirty;
        if dirty {
            let d = *self.l1d.data(set, way);
            let (s2, w2) = self
                .l2
                .lookup(line)
                .expect("inclusive hierarchy: dirty L1D line present in L2");
            let (l2l, l2d) = self.l2.way_and_data_mut(s2, w2);
            *l2d = d;
            l2l.dirty = true;
            self.stats.l2_updates += 1;
        }
        let can_write = self.l1d.way(set, way).state.can_write();
        let (l, ld) = self.l1d.way_and_data_mut(set, way);
        combine(ld, data, mask);
        l.unauth = true;
        l.mask = mask;
        l.base_valid = true;
        l.dirty = false;
        l.ready = can_write;
        self.l1d.touch(set, way);
        self.stats.l1d_writes += 1;
        if needs_request {
            self.mshr_insert(line, ReqKind::GetM, false);
            net.send(
                Node::Core(self.core),
                Node::Dir,
                now,
                Msg::Req {
                    core: self.core,
                    line,
                    kind: ReqKind::GetM,
                    prefetch: false,
                    pts: self.pts,
                },
            );
        }
        Ok((set, way))
    }

    /// Makes a group of unauthorized lines visible to coherence *at once*
    /// (atomic-group visibility flip — resetting *not visible* bits in
    /// bulk, paper Section IV). Also answers any external requests that
    /// were delayed on these lines.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not an unauthorized, ready line.
    pub fn make_visible(&mut self, coords: &[(usize, usize)], now: Cycle, net: &mut Network) {
        // The whole group flips at one logical instant (see
        // `tardis_group_store_begin`); no-op under MESI.
        if self.tardis {
            let mut floor = 0u64;
            for &(set, way) in coords {
                let line = self.l1d.way(set, way).line;
                floor = floor.max(self.tardis_lease(line).rts + 1);
            }
            self.tardis_advance_pts(floor, now);
        }
        for &(set, way) in coords {
            let (prev, line) = {
                let l = self.l1d.way_mut(set, way);
                assert!(l.unauth && l.ready, "visibility flip requires ready unauthorized lines");
                let prev = l.state;
                l.unauth = false;
                l.ready = false;
                l.mask = ByteMask::EMPTY;
                l.state = Mesi::Modified;
                l.dirty = true;
                l.base_valid = true;
                (prev, l.line)
            };
            self.trace_mesi(line, prev, Mesi::Modified, now);
            // TUS × Tardis visibility rule: an unauthorized line's stores
            // may not become visible at a logical time inside any read
            // lease the line must respect — jump past the tracked rts and
            // restamp the line at the writer's new logical time.
            self.tardis_store_visible(line, now);
        }
        for &(set, way) in coords {
            // All flips precede all answers (a delayed external on one
            // line must observe the whole group visible); the line field
            // is stable, so re-reading it avoids a side list.
            let line = self.l1d.way(set, way).line;
            self.set_l2_state(line, Mesi::Modified);
            // Answer external requests that were explicitly delayed, and
            // also ones still pending a policy decision (the decision was
            // made moot by the visibility flip racing ahead of it).
            if let Some(f) = fwd_remove(&mut self.delayed_fwd, line) {
                self.answer_fwd_visible(line, f, now, net);
            } else if let Some(f) = fwd_remove(&mut self.pending_fwd, line) {
                self.answer_fwd_visible(line, f, now, net);
            }
        }
    }

    /// Records the policy decision to *delay* the external request that
    /// produced an [`CacheEvent::ExternalConflict`]; it will be answered
    /// when the line becomes visible.
    pub fn delay_external(&mut self, line: LineAddr) {
        let f = fwd_remove(&mut self.pending_fwd, line)
            .expect("delay_external without a pending external request");
        self.stats.delayed_externals += 1;
        fwd_insert(&mut self.delayed_fwd, line, f);
    }

    /// Records the policy decision to *relinquish* the unauthorized line:
    /// answers the external request with the old copy held by the private
    /// L2, drops all permission, and keeps the unauthorized bytes + mask
    /// locally for a later retry (paper Fig. 5, steps 7–8).
    pub fn relinquish(&mut self, set: usize, way: usize, now: Cycle, net: &mut Network) {
        let line = self.l1d.way(set, way).line;
        let f = fwd_remove(&mut self.pending_fwd, line)
            .expect("relinquish without a pending external request");
        let (s2, w2) = self
            .l2
            .lookup(line)
            .expect("relinquish requires the L2 old copy");
        let old = net.alloc_data_copy(self.l2.data(s2, w2));
        self.l2.way_mut(s2, w2).clear();
        let prev = {
            let l = self.l1d.way_mut(set, way);
            let prev = l.state;
            l.state = Mesi::Invalid;
            l.ready = false;
            l.base_valid = false;
            l.dirty = false;
            prev
        };
        self.trace_mesi(line, prev, Mesi::Invalid, now);
        self.stats.relinquishes += 1;
        // Loads that read the (previously combined) line must replay: the
        // remote writer will change the base bytes.
        self.events.push(CacheEvent::Invalidated { line });
        let _ = f;
        let lease = self.lease_for_msg(line);
        self.leases.remove(&line);
        net.send(
            Node::Core(self.core),
            Node::Dir,
            now,
            Msg::FwdResp {
                core: self.core,
                line,
                data: Some(old),
                relinquished: true,
                lease,
            },
        );
    }

    /// Re-requests write permission for a relinquished line (issued by the
    /// policy layer once the lex order allows it). Returns `false` when no
    /// MSHR is available or a request is already in flight.
    pub fn request_permission(&mut self, line: LineAddr, now: Cycle, net: &mut Network) -> bool {
        if self.mshr_contains(line) {
            return true;
        }
        if self.outstanding_live >= self.mshrs {
            return false;
        }
        self.mshr_insert(line, ReqKind::GetM, false);
        net.send(
            Node::Core(self.core),
            Node::Dir,
            now,
            Msg::Req {
                core: self.core,
                line,
                kind: ReqKind::GetM,
                prefetch: false,
                pts: self.pts,
            },
        );
        true
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Processes one message from the interconnect.
    pub fn handle_msg(&mut self, msg: Msg, now: Cycle, net: &mut Network) {
        match msg {
            Msg::Grant {
                line,
                state,
                data,
                kind,
                prefetch,
                lease,
            } => self.on_grant(line, state, data, kind, prefetch, lease, now, net),
            Msg::Fwd {
                line,
                kind,
                to_owner,
            } => self.dispatch_fwd(line, kind, to_owner, now, net, true),
            other => unreachable!("controller received {other:?}"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_grant(
        &mut self,
        line: LineAddr,
        state: Mesi,
        data: Option<Box<LineData>>,
        kind: ReqKind,
        prefetch: bool,
        lease: Option<Lease>,
        now: Cycle,
        net: &mut Network,
    ) {
        self.mshr_remove_into_scratch(line);
        // Tardis staleness gate: a read grant whose lease already ended
        // before this core's clock must not bind — a write the reader is
        // ordered after could carry `wts <= pts` without being in this
        // data. Re-issue the GetS with the current `pts` (the home will
        // extend the lease past it); the merged demand waiters stay
        // parked on the fresh MSHR. Write grants are exempt: the owner
        // may read its own modified copy at any clock.
        if self.tardis && kind == ReqKind::GetS {
            let stale = lease.is_some_and(|l| l.rts < self.pts);
            if stale {
                if let Some(d) = data {
                    net.recycle_data(d);
                }
                if prefetch && self.waiter_scratch.is_empty() {
                    // A stale prefetch is simply dropped.
                    return;
                }
                self.stats.lease_renewals += 1;
                let i = self.mshr_insert(line, ReqKind::GetS, prefetch);
                std::mem::swap(&mut self.outstanding[i].waiters, &mut self.waiter_scratch);
                net.send(
                    Node::Core(self.core),
                    Node::Dir,
                    now,
                    Msg::Req {
                        core: self.core,
                        line,
                        kind: ReqKind::GetS,
                        prefetch,
                        pts: self.pts,
                    },
                );
                return;
            }
        }
        self.tardis_record_lease(line, lease);
        let prev = self
            .l1d
            .lookup(line)
            .map(|(s, w)| self.l1d.way(s, w).state)
            .unwrap_or(Mesi::Invalid);
        self.trace_mesi(line, prev, state, now);
        // Unauthorized combine path?
        if let Some((set, way)) = self.l1d.lookup(line) {
            if self.l1d.way(set, way).unauth {
                debug_assert!(state.can_write(), "unauthorized lines request GetM");
                match &data {
                    Some(base) => {
                        let (l, ld) = self.l1d.way_and_data_mut(set, way);
                        let mut merged = **base;
                        combine(&mut merged, ld, l.mask);
                        *ld = merged;
                        l.state = state;
                        l.ready = true;
                        l.base_valid = true;
                        l.granted_at = now;
                        // The L2 keeps the *unmodified* copy for relinquish.
                        self.fill_l2(line, base, state, false, now, net);
                    }
                    None => {
                        let l = self.l1d.way_mut(set, way);
                        debug_assert!(
                            l.base_valid,
                            "permission-only grant requires a valid base copy"
                        );
                        l.state = state;
                        l.ready = true;
                        l.base_valid = true;
                        l.granted_at = now;
                        self.set_l2_state(line, state);
                    }
                }
                if let Some(b) = data {
                    net.recycle_data(b);
                }
                // Demand loads that merged into this request before the
                // unauthorized write happened are program-order-*older*
                // than the store (younger loads are captured by SB/WCB/
                // unauthorized-line forwarding at issue): they must read
                // the PRE-store copy, which the L2 now holds.
                self.tardis_read_touch(line, now);
                let ws = std::mem::take(&mut self.waiter_scratch);
                for w in &ws {
                    let v = self
                        .l2
                        .lookup(line)
                        .map(|(s2, w2)| read_value(self.l2.data(s2, w2), w.offset, w.size))
                        .unwrap_or(0);
                    self.complete_load(w.token, now + self.l1_lat, v);
                }
                self.waiter_scratch = ws;
                self.events.push(CacheEvent::PermissionReady { line, set, way });
                self.wake_unauth_waiters(line, set, way, now);
                return;
            }
        }
        // Normal fill path.
        match data {
            Some(d) => {
                self.fill_l2(line, &d, state, false, now, net);
                if let Some((s1, w1)) = self.l1d.lookup(line) {
                    // The line was still present locally (e.g. an S copy
                    // upgrading through a full-data grant): refresh state
                    // and data in place to keep L1D and L2 consistent.
                    let (l, ld) = self.l1d.way_and_data_mut(s1, w1);
                    if !l.unauth {
                        l.state = state;
                        *ld = *d;
                        l.dirty = false;
                    }
                    l.granted_at = now;
                } else {
                    self.fill_l1_from_l2(line);
                    if let Some((s1, w1)) = self.l1d.lookup(line) {
                        self.l1d.way_mut(s1, w1).granted_at = now;
                    }
                }
                net.recycle_data(d);
            }
            None => {
                // Permission-only upgrade: local copies become writable.
                self.set_l2_state(line, state);
                if let Some((s, w)) = self.l1d.lookup(line) {
                    let l = self.l1d.way_mut(s, w);
                    l.state = state;
                    l.granted_at = now;
                }
            }
        }
        if !self.waiter_scratch.is_empty() {
            self.tardis_read_touch(line, now);
        }
        let ws = std::mem::take(&mut self.waiter_scratch);
        for w in &ws {
            let v = self.read_local(line, w.offset, w.size);
            self.complete_load(w.token, now + self.l1_lat, v);
        }
        self.waiter_scratch = ws;
    }

    fn park_unauth_waiter(&mut self, line: LineAddr, w: Waiter) {
        if let Some(s) = self
            .unauth_waiters
            .iter_mut()
            .find(|s| s.live && s.line == line)
        {
            s.waiters.push(w);
            return;
        }
        if let Some(s) = self.unauth_waiters.iter_mut().find(|s| !s.live) {
            s.live = true;
            s.line = line;
            debug_assert!(s.waiters.is_empty());
            s.waiters.push(w);
            return;
        }
        self.unauth_waiters.push(UnauthWaitSlot {
            live: true,
            line,
            waiters: vec![w],
        });
    }

    fn wake_unauth_waiters(&mut self, line: LineAddr, set: usize, way: usize, now: Cycle) {
        let Some(i) = self
            .unauth_waiters
            .iter()
            .position(|s| s.live && s.line == line)
        else {
            return;
        };
        self.unauth_waiters[i].live = false;
        self.waiter_scratch.clear();
        std::mem::swap(&mut self.waiter_scratch, &mut self.unauth_waiters[i].waiters);
        let ws = std::mem::take(&mut self.waiter_scratch);
        for w in &ws {
            let v = read_value(self.l1d.data(set, way), w.offset, w.size);
            self.complete_load(w.token, now + self.l1_lat, v);
        }
        self.waiter_scratch = ws;
    }

    fn read_local(&self, line: LineAddr, offset: usize, size: usize) -> u64 {
        if let Some((s, w)) = self.l1d.lookup(line) {
            return read_value(self.l1d.data(s, w), offset, size);
        }
        if let Some((s, w)) = self.l2.lookup(line) {
            return read_value(self.l2.data(s, w), offset, size);
        }
        0
    }

    // ------------------------------------------------------------------
    // Tardis logical-timestamp bookkeeping (all no-ops under MESI)
    // ------------------------------------------------------------------

    /// The lease this hierarchy holds for `line` (0,0 when untracked).
    #[inline]
    fn tardis_lease(&self, line: LineAddr) -> Lease {
        self.leases
            .get(&line)
            .copied()
            .unwrap_or(Lease { wts: 0, rts: 0 })
    }

    /// The lease to report to the directory on FwdResp/Evict messages.
    #[inline]
    fn lease_for_msg(&self, line: LineAddr) -> Option<Lease> {
        if self.tardis {
            self.leases.get(&line).copied()
        } else {
            None
        }
    }

    /// Records the lease a grant arrived with (component-wise max against
    /// anything already tracked).
    fn tardis_record_lease(&mut self, line: LineAddr, lease: Option<Lease>) {
        if !self.tardis {
            return;
        }
        let Some(l) = lease else { return };
        let e = self.leases.entry(line).or_insert(Lease { wts: 0, rts: 0 });
        e.wts = e.wts.max(l.wts);
        e.rts = e.rts.max(l.rts);
    }

    /// Advances `pts` on a read of `line` (a read observes the line's
    /// last write, so the clock moves to at least `wts`).
    #[inline]
    fn tardis_read_touch(&mut self, line: LineAddr, now: Cycle) {
        if self.tardis {
            let wts = self.tardis_lease(line).wts;
            self.tardis_advance_pts(wts, now);
        }
    }

    /// The TUS × Tardis visibility rule — the unauthorized-line/lease
    /// interaction this backend exists to study: a store (a visibility
    /// flip included) may not land at a logical time covered by any read
    /// lease the line must respect, so the writer jumps to
    /// `pts = max(pts, rts + 1)` and restamps the line `(wts, rts) =
    /// (pts, pts)`. Called on every path that makes bytes visible to
    /// coherence.
    fn tardis_store_visible(&mut self, line: LineAddr, now: Cycle) {
        if !self.tardis {
            return;
        }
        let rts = self.tardis_lease(line).rts;
        self.tardis_advance_pts(rts + 1, now);
        let pts = self.pts;
        self.leases.insert(line, Lease { wts: pts, rts: pts });
    }

    /// Whether this controller runs the Tardis timestamp backend. The
    /// system tick uses this to deliver expiry-sweep events generated by
    /// the store drain in the *same* cycle (before commit); MESI keeps
    /// its original one-cycle event delivery.
    pub fn is_tardis(&self) -> bool {
        self.tardis
    }

    /// TUS × Tardis atomic-group rule: a fused store group becomes
    /// visible at *one* logical instant, so before any member is written
    /// the clock jumps past every member line's read lease; the per-line
    /// restamps that follow all land at the same `pts`. Stamping members
    /// sequentially instead would place early members at a logical time
    /// *before* older stores that fused later members into the group —
    /// exactly the coalescing reordering TSO forbids (a reader could then
    /// observe the merged value of an early member while a lease still
    /// entitles it to pre-group values of a later member).
    pub fn tardis_group_store_begin<I>(&mut self, lines: I, now: Cycle)
    where
        I: IntoIterator<Item = LineAddr>,
    {
        if !self.tardis {
            return;
        }
        let mut floor = 0u64;
        for line in lines {
            floor = floor.max(self.tardis_lease(line).rts + 1);
        }
        self.tardis_advance_pts(floor, now);
    }

    /// Advances the logical clock to `candidate` (if ahead) and performs
    /// the **eager self-downgrade sweep**: every plain shared copy whose
    /// lease ended before the new `pts` is dropped *now*, emitting
    /// [`CacheEvent::Invalidated`] so speculatively bound loads replay.
    ///
    /// Eagerness is load-bearing for TSO: Tardis sends no invalidations,
    /// so an expired copy that lingered would never trigger the machine
    /// clear that x86-style load→load ordering relies on. Expiring at the
    /// clock edge reuses the exact replay machinery invalidations drive
    /// under MESI.
    fn tardis_advance_pts(&mut self, candidate: u64, now: Cycle) {
        if !self.tardis || candidate <= self.pts {
            return;
        }
        self.pts = candidate;
        let mut expired = std::mem::take(&mut self.expire_scratch);
        expired.clear();
        expired.extend(
            self.leases
                .iter()
                .filter(|(_, l)| l.rts < self.pts)
                .map(|(&line, _)| line),
        );
        // Deterministic sweep order regardless of hash-map iteration.
        expired.sort_by_key(|l| l.raw());
        for &line in &expired {
            self.tardis_expire(line, now);
        }
        self.expire_scratch = expired;
    }

    /// Drops one expired copy, unless the line is exempt: owned (M/E —
    /// the owner is the timestamp authority and never self-downgrades),
    /// unauthorized or locked (woven into the TUS machinery), or mid-
    /// upgrade (an MSHR in flight will refresh the lease on grant).
    fn tardis_expire(&mut self, line: LineAddr, now: Cycle) {
        if self.hierarchy_writable(line) {
            // Owned copies never expire; refresh the tracked pair so the
            // sweep does not flag them again.
            if let Some(l) = self.leases.get_mut(&line) {
                l.rts = l.rts.max(self.pts);
            }
            return;
        }
        let unauth_or_locked = self.l1d.lookup(line).is_some_and(|(s, w)| {
            let l = self.l1d.way(s, w);
            l.unauth || l.locked
        });
        if unauth_or_locked || self.mshr_contains(line) {
            return;
        }
        let mut held = false;
        if let Some((s, w)) = self.l1d.lookup(line) {
            let prev = self.l1d.way(s, w).state;
            self.trace_mesi(line, prev, Mesi::Invalid, now);
            self.l1d.way_mut(s, w).clear();
            held = true;
        }
        if let Some((s, w)) = self.l2.lookup(line) {
            self.l2.way_mut(s, w).clear();
            held = true;
        }
        self.leases.remove(&line);
        if held {
            // Semantically a silent PutS: the home tracks no sharers, so
            // no message is sent — only the local replay machinery fires.
            self.stats.lease_expiries += 1;
            self.events.push(CacheEvent::Invalidated { line });
        }
    }

    /// Grant-hold window in cycles: an external request arriving within
    /// this many cycles of the line's grant is deferred so the local
    /// drain performs at least one write per acquisition (prevents
    /// write-permission livelock under heavy contention).
    const GRANT_HOLD: u64 = 8;

    fn dispatch_fwd(
        &mut self,
        line: LineAddr,
        kind: FwdKind,
        to_owner: bool,
        now: Cycle,
        net: &mut Network,
        fresh: bool,
    ) {
        if fresh {
            if let Some((s, w)) = self.l1d.lookup(line) {
                let granted = self.l1d.way(s, w).granted_at;
                let hold_until = granted + Self::GRANT_HOLD;
                if granted > Cycle::ZERO && now < hold_until {
                    self.deferred_fwd.push(hold_until, (line, kind, to_owner));
                    return;
                }
            }
        }
        self.on_fwd(line, kind, to_owner, now, net);
    }

    fn on_fwd(&mut self, line: LineAddr, kind: FwdKind, to_owner: bool, now: Cycle, net: &mut Network) {
        self.stats.invs_received += 1;
        if let Some((set, way)) = self.l1d.lookup(line) {
            let (unauth, writable) = {
                let l = self.l1d.way(set, way);
                (l.unauth, l.state.can_write())
            };
            if unauth {
                if writable {
                    // The TUS conflict case: consult the authorization unit.
                    fwd_insert(&mut self.pending_fwd, line, PendingFwd { kind, to_owner });
                    self.events.push(CacheEvent::ExternalConflict {
                        line,
                        set,
                        way,
                        kind: ConflictKind::from(kind),
                    });
                    return;
                }
                // Unauthorized over a shared (or already lost) base copy:
                // surrender the base, keep the unauthorized bytes.
                let l = self.l1d.way_mut(set, way);
                l.state = Mesi::Invalid;
                l.base_valid = false;
                l.ready = false;
                if let Some((s2, w2)) = self.l2.lookup(line) {
                    self.l2.way_mut(s2, w2).clear();
                }
                self.events.push(CacheEvent::Invalidated { line });
                self.respond_fwd(line, None, to_owner, now, net);
                self.leases.remove(&line);
                return;
            }
        }
        self.answer_fwd_visible(line, PendingFwd { kind, to_owner }, now, net);
    }

    /// Answers a forward targeting a visible (or absent) line.
    fn answer_fwd_visible(&mut self, line: LineAddr, f: PendingFwd, now: Cycle, net: &mut Network) {
        let l1 = self.l1d.lookup(line);
        let l2 = self.l2.lookup(line);
        // Newest data wins: a dirty L1D copy over the L2 copy.
        let data: Option<Box<LineData>> = match (l1, l2) {
            (Some((s, w)), _) if self.l1d.way(s, w).state.can_read() => {
                Some(net.alloc_data_copy(self.l1d.data(s, w)))
            }
            (_, Some((s, w))) if self.l2.way(s, w).state.can_read() => {
                Some(net.alloc_data_copy(self.l2.data(s, w)))
            }
            _ => None,
        };
        if let Some((s, w)) = l1 {
            let prev = self.l1d.way(s, w).state;
            let to = match f.kind {
                FwdKind::Inv => Mesi::Invalid,
                FwdKind::Downgrade => Mesi::Shared,
            };
            self.trace_mesi(line, prev, to, now);
        }
        match f.kind {
            FwdKind::Inv => {
                if let Some((s, w)) = l1 {
                    self.l1d.way_mut(s, w).clear();
                }
                if let Some((s, w)) = l2 {
                    self.l2.way_mut(s, w).clear();
                }
                if l1.is_some() || l2.is_some() {
                    self.events.push(CacheEvent::Invalidated { line });
                }
                self.respond_fwd(line, data, f.to_owner, now, net);
                self.leases.remove(&line);
            }
            FwdKind::Downgrade => {
                if let Some((s, w)) = l1 {
                    let l = self.l1d.way_mut(s, w);
                    l.state = Mesi::Shared;
                    l.dirty = false;
                }
                if let Some((s, w)) = l2 {
                    let l = self.l2.way_mut(s, w);
                    l.state = Mesi::Shared;
                    l.dirty = false;
                }
                self.respond_fwd(line, data, f.to_owner, now, net);
            }
        }
    }

    fn respond_fwd(
        &mut self,
        line: LineAddr,
        data: Option<Box<LineData>>,
        to_owner: bool,
        now: Cycle,
        net: &mut Network,
    ) {
        let msg = if to_owner {
            Msg::FwdResp {
                core: self.core,
                line,
                data,
                relinquished: false,
                lease: self.lease_for_msg(line),
            }
        } else {
            Msg::InvAck {
                core: self.core,
                line,
            }
        };
        net.send(Node::Core(self.core), Node::Dir, now, msg);
    }

    // ------------------------------------------------------------------
    // Fills and evictions
    // ------------------------------------------------------------------

    fn set_l2_state(&mut self, line: LineAddr, state: Mesi) {
        if let Some((s, w)) = self.l2.lookup(line) {
            self.l2.way_mut(s, w).state = state;
        }
    }

    /// Copies a line from the L2 into the L1D if a way can be claimed
    /// (victims are written back into the L2).
    fn fill_l1_from_l2(&mut self, line: LineAddr) {
        if self.l1d.lookup(line).is_some() {
            return;
        }
        let Some((s2, w2)) = self.l2.lookup(line) else {
            return;
        };
        let (data, state) = (*self.l2.data(s2, w2), self.l2.way(s2, w2).state);
        let Some((set, way)) = self.l1d.victim(line) else {
            return; // Served without allocating; no retry needed.
        };
        self.evict_l1_way(set, way);
        self.l1d.clear_way(set, way);
        let (l, ld) = self.l1d.way_and_data_mut(set, way);
        l.line = line;
        l.state = state;
        *ld = data;
        self.l1d.touch(set, way);
    }

    /// Writes an L1D victim back into the L2 (inclusive hierarchy) and
    /// clears the way. No-op for empty ways.
    fn evict_l1_way(&mut self, set: usize, way: usize) {
        let (occupied, dirty, line) = {
            let l = self.l1d.way(set, way);
            (l.occupied(), l.dirty, l.line)
        };
        if !occupied {
            return;
        }
        debug_assert!(self.l1d.way(set, way).evictable(), "evicting a pinned way");
        if dirty {
            let data = *self.l1d.data(set, way);
            let (s2, w2) = self
                .l2
                .lookup(line)
                .expect("inclusive hierarchy: L1D victim present in L2");
            let (l2l, l2d) = self.l2.way_and_data_mut(s2, w2);
            *l2d = data;
            l2l.dirty = true;
            l2l.state = Mesi::Modified;
        }
        self.l1d.clear_way(set, way);
    }

    /// Installs a line into the L2, evicting as needed (an L2 victim whose
    /// L1D copy is unauthorized is never chosen — the NACK-refresh rule).
    fn fill_l2(
        &mut self,
        line: LineAddr,
        data: &LineData,
        state: Mesi,
        dirty: bool,
        now: Cycle,
        net: &mut Network,
    ) {
        if let Some((s, w)) = self.l2.lookup(line) {
            let (l, ld) = self.l2.way_and_data_mut(s, w);
            *ld = *data;
            l.state = state;
            l.dirty = dirty;
            self.l2.touch(s, w);
            return;
        }
        let set = self.l2.set_of(line);
        // Victim selection honoring the L1D pin: skip ways whose L1D copy
        // is not evictable.
        let mut victim: Option<(usize, u64)> = None;
        let mut empty: Option<usize> = None;
        for w in 0..self.l2.ways() {
            let l = self.l2.way(set, w);
            if !l.occupied() {
                empty = Some(w);
                break;
            }
            let pinned = self
                .l1d
                .lookup(l.line)
                .is_some_and(|(s1, w1)| !self.l1d.way(s1, w1).evictable());
            if pinned {
                continue;
            }
            let stamp = self.l2.lru_stamp(set, w);
            if victim.is_none_or(|(_, lru)| stamp < lru) {
                victim = Some((w, stamp));
            }
        }
        let w = match (empty, victim) {
            (Some(w), _) => w,
            (None, Some((w, _))) => {
                self.evict_l2_way(set, w, now, net);
                w
            }
            (None, None) => {
                unreachable!(
                    "L2 set fully pinned by unauthorized L1D lines; the lex \
                     sub-address and group-size rules prevent this"
                )
            }
        };
        self.l2.clear_way(set, w);
        let (l, ld) = self.l2.way_and_data_mut(set, w);
        l.line = line;
        l.state = state;
        l.dirty = dirty;
        *ld = *data;
        self.l2.touch(set, w);
    }

    /// Invalidates the L1D copy (merging dirty data), notifies the
    /// directory, and clears the L2 way.
    fn evict_l2_way(&mut self, set: usize, way: usize, now: Cycle, net: &mut Network) {
        let (line, mut data, mut dirty, state) = {
            let l = self.l2.way(set, way);
            (l.line, *self.l2.data(set, way), l.dirty, l.state)
        };
        if let Some((s1, w1)) = self.l1d.lookup(line) {
            let l1 = self.l1d.way(s1, w1);
            debug_assert!(l1.evictable(), "pinned line chosen as L2 victim");
            if l1.dirty {
                data = *self.l1d.data(s1, w1);
                dirty = true;
            }
            self.l1d.clear_way(s1, w1);
        }
        self.l2.clear_way(set, way);
        if state != Mesi::Invalid {
            self.stats.l2_evictions += 1;
            let payload = if dirty {
                Some(net.alloc_data_copy(&data))
            } else {
                None
            };
            let lease = self.lease_for_msg(line);
            self.leases.remove(&line);
            net.send(
                Node::Core(self.core),
                Node::Dir,
                now,
                Msg::Evict {
                    core: self.core,
                    line,
                    data: payload,
                    lease,
                },
            );
        } else if self.tardis {
            self.leases.remove(&line);
        }
    }

    /// Exports per-core memory statistics.
    pub fn export_stats(&self) -> StatSet {
        let s = &self.stats;
        let mut out = StatSet::new();
        out.set("loads", s.loads as f64);
        out.set(names::L1D_LOAD_HITS, s.l1d_load_hits as f64);
        out.set(names::L1D_LOAD_MISSES, s.l1d_load_misses as f64);
        out.set("l2_load_hits", s.l2_load_hits as f64);
        out.set("l2_load_misses", s.l2_load_misses as f64);
        out.set("loads_blocked_unauth", s.loads_blocked_unauth as f64);
        out.set("l1d_unauth_forwards", s.l1d_unauth_forwards as f64);
        out.set(names::L1D_WRITES, s.l1d_writes as f64);
        out.set("l1d_store_hits", s.l1d_store_hits as f64);
        out.set("l1d_store_misses", s.l1d_store_misses as f64);
        out.set("l2_updates", s.l2_updates as f64);
        out.set("ssb_l2_writes", s.ssb_l2_writes as f64);
        out.set("unauth_allocs", s.unauth_allocs as f64);
        out.set("relinquishes", s.relinquishes as f64);
        out.set("delayed_externals", s.delayed_externals as f64);
        out.set("prefetches", s.prefetches as f64);
        out.set("invs_received", s.invs_received as f64);
        out.set("l2_evictions", s.l2_evictions as f64);
        out
    }
}

impl Schedulable for PrivateCache {
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        // Undelivered events must reach the policy/core layer next tick.
        if !self.events.is_empty() {
            return Some(now);
        }
        // The controller's own tick only drains the deferred-forward
        // queue; everything else advances on inbound messages (tracked by
        // the network) or on policy calls (tracked by the policy layer).
        self.deferred_fwd.next_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MemorySystem;
    use tus_sim::{SimConfig, SimRng};

    fn sys(cores: usize) -> MemorySystem {
        let cfg = SimConfig::builder()
            .cores(cores)
            .scale_caches_down(64)
            .build();
        MemorySystem::new(&cfg, &mut SimRng::seed(7))
    }

    fn settle(s: &mut MemorySystem, from: u64, budget: u64) -> u64 {
        for t in from..from + budget {
            s.tick(Cycle::new(t));
            if s.quiesced() {
                return t + 1;
            }
        }
        panic!("memory system did not settle");
    }

    fn full_mask() -> ByteMask {
        ByteMask::FULL
    }

    fn line_data(b: u8) -> LineData {
        [b; tus_sim::LINE_BYTES]
    }

    #[test]
    fn unauthorized_alloc_combines_on_grant() {
        let mut s = sys(1);
        let line = LineAddr::new(0x400);
        // Pre-set memory so the combine has a visible base.
        let mut base = line_data(0xBB);
        base[0] = 0x01;
        s.memory.write(line, &base);
        let mask = ByteMask::range(8, 8);
        let mut data = line_data(0);
        data[8..16].copy_from_slice(&[0xEE; 8]);
        let (set, way) = s.ctrls[0]
            .unauthorized_alloc(line, &data, mask, Cycle::ZERO, &mut s.net)
            .expect("allocates");
        assert_eq!(
            s.ctrls[0].line_state(line),
            Some((Mesi::Invalid, true, false))
        );
        let t = settle(&mut s, 0, 5_000);
        // Permission arrived: ready, combined, PermissionReady emitted.
        let evs = s.ctrls[0].take_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, CacheEvent::PermissionReady { .. })));
        let (st, unauth, ready) = s.ctrls[0].line_state(line).expect("present");
        assert!(st.can_write() && unauth && ready);
        // Combined data: written bytes win, base bytes preserved.
        let probe = s.ctrls[0].probe(line);
        let (pset, pway) = match probe {
            ProbeResult::HitUnauth { set, way, .. } => (set, way),
            other => panic!("expected unauth hit, got {other:?}"),
        };
        assert_eq!((pset, pway), (set, way));
        // Make it visible and check the coherent view.
        s.ctrls[0].make_visible(&[(set, way)], Cycle::new(t), &mut s.net);
        let (st, unauth, _) = s.ctrls[0].line_state(line).expect("present");
        assert_eq!(st, Mesi::Modified);
        assert!(!unauth);
        let (_, d) = s.ctrls[0].peek_line(line).expect("coherent now");
        assert_eq!(d[0], 0x01, "base byte preserved");
        assert_eq!(d[8], 0xEE, "written byte combined");
    }

    #[test]
    fn unauthorized_line_never_evicted() {
        let mut s = sys(1);
        let cfg_ways = s.ctrls[0].l1d.ways();
        let line = LineAddr::new(0x100);
        s.ctrls[0]
            .unauthorized_alloc(line, &line_data(1), full_mask(), Cycle::ZERO, &mut s.net)
            .expect("allocates");
        let set = s.ctrls[0].l1d_set_of(line);
        // Fill the rest of the set with visible lines; the unauth way must
        // survive every eviction.
        let sets = s.ctrls[0].l1d.sets() as u64;
        for i in 1..(cfg_ways as u64 * 3) {
            let other = LineAddr::new(line.raw() + i * sets);
            assert_eq!(s.ctrls[0].l1d_set_of(other), set);
            let mut t = 10 * i;
            loop {
                s.tick(Cycle::new(t));
                let (ctrl, net) = (&mut s.ctrls[0], &mut s.net);
                if ctrl.try_visible_store_write(other.base_addr(), 8, i, Cycle::new(t), net)
                    == StoreWriteOutcome::Done
                {
                    break;
                }
                t += 1;
                assert!(t < 10 * i + 5_000, "store write stuck");
            }
        }
        let (_, unauth, _) = s.ctrls[0].line_state(line).expect("still present");
        assert!(unauth, "unauthorized line was evicted");
    }

    #[test]
    fn external_conflict_event_and_delay_path() {
        let mut s = sys(2);
        let line = LineAddr::new(0x880);
        // Core 0 writes unauthorized and acquires permission.
        let (set, way) = s.ctrls[0]
            .unauthorized_alloc(line, &line_data(7), full_mask(), Cycle::ZERO, &mut s.net)
            .expect("allocates");
        let t = settle(&mut s, 0, 5_000);
        s.ctrls[0].take_events();
        // Core 1 wants the line.
        {
            let (ctrl, net) = (&mut s.ctrls[1], &mut s.net);
            ctrl.load(line.base_addr(), 8, 42, Cycle::new(t), net);
        }
        // Run until core 0 sees the conflict.
        let mut conflict_at = None;
        for tt in t..t + 5_000 {
            s.tick(Cycle::new(tt));
            let evs = s.ctrls[0].take_events();
            if evs
                .iter()
                .any(|e| matches!(e, CacheEvent::ExternalConflict { .. }))
            {
                conflict_at = Some(tt);
                break;
            }
        }
        let tt = conflict_at.expect("conflict event delivered");
        // Policy decision: delay. The requester is answered at visibility.
        s.ctrls[0].delay_external(line);
        s.ctrls[0].make_visible(&[(set, way)], Cycle::new(tt), &mut s.net);
        let mut done = false;
        for t3 in tt..tt + 5_000 {
            s.tick(Cycle::new(t3));
            for e in s.ctrls[1].take_events() {
                if let CacheEvent::LoadDone { token: 42, value, .. } = e {
                    assert_eq!(value, u64::from_le_bytes([7; 8]));
                    done = true;
                }
            }
            if done {
                break;
            }
        }
        assert!(done, "delayed request never answered");
        assert_eq!(s.ctrls[0].stats.delayed_externals, 1);
    }

    #[test]
    fn relinquish_supplies_old_copy_and_rerequest_combines() {
        let mut s = sys(2);
        let line = LineAddr::new(0xCC0);
        // Establish a base value in memory via core 1.
        let mut t = 0;
        loop {
            s.tick(Cycle::new(t));
            let (ctrl, net) = (&mut s.ctrls[1], &mut s.net);
            if ctrl.try_visible_store_write(line.base_addr(), 8, 0x1111, Cycle::new(t), net)
                == StoreWriteOutcome::Done
            {
                break;
            }
            t += 1;
            assert!(t < 10_000);
        }
        let t = settle(&mut s, t, 10_000);
        // Core 0 writes byte 32..40 unauthorized and acquires M.
        let mask = ByteMask::range(32, 8);
        let mut data = line_data(0);
        data[32..40].copy_from_slice(&0x2222u64.to_le_bytes());
        let (set, way) = s.ctrls[0]
            .unauthorized_alloc(line, &data, mask, Cycle::new(t), &mut s.net)
            .expect("allocates");
        let t = settle(&mut s, t, 10_000);
        s.ctrls[0].take_events();
        // Core 1 requests write permission; core 0 relinquishes.
        {
            let (ctrl, net) = (&mut s.ctrls[1], &mut s.net);
            ctrl.ensure_write_permission(line, false, Cycle::new(t), net);
        }
        let mut tt = t;
        'outer: for t2 in t..t + 10_000 {
            s.tick(Cycle::new(t2));
            for e in s.ctrls[0].take_events() {
                if matches!(e, CacheEvent::ExternalConflict { .. }) {
                    s.ctrls[0].relinquish(set, way, Cycle::new(t2), &mut s.net);
                    tt = t2;
                    break 'outer;
                }
            }
        }
        let tt = settle(&mut s, tt, 10_000);
        // Core 1 got the line with the OLD data (0x1111 at offset 0).
        let (st1, _, _) = s.ctrls[1].line_state(line).expect("granted");
        assert!(st1.can_write());
        let (_, d1) = s.ctrls[1].peek_line(line).expect("readable");
        assert_eq!(u64::from_le_bytes(d1[0..8].try_into().expect("8")), 0x1111);
        assert_eq!(d1[32], 0, "core 0's unauthorized bytes must not leak");
        // Core 0 still holds its unauthorized bytes, not ready.
        let (st0, unauth0, ready0) = s.ctrls[0].line_state(line).expect("kept");
        assert_eq!(st0, Mesi::Invalid);
        assert!(unauth0 && !ready0);
        // Re-request: core 0 combines over core 1's (unchanged) data.
        assert!(s.ctrls[0].request_permission(line, Cycle::new(tt), &mut s.net));
        let _ = settle(&mut s, tt, 10_000);
        let (_, _, ready0) = s.ctrls[0].line_state(line).expect("kept");
        assert!(ready0, "re-request must complete the combine");
    }

    #[test]
    fn ssb_write_updates_l2_counters() {
        let mut s = sys(1);
        let a = Addr::new(0x3000);
        let mut t = 0;
        loop {
            s.tick(Cycle::new(t));
            let (ctrl, net) = (&mut s.ctrls[0], &mut s.net);
            if ctrl.ssb_store_write(a, 8, 5, Cycle::new(t), net) == StoreWriteOutcome::Done {
                break;
            }
            t += 1;
            assert!(t < 10_000);
        }
        assert_eq!(s.ctrls[0].stats.ssb_l2_writes, 1);
    }

    #[test]
    fn probe_classifies_states() {
        let mut s = sys(1);
        let line = LineAddr::new(0x40);
        assert!(matches!(s.ctrls[0].probe(line), ProbeResult::Miss { .. }));
        s.ctrls[0]
            .unauthorized_alloc(line, &line_data(3), full_mask(), Cycle::ZERO, &mut s.net)
            .expect("allocates");
        assert!(matches!(
            s.ctrls[0].probe(line),
            ProbeResult::HitUnauth { ready: false, .. }
        ));
        let t = settle(&mut s, 0, 5_000);
        assert!(matches!(
            s.ctrls[0].probe(line),
            ProbeResult::HitUnauth { ready: true, .. }
        ));
        let (set, way) = match s.ctrls[0].probe(line) {
            ProbeResult::HitUnauth { set, way, .. } => (set, way),
            _ => unreachable!(),
        };
        s.ctrls[0].make_visible(&[(set, way)], Cycle::new(t), &mut s.net);
        assert!(matches!(
            s.ctrls[0].probe(line),
            ProbeResult::HitVisible { writable: true }
        ));
    }

    #[test]
    fn coalesce_extends_mask() {
        let mut s = sys(1);
        let line = LineAddr::new(0x200);
        let (set, way) = s.ctrls[0]
            .unauthorized_alloc(line, &line_data(1), ByteMask::range(0, 8), Cycle::ZERO, &mut s.net)
            .expect("allocates");
        let mut more = line_data(2);
        more[8] = 0x22;
        s.ctrls[0].unauthorized_coalesce(set, way, &more, ByteMask::range(8, 8));
        let l = s.ctrls[0].l1d.way(set, way);
        assert!(l.mask.covers(0, 16));
        let d = s.ctrls[0].l1d.data(set, way);
        assert_eq!(d[0], 1);
        assert_eq!(d[8], 0x22);
        assert_eq!(s.ctrls[0].stats.l1d_writes, 2);
    }
}
