//! The `tus-harness fuzz` subcommand: differential TSO fuzzing at scale.
//!
//! Drives [`tus_tso::fuzz`] from the command line: generates `--programs`
//! random litmus cases (deterministically from `--seed`), checks each one
//! across all five drain policies × `--seeds` timing variations against
//! the axiomatic x86-TSO reference model, shrinks any failure, and
//! persists both the original and the shrunk counterexample under
//! `<out>/fuzz-corpus/` as replayable text files (`--replay FILE`).
//!
//! The sweep fans out over a scoped-thread worker pool (`--jobs`);
//! results are keyed by program index, so generation — and therefore
//! every finding — is independent of scheduling.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use tus_sim::{CoherenceKind, KernelKind, PolicyKind, SimRng};
use tus_tso::fuzz::{
    check_case_matrix, check_policy_matrix, decode_case, encode_case, generate_case,
    shrink_case_matrix, CaseFailure, FailureKind, FuzzCase,
};

use crate::executor::Executor;

/// Parsed `fuzz` subcommand options.
#[derive(Debug)]
pub struct FuzzOptions {
    /// Number of random programs to generate and check.
    pub programs: u64,
    /// Timing seeds per (program, policy) pair.
    pub seeds: u64,
    /// Base seed: the whole sweep is a pure function of it.
    pub base_seed: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Restrict the differential check to one policy (default: all five).
    pub policy: Option<PolicyKind>,
    /// Output directory; counterexamples land in `<out>/fuzz-corpus/`.
    pub out: PathBuf,
    /// Replay a persisted corpus file instead of generating programs.
    pub replay: Option<PathBuf>,
    /// Generate and persist N check-bounded seed-corpus cases (≤3
    /// threads, ≤8 ops) under `<out>/fuzz-corpus/`, then exit — the
    /// committed corpus `tus-harness check --corpus` sweeps in CI is
    /// produced this way.
    pub save_corpus: u64,
    /// Whether to shrink failures before reporting (`--no-shrink` off).
    pub shrink: bool,
    /// Simulation kernel the sweep runs under (`--kernel`); verdicts must
    /// not depend on it, so sweeping both kernels is itself a check.
    pub kernel: KernelKind,
    /// Coherence backend the sweep runs under (`--coherence`). TSO
    /// conformance must hold under *every* backend, so a tardis sweep is
    /// a first-class leg of the differential matrix, not a variant.
    pub coherence: CoherenceKind,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            programs: 500,
            seeds: 16,
            base_seed: 0,
            jobs: Executor::default_jobs(),
            policy: None,
            out: PathBuf::from("results"),
            replay: None,
            save_corpus: 0,
            shrink: true,
            kernel: KernelKind::default(),
            coherence: CoherenceKind::default(),
        }
    }
}

fn fuzz_usage() -> ! {
    eprintln!(
        "usage: tus-harness fuzz [--programs N] [--seeds N] [--seed N] [--jobs N]\n\
         \x20                      [--policy base|SSB|CSB|SPB|TUS] [--out DIR]\n\
         \x20                      [--replay FILE] [--save-corpus N] [--no-shrink]\n\
         \x20                      [--kernel lockstep|skip|event]\n\
         \x20                      [--coherence mesi|tardis] [--trace]\n\
         checks N random litmus programs across all five policies against the\n\
         x86-TSO reference model; failures are shrunk and persisted under\n\
         <out>/fuzz-corpus/ as replayable files"
    );
    std::process::exit(2);
}

fn parse_policy(label: &str) -> Option<PolicyKind> {
    PolicyKind::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(label))
}

/// Parses the arguments following the `fuzz` keyword.
pub fn parse_fuzz_args(args: &[String]) -> FuzzOptions {
    let mut opt = FuzzOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("fuzz: {name} needs a number");
                    fuzz_usage()
                })
        };
        match a.as_str() {
            "--programs" => opt.programs = num("--programs"),
            "--seeds" => opt.seeds = num("--seeds").max(1),
            "--seed" => opt.base_seed = num("--seed"),
            "--jobs" => opt.jobs = (num("--jobs") as usize).max(1),
            "--policy" => {
                let label = it.next().unwrap_or_else(|| fuzz_usage());
                opt.policy = Some(parse_policy(label).unwrap_or_else(|| {
                    eprintln!("fuzz: unknown policy {label:?}");
                    fuzz_usage()
                }));
            }
            "--out" => opt.out = it.next().unwrap_or_else(|| fuzz_usage()).into(),
            "--replay" => opt.replay = Some(it.next().unwrap_or_else(|| fuzz_usage()).into()),
            "--save-corpus" => opt.save_corpus = num("--save-corpus"),
            "--no-shrink" => opt.shrink = false,
            "--trace" => tus::set_trace_default(true),
            "--kernel" => {
                let label = it.next().unwrap_or_else(|| fuzz_usage());
                opt.kernel = KernelKind::parse(label).unwrap_or_else(|| {
                    eprintln!("fuzz: unknown kernel {label:?}");
                    fuzz_usage()
                });
            }
            "--coherence" => {
                let label = it.next().unwrap_or_else(|| fuzz_usage());
                opt.coherence = CoherenceKind::parse(label).unwrap_or_else(|| {
                    eprintln!("fuzz: unknown coherence backend {label:?}");
                    fuzz_usage()
                });
            }
            _ => fuzz_usage(),
        }
    }
    opt
}

/// The RNG for program `index`: index-stable (workers may pick programs
/// in any order) and a pure function of the base seed.
fn case_rng(base_seed: u64, index: u64) -> SimRng {
    SimRng::seed(base_seed).fork(index.wrapping_add(1))
}

fn check(
    case: &FuzzCase,
    policy: Option<PolicyKind>,
    seeds: u64,
    kernel: KernelKind,
    coherence: CoherenceKind,
) -> Option<CaseFailure> {
    match policy {
        Some(p) => check_policy_matrix(case, p, seeds, kernel, coherence),
        None => check_case_matrix(case, seeds, kernel, coherence),
    }
}

/// One confirmed finding of the sweep.
pub(crate) struct Finding {
    /// Program index within the sweep (the RNG fork).
    pub(crate) index: u64,
    /// The generated litmus case.
    pub(crate) case: FuzzCase,
    /// What went wrong (policy, kind, diagnostics).
    pub(crate) failure: CaseFailure,
}

/// Renders, shrinks and persists one finding. Returns the corpus paths.
pub(crate) fn report_finding(opt: &FuzzOptions, f: &Finding) -> std::io::Result<Vec<PathBuf>> {
    let corpus = opt.out.join("fuzz-corpus");
    std::fs::create_dir_all(&corpus)?;
    let stem = format!("seed{}-case{}", opt.base_seed, f.index);
    let mut written = Vec::new();

    eprintln!("--- VIOLATION (program {}) ---", f.index);
    eprintln!("{}", f.failure);
    if let FailureKind::Timeout { report, .. } = &f.failure.kind {
        eprintln!("{report}");
    }
    eprint!("{}", f.case);

    let orig = corpus.join(format!("{stem}.orig.txt"));
    std::fs::write(&orig, encode_case(&f.case, Some(f.failure.policy), opt.seeds))?;
    written.push(orig);

    if opt.shrink {
        eprintln!("shrinking ...");
        let (small, small_fail) =
            shrink_case_matrix(&f.case, f.failure.policy, opt.seeds, opt.kernel, opt.coherence);
        eprintln!(
            "shrunk to {} thread(s), {} op(s): {}",
            small.program.threads.len(),
            small.program.ops(),
            small_fail
        );
        eprint!("{small}");
        let path = corpus.join(format!("{stem}.txt"));
        std::fs::write(&path, encode_case(&small, Some(small_fail.policy), opt.seeds))?;
        written.push(path);
    }
    for p in &written {
        eprintln!("persisted: {}", p.display());
    }
    Ok(written)
}

/// Replays one corpus file; returns the process exit code.
fn replay(opt: &FuzzOptions, path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fuzz: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let entry = match decode_case(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("fuzz: cannot parse {}: {e}", path.display());
            return 2;
        }
    };
    let policy = opt.policy.or(entry.policy);
    let seeds = opt.seeds.max(entry.seeds);
    eprintln!(
        "replaying {} ({} thread(s), {} op(s), {} seeds, policy {})",
        path.display(),
        entry.case.program.threads.len(),
        entry.case.program.ops(),
        seeds,
        policy.map_or("all", |p| p.label()),
    );
    eprint!("{}", entry.case);
    match check(&entry.case, policy, seeds, opt.kernel, opt.coherence) {
        Some(fail) => {
            eprintln!("still failing: {fail}");
            if let FailureKind::Timeout { report, .. } = &fail.kind {
                eprintln!("{report}");
            }
            1
        }
        None => {
            eprintln!("case passes: every outcome TSO-allowed, no hangs");
            0
        }
    }
}

/// Runs the differential sweep itself: `opt.programs` generated cases
/// checked over the worker pool, findings returned sorted by program
/// index. `progress(done, total, violations_so_far)` is invoked after
/// every checked program — the CLI throttles it to stderr lines, the
/// daemon streams it as `Progress` frames.
///
/// Locks recover from poisoning ([`PoisonError::into_inner`]): findings
/// are pushed as complete values, so a panicking checker thread (or a
/// panicking `progress` callback) cannot cascade into losing every other
/// worker's findings.
pub(crate) fn sweep_cases(
    opt: &FuzzOptions,
    progress: &(dyn Fn(u64, u64, usize) + Sync),
) -> Vec<Finding> {
    let next = AtomicUsize::new(0);
    let done = AtomicU64::new(0);
    let findings: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let n = opt.programs;
    std::thread::scope(|s| {
        for _ in 0..opt.jobs.min(n.max(1) as usize) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as u64;
                if i >= n {
                    break;
                }
                let case = generate_case(&mut case_rng(opt.base_seed, i));
                if let Some(failure) =
                    check(&case, opt.policy, opt.seeds, opt.kernel, opt.coherence)
                {
                    findings
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(Finding { index: i, case, failure });
                }
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                let violations = findings.lock().unwrap_or_else(PoisonError::into_inner).len();
                progress(d, n, violations);
            });
        }
    });
    let mut findings = findings.into_inner().unwrap_or_else(PoisonError::into_inner);
    findings.sort_by_key(|f| f.index);
    findings
}

/// Bounds a `--save-corpus` case must satisfy so `tus-harness check`
/// can sweep the corpus exhaustively at its defaults.
const CORPUS_MAX_THREADS: usize = 3;
const CORPUS_MAX_OPS: usize = 8;

/// `--save-corpus N`: rejection-samples the generator down to the model
/// checker's default bounds and persists N cases under
/// `<out>/fuzz-corpus/` in the replayable corpus format. Deterministic in
/// the base seed; returns the process exit code.
fn save_corpus(opt: &FuzzOptions) -> i32 {
    let corpus = opt.out.join("fuzz-corpus");
    if let Err(e) = std::fs::create_dir_all(&corpus) {
        eprintln!("fuzz: cannot create {}: {e}", corpus.display());
        return 2;
    }
    let mut accepted = 0u64;
    let mut index = 0u64;
    let budget = opt.save_corpus.saturating_mul(64).max(1024);
    while accepted < opt.save_corpus && index < budget {
        let case = generate_case(&mut case_rng(opt.base_seed, index));
        index += 1;
        if case.program.threads.len() > CORPUS_MAX_THREADS || case.program.ops() > CORPUS_MAX_OPS {
            continue;
        }
        let path = corpus.join(format!("gen-seed{}-{accepted:03}.txt", opt.base_seed));
        if let Err(e) = std::fs::write(&path, encode_case(&case, None, opt.seeds)) {
            eprintln!("fuzz: cannot write {}: {e}", path.display());
            return 2;
        }
        accepted += 1;
    }
    if accepted < opt.save_corpus {
        eprintln!(
            "fuzz: generator produced only {accepted}/{} in-bound cases in {budget} attempts",
            opt.save_corpus
        );
        return 2;
    }
    eprintln!(
        "persisted {accepted} corpus cases (≤{CORPUS_MAX_THREADS} threads, ≤{CORPUS_MAX_OPS} ops) under {}",
        corpus.display()
    );
    0
}

/// Runs the fuzz subcommand; returns the process exit code (0 = clean,
/// 1 = violation found, 2 = usage/IO error).
pub fn run_fuzz(opt: &FuzzOptions) -> i32 {
    if let Some(path) = &opt.replay {
        return replay(opt, &path.clone());
    }
    if opt.save_corpus > 0 {
        return save_corpus(opt);
    }
    let started = std::time::Instant::now();
    let policies = opt.policy.map_or(PolicyKind::ALL.len() as u64, |_| 1);
    eprintln!(
        "fuzzing {} programs x {} policies x {} seeds (base seed {}, {} jobs, {} kernel, {} coherence)",
        opt.programs, policies, opt.seeds, opt.base_seed, opt.jobs, opt.kernel, opt.coherence
    );

    let findings = sweep_cases(opt, &|d, n, violations| {
        if d % 100 == 0 || d == n {
            eprintln!(
                "[{d}/{n} programs, {violations} violation(s), {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
    });
    let sims = opt.programs * policies * opt.seeds;
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "[fuzz: {:.1}s, {} sims ({:.1} sims/s), {} violation(s)]",
        secs,
        sims,
        if secs > 0.0 { sims as f64 / secs } else { 0.0 },
        findings.len()
    );
    if findings.is_empty() {
        return 0;
    }
    for f in &findings {
        if let Err(e) = report_finding(opt, f) {
            eprintln!("fuzz: cannot persist counterexample: {e}");
        }
    }
    1
}

/// Entry point called from `main` for `tus-harness fuzz ...`.
pub fn main_fuzz(args: &[String]) -> ! {
    let opt = parse_fuzz_args(args);
    std::process::exit(run_fuzz(&opt));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_index_stable() {
        let a = generate_case(&mut case_rng(7, 3));
        let b = generate_case(&mut case_rng(7, 3));
        assert_eq!(a, b);
        let c = generate_case(&mut case_rng(7, 4));
        assert_ne!(a, c, "different indices give different cases");
    }

    #[test]
    fn parse_fuzz_args_covers_flags() {
        let args: Vec<String> = [
            "--programs", "10", "--seeds", "4", "--seed", "9", "--jobs", "2", "--policy", "tus",
            "--out", "/tmp/x", "--no-shrink", "--kernel", "lockstep", "--coherence", "tardis",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_fuzz_args(&args);
        assert_eq!(o.programs, 10);
        assert_eq!(o.seeds, 4);
        assert_eq!(o.base_seed, 9);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.policy, Some(PolicyKind::Tus));
        assert_eq!(o.out, PathBuf::from("/tmp/x"));
        assert!(!o.shrink);
        assert!(o.replay.is_none());
        assert_eq!(o.kernel, KernelKind::Lockstep);
        assert_eq!(o.coherence, CoherenceKind::Tardis);
    }

    /// A tiny end-to-end sweep under the Tardis backend is clean too.
    #[test]
    fn small_sweep_is_clean_under_tardis() {
        let opt = FuzzOptions {
            programs: 3,
            seeds: 2,
            base_seed: 1,
            jobs: 2,
            coherence: CoherenceKind::Tardis,
            ..FuzzOptions::default()
        };
        assert_eq!(run_fuzz(&opt), 0);
    }

    /// A tiny end-to-end sweep is clean and deterministic.
    #[test]
    fn small_sweep_is_clean() {
        let opt = FuzzOptions {
            programs: 3,
            seeds: 2,
            base_seed: 1,
            jobs: 2,
            ..FuzzOptions::default()
        };
        assert_eq!(run_fuzz(&opt), 0);
    }

    /// Replay of a hand-written passing corpus file returns 0; garbage
    /// returns 2.
    #[test]
    fn replay_roundtrip() {
        let dir = std::env::temp_dir().join("tus-fuzz-replay-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sb.txt");
        std::fs::write(
            &path,
            "tusfuzz v1\npolicy TUS\nseeds 2\nthread\nst 0 1\nld 1\nthread\nst 1 2\nld 0\n",
        )
        .expect("write");
        let opt = FuzzOptions {
            replay: Some(path.clone()),
            seeds: 2,
            ..FuzzOptions::default()
        };
        assert_eq!(run_fuzz(&opt), 0);
        std::fs::write(&path, "garbage").expect("write");
        assert_eq!(run_fuzz(&opt), 2);
    }
}
