//! A 16-core PARSEC-style run (`dedup`-like: bandwidth-hungry store
//! bursts plus long-latency stores with cross-thread sharing), showing
//! the TUS conflict machinery — delayed external requests and lex-order
//! relinquishes — at work.
//!
//! ```sh
//! cargo run --release --example multicore_dedup
//! ```

use tus::System;
use tus_sim::{PolicyKind, SimConfig};
use tus_workloads::by_name;

fn main() {
    let w = by_name("dedup-like").expect("workload exists");
    let insts = 20_000u64; // per core

    for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
        let cfg = SimConfig::builder().cores(16).policy(policy).build();
        let mut sys = System::new(&cfg, w.traces(16, 11, insts), 11);
        let stats = sys.run_committed(insts, 500_000_000);
        let cycles = stats.get("cycles");
        let ipc = stats.get("total_committed") / cycles;
        println!("== {} ==", policy.label());
        println!("  cycles {cycles:.0}, aggregate IPC {ipc:.2}");
        if policy == PolicyKind::Tus {
            let delays: f64 = (0..16)
                .map(|i| stats.get(&format!("core{i}.policy.conflict_delays")))
                .sum();
            let relinq: f64 = (0..16)
                .map(|i| stats.get(&format!("core{i}.policy.conflict_relinquishes")))
                .sum();
            let flips: f64 = (0..16)
                .map(|i| stats.get(&format!("core{i}.policy.visibility_flips")))
                .sum();
            println!("  external conflicts on unauthorized lines:");
            println!("    delayed (lex order held): {delays:.0}");
            println!("    relinquished (lex order violated): {relinq:.0}");
            println!("  atomic-group visibility flips: {flips:.0}");
            println!("  directory-observed relinquishes: {}", stats.get("mem.dir.relinquishes"));
        }
        println!();
    }
    println!("Even with cores fighting over shared lines, the lex order");
    println!("guarantees forward progress — no rollbacks, no speculation.");
}
