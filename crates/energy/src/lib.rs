//! Energy, area and EDP models.
//!
//! The paper evaluates energy with McPAT at 22 nm. This crate substitutes
//! an analytic model with two parts:
//!
//! * [`cam`] — area and per-search energy of the CAM structures (SB, WOQ)
//!   as affine functions of entry count, *fitted to the ratios the paper
//!   reports*: a 32-entry SB has 2× lower search energy and 21% less area
//!   than a 114-entry SB; the WOQ is 13× smaller and 10× cheaper per
//!   search than the 114-entry SB (and ~5× cheaper than a 32-entry SB).
//! * [`model`] — per-event energy accounting over a run's `StatSet`
//!   (L1D/L2/L3/DRAM accesses, SB/WOQ/WCB searches, SSB's L2
//!   write-through, TUS's L2 updates) plus static energy per cycle, and
//!   the energy-delay product.
//!
//! Absolute joules are not the point (the paper's are McPAT's); the
//! *relative* EDP between policies — driven by delay and event counts —
//! is what the figures compare.

pub mod cam;
pub mod model;

pub use cam::{sb_area, sb_search_energy, woq_area, woq_search_energy};
pub use model::{EnergyBreakdown, EnergyModel};
