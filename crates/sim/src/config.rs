//! Machine configuration (Table I of the paper) and policy selection.
//!
//! [`SimConfig`] captures every parameter of the simulated machine. The
//! defaults reproduce Table I exactly; [`SimConfigBuilder`] tweaks the knobs
//! the evaluation sweeps (core count, SB size, drain policy, TUS
//! parameters).

use std::fmt;

/// Which store-drain mechanism the simulated core uses.
///
/// These are the five configurations compared throughout the paper's
/// evaluation (Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyKind {
    /// Baseline: prefetch-at-commit + stream prefetcher; the SB head blocks
    /// on a store miss until write permission arrives.
    Baseline,
    /// Temporarily Unauthorized Stores (the paper's contribution).
    Tus,
    /// Scalable Store Buffer (idealized, 1K-entry TSOB, 0-cycle
    /// invalidation recovery) [Wenisch et al., ISCA'07].
    Ssb,
    /// Coalescing Store Buffer (WCB coalescing, blocks on WCB write miss)
    /// [Ros & Kaxiras, ISCA'18].
    Csb,
    /// Store Prefetch Burst (4 KiB page write-permission prefetch on store
    /// bursts) [Cebrian et al., MICRO'20].
    Spb,
}

impl PolicyKind {
    /// All policies in the order the paper's figures present them.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Baseline,
        PolicyKind::Ssb,
        PolicyKind::Csb,
        PolicyKind::Spb,
        PolicyKind::Tus,
    ];

    /// Short label used in tables ("base", "SSB", "CSB", "SPB", "TUS").
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "base",
            PolicyKind::Tus => "TUS",
            PolicyKind::Ssb => "SSB",
            PolicyKind::Csb => "CSB",
            PolicyKind::Spb => "SPB",
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which simulation kernel advances the clock.
///
/// All three kernels produce bit-identical statistics; `Event` is the
/// default because it ticks only the components whose calendar key is due
/// (and jumps the clock over machine-wide idle stretches), instead of
/// scanning every component each cycle. `Skip` is the legacy machine-wide
/// idle-jump kernel, and `Lockstep` is kept as the reference for
/// differential checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Tick every component every cycle (the reference kernel).
    Lockstep,
    /// Jump the clock to the machine-wide next event when no component has
    /// due work, charging the skipped cycles to the same counters.
    Skip,
    /// Calendar-queue kernel: each unit (memory fabric, per-core slice)
    /// keeps a `next_work` key in a priority queue and only due units are
    /// ticked; idle stretches are jumped like `Skip` but without scanning.
    Event,
}

impl KernelKind {
    /// Every kernel, lockstep (the reference) first.
    pub const ALL: [KernelKind; 3] = [KernelKind::Lockstep, KernelKind::Skip, KernelKind::Event];

    /// Short label used in flags and cache keys ("lockstep", "skip",
    /// "event").
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Lockstep => "lockstep",
            KernelKind::Skip => "skip",
            KernelKind::Event => "event",
        }
    }

    /// Parses a `--kernel` flag value.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s {
            "lockstep" => Some(KernelKind::Lockstep),
            "skip" => Some(KernelKind::Skip),
            "event" => Some(KernelKind::Event),
            _ => None,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Default for KernelKind {
    /// [`KernelKind::Event`], matching [`SimConfig`]'s default.
    fn default() -> Self {
        KernelKind::Event
    }
}

/// Which coherence backend the memory fabric runs.
///
/// The private-cache controllers talk to the fabric through the
/// `CoherenceBackend` contract in `tus-mem`; this selector picks the
/// implementation behind it. `Mesi` is the paper's invalidation-based
/// full-map directory (the reference backend, bit-identical to the
/// pre-contract code). `Tardis` is a Tardis-2.0-style logical-timestamp
/// backend: reads take bounded leases, writes jump the writer's logical
/// time past every outstanding lease, and no invalidation messages are
/// ever sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceKind {
    /// Invalidation-based full-map MESI directory (the reference).
    Mesi,
    /// Timestamp-coherence backend: lease-based reads, no invalidations,
    /// self-downgrade on lease expiry.
    Tardis,
}

impl CoherenceKind {
    /// Every backend, MESI (the reference) first.
    pub const ALL: [CoherenceKind; 2] = [CoherenceKind::Mesi, CoherenceKind::Tardis];

    /// Short label used in flags and cache keys ("mesi", "tardis").
    pub fn label(self) -> &'static str {
        match self {
            CoherenceKind::Mesi => "mesi",
            CoherenceKind::Tardis => "tardis",
        }
    }

    /// Parses a `--coherence` flag value.
    pub fn parse(s: &str) -> Option<CoherenceKind> {
        match s {
            "mesi" => Some(CoherenceKind::Mesi),
            "tardis" => Some(CoherenceKind::Tardis),
            _ => None,
        }
    }
}

impl fmt::Display for CoherenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Default for CoherenceKind {
    /// [`CoherenceKind::Mesi`], matching [`SimConfig`]'s default.
    fn default() -> Self {
        CoherenceKind::Mesi
    }
}

/// Front-end widths (instructions per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndConfig {
    /// Fetch width (8 in Table I).
    pub fetch_width: usize,
    /// Decode width (6).
    pub decode_width: usize,
    /// Rename width (6).
    pub rename_width: usize,
    /// Pipeline depth from fetch to rename, in cycles.
    pub pipeline_depth: u64,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            fetch_width: 8,
            decode_width: 6,
            rename_width: 6,
            pipeline_depth: 6,
        }
    }
}

/// Back-end widths and window sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackEndConfig {
    /// Dispatch width (12).
    pub dispatch_width: usize,
    /// Issue width (12).
    pub issue_width: usize,
    /// Commit width (8).
    pub commit_width: usize,
    /// Re-order buffer entries (512).
    pub rob_entries: usize,
    /// Load queue entries (192).
    pub lq_entries: usize,
    /// Integer physical registers (332).
    pub int_regs: usize,
    /// Floating-point physical registers (332).
    pub fp_regs: usize,
    /// Dedicated integer ALUs (1) — see Table I "1 Int ALU".
    pub int_only_alus: usize,
    /// General Int/FP/SIMD ALUs (3).
    pub general_alus: usize,
    /// Store write ports into the L1D per cycle (pipelined store accesses,
    /// one of the paper's three baseline strengthenings).
    pub store_ports: usize,
}

impl Default for BackEndConfig {
    fn default() -> Self {
        BackEndConfig {
            dispatch_width: 12,
            issue_width: 12,
            commit_width: 8,
            rob_entries: 512,
            lq_entries: 192,
            int_regs: 332,
            fp_regs: 332,
            int_only_alus: 1,
            general_alus: 3,
            store_ports: 2,
        }
    }
}

/// Instruction execution latencies in cycles (Table I, after Fog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Integer add.
    pub int_add: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// FP add.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            int_add: 1,
            int_mul: 4,
            int_div: 12,
            fp_add: 5,
            fp_mul: 5,
            fp_div: 12,
        }
    }
}

/// Store buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbConfig {
    /// Number of unified (pre+post commit) store buffer entries.
    /// 114 in the baseline (Alder Lake); the paper also evaluates 64, 56
    /// and 32.
    pub entries: usize,
}

impl SbConfig {
    /// Store-to-load forwarding latency as a function of SB size, as
    /// modeled by the paper (5 cycles for 114, 4 for 64, 3 for smaller —
    /// Fog's measurements).
    ///
    /// # Example
    ///
    /// ```
    /// use tus_sim::config::SbConfig;
    /// assert_eq!(SbConfig { entries: 114 }.forward_latency(), 5);
    /// assert_eq!(SbConfig { entries: 64 }.forward_latency(), 4);
    /// assert_eq!(SbConfig { entries: 32 }.forward_latency(), 3);
    /// ```
    pub fn forward_latency(&self) -> u64 {
        if self.entries > 64 {
            5
        } else if self.entries > 32 {
            4
        } else {
            3
        }
    }
}

impl Default for SbConfig {
    fn default() -> Self {
        SbConfig { entries: 114 }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Access / round-trip latency in cycles (interpretation depends on
    /// level: lookup latency for L1, round trip for L2/L3 as in Table I).
    pub latency: u64,
    /// Miss-status holding registers.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets implied by size, associativity and 64-byte lines.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * crate::types::LINE_BYTES)
    }
}

/// Memory-hierarchy configuration (all levels + DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache (modeled as always hitting; kept for the
    /// configuration record).
    pub l1i: CacheConfig,
    /// L1 data cache: 48 KiB, 12-way, 5-cycle, 64 MSHRs, stream prefetcher.
    pub l1d: CacheConfig,
    /// Private L2: 1 MiB, 16-way, 16-cycle round trip, 64 MSHRs. Inclusive
    /// of L1D.
    pub l2: CacheConfig,
    /// Shared L3 / directory: 64 MiB, 16-way, 34-cycle round trip.
    pub l3: CacheConfig,
    /// DRAM latency in cycles (160).
    pub dram_latency: u64,
    /// Maximum in-flight DRAM requests (simple bandwidth model).
    pub dram_max_inflight: usize,
    /// Stream (stride) prefetcher enabled at L1D.
    pub stream_prefetcher: bool,
    /// Stream prefetcher degree (lines fetched ahead).
    pub stream_degree: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 1,
                mshrs: 64,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                latency: 5,
                mshrs: 64,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                latency: 16,
                mshrs: 64,
            },
            l3: CacheConfig {
                size_bytes: 64 * 1024 * 1024,
                ways: 16,
                latency: 34,
                mshrs: 64,
            },
            dram_latency: 160,
            dram_max_inflight: 64,
            stream_prefetcher: true,
            stream_degree: 4,
        }
    }
}

/// Parameters of the TUS mechanism (and of the baselines that share
/// hardware with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TusConfig {
    /// Write Ordering Queue entries (64 per the paper's DSE).
    pub woq_entries: usize,
    /// Number of write-combining buffers used for coalescing (2).
    pub wcbs: usize,
    /// Maximum number of cache lines in an atomic group (16).
    pub max_atomic_group: usize,
    /// Bits of the line address forming the lexicographical sub-address
    /// (16 — same bits that index the directory).
    pub lex_bits: u32,
    /// Whether the core issues a write-permission prefetch when a store
    /// commits (on in the baseline and all policies, +15% over plain gem5).
    pub prefetch_at_commit: bool,
    /// SSB's in-order queue (TSOB) capacity (1024).
    pub tsob_entries: usize,
    /// SPB: number of consecutive-line stores that triggers a full-page
    /// prefetch burst.
    pub spb_trigger: usize,
    /// Store-to-load forwarding from not-yet-ready unauthorized L1D lines
    /// (serving the locally written bytes through the WOQ mask). The
    /// paper implemented this, observed no meaningful gain (the store
    /// already forwarded from the SB while buffered), and disabled it —
    /// hence `false` by default; kept as an ablation knob.
    pub l1d_unauth_forwarding: bool,
}

impl Default for TusConfig {
    fn default() -> Self {
        TusConfig {
            woq_entries: 64,
            wcbs: 2,
            max_atomic_group: 16,
            lex_bits: 16,
            prefetch_at_commit: true,
            tsob_entries: 1024,
            spb_trigger: 4,
            l1d_unauth_forwarding: false,
        }
    }
}

/// Complete machine configuration.
///
/// The [`Default`] instance is the paper's Table I baseline (114-entry SB,
/// baseline drain policy, single core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of cores (1 for the sequential studies, 16 for PARSEC).
    pub cores: usize,
    /// Front-end widths.
    pub frontend: FrontEndConfig,
    /// Back-end widths and window sizes.
    pub backend: BackEndConfig,
    /// Functional-unit latencies.
    pub latency: LatencyConfig,
    /// Store buffer.
    pub sb: SbConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// TUS / baseline-technique parameters.
    pub tus: TusConfig,
    /// Store-drain policy.
    pub policy: PolicyKind,
    /// Extra uniform-random jitter (0..=N cycles) added to every coherence
    /// message, used by the TSO litmus harness to explore interleavings.
    /// 0 disables jitter (the default for performance studies).
    pub chaos_jitter: u64,
    /// Simulation kernel (event-driven by default; every kernel is
    /// statistic-for-statistic identical).
    pub kernel: KernelKind,
    /// Coherence backend (MESI full-map directory by default).
    pub coherence: CoherenceKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 1,
            frontend: FrontEndConfig::default(),
            backend: BackEndConfig::default(),
            latency: LatencyConfig::default(),
            sb: SbConfig::default(),
            mem: MemConfig::default(),
            tus: TusConfig::default(),
            policy: PolicyKind::Baseline,
            chaos_jitter: 0,
            kernel: KernelKind::Event,
            coherence: CoherenceKind::Mesi,
        }
    }
}

impl SimConfig {
    /// Starts building a configuration from the Table I defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// Renders Table I (configuration parameters) as the paper prints it.
    pub fn render_table1(&self) -> String {
        let f = &self.frontend;
        let b = &self.backend;
        let l = &self.latency;
        let m = &self.mem;
        let mut out = String::new();
        out.push_str("TABLE I: CONFIGURATION PARAMETERS\n");
        let mut row = |k: &str, v: String| {
            out.push_str(&format!("  {k:<22} {v}\n"));
        };
        row("Cores", format!("{}", self.cores));
        row(
            "Front-end width",
            format!(
                "{} (fetch), {} (decode), {} (rename) instr.",
                f.fetch_width, f.decode_width, f.rename_width
            ),
        );
        row(
            "Back-end width",
            format!(
                "{} (dispatch), {} (issue), {} (commit) instr.",
                b.dispatch_width, b.issue_width, b.commit_width
            ),
        );
        row(
            "Physical registers",
            format!("{} integer + {} floating point", b.int_regs, b.fp_regs),
        );
        row(
            "Load/store queue",
            format!("{}/{} entries", b.lq_entries, self.sb.entries),
        );
        row("Re-order buffer", format!("{} entries", b.rob_entries));
        row(
            "Functional units",
            format!(
                "{} Int ALU + {} Int/FP/SIMD ALU",
                b.int_only_alus, b.general_alus
            ),
        );
        row(
            "Instr. latency (int)",
            format!("add ({}c), mul ({}c), div ({}c)", l.int_add, l.int_mul, l.int_div),
        );
        row(
            "Instr. latency (fp)",
            format!("add ({}c), mul ({}c), div ({}c)", l.fp_add, l.fp_mul, l.fp_div),
        );
        row(
            "L1I",
            format!(
                "{}KB, {}-way, {}-cycle latency, {} MSHRs",
                m.l1i.size_bytes / 1024,
                m.l1i.ways,
                m.l1i.latency,
                m.l1i.mshrs
            ),
        );
        row(
            "L1D",
            format!(
                "{}KB, {}-way, {}-cycle latency, {} MSHRs, stream prefetcher: {}",
                m.l1d.size_bytes / 1024,
                m.l1d.ways,
                m.l1d.latency,
                m.l1d.mshrs,
                if m.stream_prefetcher { "on" } else { "off" }
            ),
        );
        row(
            "L2",
            format!(
                "{}MB, {}-way, {}-cycle round trip, {} MSHRs",
                m.l2.size_bytes / (1024 * 1024),
                m.l2.ways,
                m.l2.latency,
                m.l2.mshrs
            ),
        );
        row(
            "L3",
            format!(
                "{}MB, {}-way, {}-cycle round trip, {} MSHRs",
                m.l3.size_bytes / (1024 * 1024),
                m.l3.ways,
                m.l3.latency,
                m.l3.mshrs
            ),
        );
        row("DRAM", format!("{}-cycle latency", m.dram_latency));
        row("Policy", format!("{}", self.policy));
        row(
            "TUS",
            format!(
                "WOQ {} entries, {} WCBs, max group {}, lex bits {}",
                self.tus.woq_entries, self.tus.wcbs, self.tus.max_atomic_group, self.tus.lex_bits
            ),
        );
        row(
            "SB fwd latency",
            format!("{} cycles", self.sb.forward_latency()),
        );
        out
    }
}

/// Builder for [`SimConfig`]. All setters return `&mut self` so the builder
/// can be used for both one-liners and staged configuration.
///
/// # Example
///
/// ```
/// use tus_sim::{PolicyKind, SimConfig};
/// let cfg = SimConfig::builder()
///     .cores(16)
///     .sb_entries(32)
///     .policy(PolicyKind::Tus)
///     .build();
/// assert_eq!(cfg.cores, 16);
/// assert_eq!(cfg.sb.forward_latency(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Creates a builder initialized with the Table I defaults.
    pub fn new() -> Self {
        SimConfigBuilder {
            cfg: SimConfig::default(),
        }
    }

    /// Sets the number of cores.
    pub fn cores(&mut self, n: usize) -> &mut Self {
        self.cfg.cores = n;
        self
    }

    /// Sets the SB size (also adjusts store-to-load forwarding latency).
    pub fn sb_entries(&mut self, n: usize) -> &mut Self {
        self.cfg.sb.entries = n;
        self
    }

    /// Sets the store-drain policy.
    pub fn policy(&mut self, p: PolicyKind) -> &mut Self {
        self.cfg.policy = p;
        self
    }

    /// Sets the WOQ size.
    pub fn woq_entries(&mut self, n: usize) -> &mut Self {
        self.cfg.tus.woq_entries = n;
        self
    }

    /// Sets the number of WCBs used for coalescing.
    pub fn wcbs(&mut self, n: usize) -> &mut Self {
        self.cfg.tus.wcbs = n;
        self
    }

    /// Sets the maximum atomic-group size.
    pub fn max_atomic_group(&mut self, n: usize) -> &mut Self {
        self.cfg.tus.max_atomic_group = n;
        self
    }

    /// Sets the number of lex-order bits.
    pub fn lex_bits(&mut self, n: u32) -> &mut Self {
        self.cfg.tus.lex_bits = n;
        self
    }

    /// Enables/disables prefetch-at-commit.
    pub fn prefetch_at_commit(&mut self, on: bool) -> &mut Self {
        self.cfg.tus.prefetch_at_commit = on;
        self
    }

    /// Enables/disables the L1D stream prefetcher.
    pub fn stream_prefetcher(&mut self, on: bool) -> &mut Self {
        self.cfg.mem.stream_prefetcher = on;
        self
    }

    /// Enables store-to-load forwarding from not-ready unauthorized L1D
    /// lines (the paper's disabled variant; ablation).
    pub fn l1d_unauth_forwarding(&mut self, on: bool) -> &mut Self {
        self.cfg.tus.l1d_unauth_forwarding = on;
        self
    }

    /// Sets the coherence-message jitter bound for interleaving exploration.
    pub fn chaos_jitter(&mut self, max_extra_cycles: u64) -> &mut Self {
        self.cfg.chaos_jitter = max_extra_cycles;
        self
    }

    /// Selects the simulation kernel (event-driven, idle-skipping or
    /// lockstep).
    pub fn kernel(&mut self, k: KernelKind) -> &mut Self {
        self.cfg.kernel = k;
        self
    }

    /// Selects the coherence backend (MESI directory or Tardis
    /// timestamps).
    pub fn coherence(&mut self, c: CoherenceKind) -> &mut Self {
        self.cfg.coherence = c;
        self
    }

    /// Shrinks the caches (useful for unit tests that want misses and
    /// evictions without large footprints). Divides every cache size by
    /// `factor`, keeping associativity.
    pub fn scale_caches_down(&mut self, factor: usize) -> &mut Self {
        assert!(factor > 0, "factor must be positive");
        let m = &mut self.cfg.mem;
        for c in [&mut m.l1i, &mut m.l1d, &mut m.l2, &mut m.l3] {
            c.size_bytes = (c.size_bytes / factor).max(c.ways * crate::types::LINE_BYTES);
        }
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero cores, zero-way
    /// caches, non-power-of-two set counts, more WCBs than L1D ways).
    pub fn build(&self) -> SimConfig {
        let c = self.cfg;
        assert!(c.cores > 0, "need at least one core");
        assert!(c.sb.entries > 0, "SB must have entries");
        assert!(c.tus.woq_entries > 0, "WOQ must have entries");
        assert!(c.tus.wcbs > 0, "need at least one WCB");
        assert!(
            c.tus.wcbs <= c.mem.l1d.ways,
            "atomic groups from WCBs must fit L1D associativity"
        );
        for (name, cc) in [
            ("l1i", c.mem.l1i),
            ("l1d", c.mem.l1d),
            ("l2", c.mem.l2),
            ("l3", c.mem.l3),
        ] {
            assert!(cc.ways > 0, "{name}: zero ways");
            let sets = cc.sets();
            assert!(sets > 0, "{name}: zero sets");
            assert!(sets.is_power_of_two(), "{name}: sets must be a power of two");
        }
        assert!(c.tus.lex_bits >= 1 && c.tus.lex_bits <= 32, "lex bits in 1..=32");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = SimConfig::default();
        assert_eq!(c.frontend.fetch_width, 8);
        assert_eq!(c.backend.rob_entries, 512);
        assert_eq!(c.backend.lq_entries, 192);
        assert_eq!(c.sb.entries, 114);
        assert_eq!(c.mem.l1d.sets(), 64);
        assert_eq!(c.mem.l2.sets(), 1024);
        assert_eq!(c.mem.l3.sets(), 65536);
        assert_eq!(c.mem.dram_latency, 160);
        assert_eq!(c.tus.woq_entries, 64);
        assert_eq!(c.tus.wcbs, 2);
        assert_eq!(c.tus.max_atomic_group, 16);
        assert_eq!(c.tus.lex_bits, 16);
    }

    #[test]
    fn forward_latency_by_size() {
        for (n, lat) in [(114, 5), (65, 5), (64, 4), (33, 4), (32, 3), (16, 3)] {
            assert_eq!(SbConfig { entries: n }.forward_latency(), lat, "n={n}");
        }
    }

    #[test]
    fn builder_sets_fields() {
        let c = SimConfig::builder()
            .cores(16)
            .sb_entries(32)
            .policy(PolicyKind::Csb)
            .woq_entries(16)
            .wcbs(4)
            .max_atomic_group(8)
            .lex_bits(12)
            .prefetch_at_commit(false)
            .stream_prefetcher(false)
            .chaos_jitter(3)
            .kernel(KernelKind::Lockstep)
            .coherence(CoherenceKind::Tardis)
            .build();
        assert_eq!(c.cores, 16);
        assert_eq!(c.sb.entries, 32);
        assert_eq!(c.policy, PolicyKind::Csb);
        assert_eq!(c.tus.woq_entries, 16);
        assert_eq!(c.tus.wcbs, 4);
        assert_eq!(c.tus.max_atomic_group, 8);
        assert_eq!(c.tus.lex_bits, 12);
        assert!(!c.tus.prefetch_at_commit);
        assert!(!c.mem.stream_prefetcher);
        assert_eq!(c.chaos_jitter, 3);
        assert_eq!(c.kernel, KernelKind::Lockstep);
        assert_eq!(c.coherence, CoherenceKind::Tardis);
    }

    #[test]
    fn kernel_labels_roundtrip() {
        assert_eq!(SimConfig::default().kernel, KernelKind::Event);
        for k in KernelKind::ALL {
            assert_eq!(KernelKind::parse(k.label()), Some(k));
        }
        assert_eq!(KernelKind::parse("warp"), None);
    }

    #[test]
    fn coherence_labels_roundtrip() {
        assert_eq!(SimConfig::default().coherence, CoherenceKind::Mesi);
        for c in CoherenceKind::ALL {
            assert_eq!(CoherenceKind::parse(c.label()), Some(c));
        }
        assert_eq!(CoherenceKind::parse("moesi"), None);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        SimConfig::builder().cores(0).build();
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn too_many_wcbs_rejected() {
        SimConfig::builder().wcbs(13).build();
    }

    #[test]
    fn scale_caches_down_keeps_power_of_two() {
        let c = SimConfig::builder().scale_caches_down(64).build();
        assert!(c.mem.l1d.sets().is_power_of_two());
        assert!(c.mem.l3.sets().is_power_of_two());
        assert!(c.mem.l1d.size_bytes < 48 * 1024);
    }

    #[test]
    fn table1_render_mentions_key_rows() {
        let t = SimConfig::default().render_table1();
        assert!(t.contains("512 entries"));
        assert!(t.contains("192/114"));
        assert!(t.contains("160-cycle"));
        assert!(t.contains("48KB"));
    }

    #[test]
    fn policy_labels_unique() {
        let labels: std::collections::BTreeSet<_> =
            PolicyKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PolicyKind::ALL.len());
    }
}
