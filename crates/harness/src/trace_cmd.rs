//! `tus-harness trace` — run one traced simulation and export it.
//!
//! Runs a single workload/policy point with the structured event
//! recorder armed, then writes a Chrome-trace/Perfetto JSON file
//! (`trace_<workload>_<policy>.json`) and prints a per-core
//! stall-attribution breakdown table (also written as CSV).
//!
//! The JSON is the classic `{"traceEvents": [...]}` array format:
//! spans are `ph: "X"` complete events, point events are `ph: "i"`
//! instants, and each simulator component gets its own named thread
//! via `ph: "M"` `thread_name` metadata. Cycles are mapped 1:1 to
//! microseconds, so a 10 k-cycle run reads as a 10 ms timeline in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::path::PathBuf;

use crate::table::Table;
use tus::System;
use tus_sim::stats::names;
use tus_sim::trace::{AttrClass, Attribution, TraceRecord};
use tus_sim::{CoherenceKind, KernelKind, PolicyKind, SimConfig};
use tus_workloads::{by_name, Workload};

/// Parsed `trace` subcommand options.
pub struct TraceOptions {
    /// The workload to run (default: `502.gcc1-like`).
    pub workload: Workload,
    /// Drain policy (default: TUS, the interesting one).
    pub policy: PolicyKind,
    /// SB entries (default: 32, the constrained point where stalls show).
    pub sb_entries: usize,
    /// Simulation kernel.
    pub kernel: KernelKind,
    /// Coherence backend.
    pub coherence: CoherenceKind,
    /// Seed.
    pub seed: u64,
    /// Instructions per core.
    pub insts: u64,
    /// Ring capacity per component tracer.
    pub cap: usize,
    /// Output directory.
    pub out: PathBuf,
    /// Absolute cycle budget (`None` = the runner's default formula).
    /// Over-budget runs surface the structured [`tus::DeadlockReport`]
    /// via [`try_run_traced`].
    pub budget: Option<u64>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            workload: by_name("502.gcc1-like").expect("built-in workload"),
            policy: PolicyKind::Tus,
            sb_entries: 32,
            kernel: KernelKind::default(),
            coherence: CoherenceKind::default(),
            seed: 42,
            insts: 20_000,
            cap: tus::DEFAULT_TRACE_CAP,
            out: PathBuf::from("results"),
            budget: None,
        }
    }
}

fn trace_usage() -> ! {
    eprintln!(
        "usage: tus-harness trace [WORKLOAD] [--policy base|SSB|CSB|SPB|TUS]\n\
         \x20                       [--sb N] [--kernel lockstep|skip] [--seed N]\n\
         \x20                       [--coherence mesi|tardis] [--insts N] [--cap N] [--out DIR]\n\
         runs one traced simulation, writes Chrome-trace JSON (load it in\n\
         chrome://tracing or ui.perfetto.dev) and prints the per-core\n\
         cycle-attribution breakdown (every cycle lands in exactly one\n\
         category; the sum is asserted to equal total cycles)"
    );
    std::process::exit(2);
}

/// Parses the arguments following the `trace` keyword.
pub fn parse_trace_args(args: &[String]) -> TraceOptions {
    let mut opt = TraceOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("trace: {name} needs a number");
                trace_usage()
            })
        };
        match a.as_str() {
            "--policy" => {
                let label = it.next().unwrap_or_else(|| trace_usage());
                opt.policy = PolicyKind::ALL
                    .into_iter()
                    .find(|p| p.label().eq_ignore_ascii_case(label))
                    .unwrap_or_else(|| {
                        eprintln!("trace: unknown policy {label:?}");
                        trace_usage()
                    });
            }
            "--sb" => opt.sb_entries = num("--sb").max(1) as usize,
            "--seed" => opt.seed = num("--seed"),
            "--insts" => opt.insts = num("--insts").max(1),
            "--cap" => opt.cap = num("--cap").max(16) as usize,
            "--out" => opt.out = it.next().unwrap_or_else(|| trace_usage()).into(),
            "--kernel" => {
                let label = it.next().unwrap_or_else(|| trace_usage());
                opt.kernel = KernelKind::parse(label).unwrap_or_else(|| {
                    eprintln!("trace: unknown kernel {label:?}");
                    trace_usage()
                });
            }
            "--coherence" => {
                let label = it.next().unwrap_or_else(|| trace_usage());
                opt.coherence = CoherenceKind::parse(label).unwrap_or_else(|| {
                    eprintln!("trace: unknown coherence backend {label:?}");
                    trace_usage()
                });
            }
            w if !w.starts_with('-') => {
                // Structured lookup: a typo prints the full known-name
                // list (HarnessError::UnknownWorkload), then usage.
                opt.workload = crate::errors::workload(w).unwrap_or_else(|e| {
                    eprintln!("trace: {e}");
                    trace_usage()
                });
            }
            _ => trace_usage(),
        }
    }
    opt
}

/// The outcome of one traced run: per-track event streams plus the
/// per-core cycle attribution.
pub struct TracedRun {
    /// `(track name, records)` per simulator component.
    pub tracks: Vec<(String, Vec<TraceRecord>)>,
    /// Per-core cycle attribution.
    pub attributions: Vec<Attribution>,
    /// Total simulated cycles.
    pub cycles: u64,
}

/// Runs one simulation with tracing armed and harvests the event
/// streams and attribution counters.
///
/// # Panics
///
/// Panics with the rendered report if the run gives up — use
/// [`try_run_traced`] where the caller must survive (the daemon).
pub fn run_traced(opt: &TraceOptions) -> TracedRun {
    try_run_traced(opt).unwrap_or_else(|r| panic!("traced simulation gave up:\n{r}"))
}

/// Fallible [`run_traced`]: budget exhaustion or a watchdog trip comes
/// back as the simulator's structured [`tus::DeadlockReport`].
pub fn try_run_traced(opt: &TraceOptions) -> Result<TracedRun, Box<tus::DeadlockReport>> {
    let cores = if opt.workload.parallel { 16 } else { 1 };
    let cfg: SimConfig = {
        let mut b = SimConfig::builder();
        b.cores(cores)
            .sb_entries(opt.sb_entries)
            .policy(opt.policy)
            .kernel(opt.kernel)
            .coherence(opt.coherence);
        b.build()
    };
    let traces = opt.workload.traces(cores, opt.seed, opt.insts + 10_000);
    let mut sys = System::new(&cfg, traces, opt.seed);
    sys.enable_trace(opt.cap);
    let budget = opt.budget.unwrap_or(400 * opt.insts + 2_000_000);
    let stats = sys.try_run_committed(opt.insts, budget)?;
    sys.check_attribution();
    Ok(TracedRun {
        tracks: sys.take_traces(),
        attributions: sys.attributions(),
        cycles: stats.get(names::CYCLES) as u64,
    })
}

/// Minimal JSON string escaping for event argument values (the values
/// are simulator-generated, but quotes and backslashes must not break
/// the document).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the harvested tracks as Chrome-trace JSON (hand-rolled; the
/// workspace is std-only). One metadata record names each track's
/// thread; spans become `ph:"X"` complete events and zero-duration
/// records become `ph:"i"` thread-scoped instants. `ts`/`dur` are the
/// simulated cycle numbers interpreted as microseconds.
pub fn write_chrome_trace(
    path: &std::path::Path,
    tracks: &[(String, Vec<TraceRecord>)],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_chrome_trace_to(&mut f, tracks)
}

/// [`write_chrome_trace`] against any writer — the daemon streams the
/// JSON document into a reply frame instead of a file.
pub fn write_chrome_trace_to(
    mut f: &mut dyn std::io::Write,
    tracks: &[(String, Vec<TraceRecord>)],
) -> std::io::Result<()> {
    writeln!(f, "{{\"traceEvents\": [")?;
    let mut first = true;
    let sep = |f: &mut dyn std::io::Write, first: &mut bool| -> std::io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            writeln!(f, ",")
        }
    };
    for (tid, (track, records)) in tracks.iter().enumerate() {
        sep(&mut f, &mut first)?;
        write!(
            f,
            "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            json_escape(track)
        )?;
        for r in records {
            sep(&mut f, &mut first)?;
            let mut args = String::new();
            for (i, (k, v)) in r.ev.args().into_iter().enumerate() {
                if i > 0 {
                    args.push_str(", ");
                }
                args.push_str(&format!("\"{k}\": \"{}\"", json_escape(&v)));
            }
            let ts = r.at.raw();
            if r.dur > 0 {
                write!(
                    f,
                    "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {tid}, \"name\": \"{}\", \
                     \"ts\": {ts}, \"dur\": {}, \"args\": {{{args}}}}}",
                    r.ev.name(),
                    r.dur,
                )?;
            } else {
                write!(
                    f,
                    "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"name\": \"{}\", \
                     \"ts\": {ts}, \"s\": \"t\", \"args\": {{{args}}}}}",
                    r.ev.name(),
                )?;
            }
        }
    }
    writeln!(f, "\n]}}")?;
    Ok(())
}

/// Builds the per-core cycle-attribution breakdown table: one column
/// per stall category plus the total, one row per core. Every row's
/// category sum equals its total column by construction (asserted in
/// the simulator at run end).
pub fn breakdown_table(attributions: &[Attribution], cycles: u64) -> Table {
    let mut cols: Vec<String> = AttrClass::ALL.iter().map(|c| c.label().to_owned()).collect();
    cols.push("total".into());
    let mut t = Table::new(
        format!("Cycle attribution ({} cycles/core)", cycles),
        cols,
    );
    t.precision = 0;
    for (i, attr) in attributions.iter().enumerate() {
        let mut vals: Vec<f64> = AttrClass::ALL.iter().map(|&c| attr.get(c) as f64).collect();
        vals.push(attr.total() as f64);
        t.push(format!("core{i}"), vals);
    }
    t
}

/// Entry point for the `trace` subcommand.
pub fn main_trace(args: &[String]) -> ! {
    let opt = parse_trace_args(args);
    eprintln!(
        "[trace: {} {} sb{} {} seed {} — {} insts]",
        opt.workload.name,
        opt.policy.label(),
        opt.sb_entries,
        opt.kernel.label(),
        opt.seed,
        opt.insts,
    );
    let run = run_traced(&opt);
    let events: usize = run.tracks.iter().map(|(_, r)| r.len()).sum();
    let stem = format!(
        "trace_{}_{}",
        opt.workload.name.replace(['.', '/'], "-"),
        opt.policy.label()
    );
    let json = opt.out.join(format!("{stem}.json"));
    if let Err(e) = write_chrome_trace(&json, &run.tracks) {
        eprintln!("trace: cannot write {}: {e}", json.display());
        std::process::exit(2);
    }
    let table = breakdown_table(&run.attributions, run.cycles);
    print!("{}", table.render());
    if let Err(e) = table.write_csv(&opt.out, &format!("{stem}_breakdown")) {
        eprintln!("trace: cannot write breakdown CSV: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "[trace: {} events across {} tracks -> {} — open in chrome://tracing or ui.perfetto.dev]",
        events,
        run.tracks.len(),
        json.display(),
    );
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opt() -> TraceOptions {
        TraceOptions {
            insts: 3_000,
            cap: 4_096,
            ..TraceOptions::default()
        }
    }

    #[test]
    fn parse_trace_args_covers_flags() {
        let args: Vec<String> = [
            "557.xz-like", "--policy", "csb", "--sb", "64", "--kernel", "lockstep", "--seed",
            "7", "--insts", "1234", "--cap", "512", "--out", "/tmp/x",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opt = parse_trace_args(&args);
        assert_eq!(opt.workload.name, "557.xz-like");
        assert_eq!(opt.policy, PolicyKind::Csb);
        assert_eq!(opt.sb_entries, 64);
        assert_eq!(opt.kernel, KernelKind::Lockstep);
        assert_eq!(opt.seed, 7);
        assert_eq!(opt.insts, 1234);
        assert_eq!(opt.cap, 512);
        assert_eq!(opt.out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn traced_run_attributes_every_cycle() {
        let run = run_traced(&quick_opt());
        assert!(run.cycles > 0);
        assert!(!run.attributions.is_empty());
        for attr in &run.attributions {
            assert_eq!(attr.total(), run.cycles);
        }
        assert!(run.tracks.iter().any(|(_, r)| !r.is_empty()));
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let run = run_traced(&quick_opt());
        let dir = std::env::temp_dir().join(format!("tus-trace-test-{}", std::process::id()));
        let path = dir.join("t.json");
        write_chrome_trace(&path, &run.tracks).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(body.starts_with("{\"traceEvents\": ["));
        assert!(body.trim_end().ends_with("]}"));
        // Structural sanity a JSON parser would enforce: balanced braces
        // and brackets (no string in the document contains either —
        // values are escaped simulator identifiers).
        let balance = |open: char, close: char| {
            body.chars().filter(|&c| c == open).count()
                == body.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
        // Every track got its thread_name metadata record.
        for (track, _) in &run.tracks {
            assert!(body.contains(&format!("\"name\": \"{track}\"")), "missing {track}");
        }
        // At least one span and its duration survived the round trip.
        assert!(body.contains("\"ph\": \"M\""));
        assert!(body.contains("\"ph\": \"X\"") || body.contains("\"ph\": \"i\""));
    }

    #[test]
    fn breakdown_table_row_sums_match_total_column() {
        let run = run_traced(&quick_opt());
        let t = breakdown_table(&run.attributions, run.cycles);
        assert_eq!(t.columns.len(), AttrClass::COUNT + 1);
        for (_, vals) in &t.rows {
            let sum: f64 = vals[..AttrClass::COUNT].iter().sum();
            assert_eq!(sum, vals[AttrClass::COUNT]);
        }
    }
}
