//! Hot-path microbenchmarks: the structures TUS adds (WOQ, WCB,
//! authorization unit), the SB forwarding CAM, the TSO enumerator, and
//! raw simulation throughput per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::hint::black_box;

use tus::{AuthorizationUnit, WcbSet, Woq};
use tus_cpu::StoreBuffer;
use tus_mem::ByteMask;
use tus_sim::{Addr, Cycle, LineAddr, PolicyKind};
use tus_tso::{all_litmus_tests, tso_outcomes};

fn bench_woq(c: &mut Criterion) {
    let mut g = c.benchmark_group("woq");
    g.bench_function("push_find_pop", |b| {
        b.iter(|| {
            let mut w = Woq::new(64);
            for i in 0..64u64 {
                w.push(LineAddr::new(i), (i % 64) as usize, (i % 12) as usize, ByteMask::FULL);
            }
            for i in 0..64u64 {
                black_box(w.find((i % 64) as usize, (i % 12) as usize));
                w.mark_ready((i % 64) as usize, (i % 12) as usize);
            }
            while !w.is_empty() && w.head_group_ready() {
                black_box(w.pop_head_group());
            }
        })
    });
    g.bench_function("merge_to_tail", |b| {
        b.iter(|| {
            let mut w = Woq::new(64);
            for i in 0..32u64 {
                w.push(LineAddr::new(i), i as usize, 0, ByteMask::FULL);
            }
            black_box(w.merge_to_tail(0));
        })
    });
    g.finish();
}

fn bench_wcb(c: &mut Criterion) {
    c.bench_function("wcb/coalesce_64_stores", |b| {
        b.iter(|| {
            let mut w = WcbSet::new(2);
            for i in 0..64u64 {
                let _ = w.write(Addr::new(0x1000 + (i % 8) * 8), 8, i, Cycle::new(i));
            }
            black_box(w.occupied())
        })
    });
}

fn bench_auth_unit(c: &mut Criterion) {
    c.bench_function("auth_unit/decide_64_entries", |b| {
        let unit = AuthorizationUnit::new(16);
        let mut w = Woq::new(64);
        for i in 0..64u64 {
            w.push(LineAddr::new(i * 7), i as usize, 0, ByteMask::FULL);
            if i % 2 == 0 {
                w.mark_ready(i as usize, 0);
            }
        }
        b.iter(|| black_box(unit.decide(&w, 63)))
    });
}

fn bench_sb_forwarding(c: &mut Criterion) {
    c.bench_function("sb/forward_114_entries", |b| {
        let mut sb = StoreBuffer::new(114, 5);
        for i in 0..114u64 {
            sb.push(Addr::new(i * 8), 8, i, i).expect("room");
            sb.mark_executed(i);
        }
        b.iter(|| black_box(sb.forward(Addr::new(56 * 8), 8, 200)))
    });
}

fn bench_tso_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("tso_enumeration");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for t in all_litmus_tests().into_iter().take(4) {
        g.bench_function(t.name, |b| b.iter(|| black_box(tso_outcomes(&t.program).len())));
    }
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput_10k_insts");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for policy in PolicyKind::ALL {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(tus_bench::short_run("523.xalancbmk-like", policy, 114, 10_000).cycles))
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    bench_woq,
    bench_wcb,
    bench_auth_unit,
    bench_sb_forwarding,
    bench_tso_enumeration,
    bench_sim_throughput
);
criterion_main!(micro);
