//! Simulation kernel for the TUS reproduction.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on:
//!
//! * [`types`] — strongly-typed identifiers for addresses, cache lines,
//!   cycles and cores ([`Addr`], [`LineAddr`], [`Cycle`], [`CoreId`]).
//! * [`event`] — a deterministic delay queue used to model latencies
//!   ([`DelayQueue`]).
//! * [`rng`] — a seeded, reproducible random-number generator ([`SimRng`]).
//! * [`stats`] — a hierarchical statistics registry ([`StatSet`]).
//! * [`config`] — the full Table I machine description ([`SimConfig`]) with
//!   a builder, plus the store-drain policy selector ([`PolicyKind`]) and
//!   the simulation-kernel selector ([`KernelKind`]).
//! * [`sched`] — the [`Schedulable`] contract the idle-aware kernels use
//!   to compute per-component next-event cycles.
//! * [`calendar`] — the priority queue of unit next-work keys
//!   ([`Calendar`]) behind the event-driven kernel.
//! * [`lineid`] — dense per-run line identifiers ([`LineId`],
//!   [`LineInterner`]) and the allocation-recycling primitives ([`Slab`],
//!   [`BoxPool`]) behind the zero-allocation steady-state hot path.
//! * [`trace`] — the zero-cost-when-disabled structured event recorder
//!   ([`Tracer`]) and the stall-attribution accountant ([`AttrClass`],
//!   [`Attribution`]).
//!
//! # Example
//!
//! ```
//! use tus_sim::{Addr, Cycle, LineAddr, SimConfig};
//!
//! let cfg = SimConfig::builder().cores(1).sb_entries(114).build();
//! assert_eq!(cfg.sb.entries, 114);
//!
//! let a = Addr::new(0x1040);
//! assert_eq!(a.line(), LineAddr::new(0x41));
//! assert_eq!(a.line_offset(), 0);
//! assert_eq!(Cycle::ZERO + 5, Cycle::new(5));
//! ```

pub mod calendar;
pub mod config;
pub mod event;
pub mod hash;
pub mod lineid;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod types;

pub use calendar::Calendar;
pub use config::{CoherenceKind, KernelKind, PolicyKind, SimConfig, SimConfigBuilder};
pub use sched::Schedulable;
pub use event::DelayQueue;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use lineid::{BoxPool, LineId, LineInterner, Slab};
pub use rng::SimRng;
pub use stats::StatSet;
pub use trace::{AttrClass, Attribution, TraceEvent, TraceRecord, Tracer};
pub use types::{Addr, CoreId, Cycle, LineAddr, LINE_BYTES, LINE_SHIFT};
