//! Invariant suite for the cycle-attribution/tracing layer.
//!
//! Seeded runs across every policy × kernel × a pair of workloads
//! assert the three properties the observability layer is built on:
//!
//! 1. **Full attribution** — every core's stall-category counters sum
//!    to exactly the run's total cycles (no cycle uncounted, none
//!    double-counted), and the per-window delta ([`Attribution::since`])
//!    is monotone across the warm-up boundary.
//! 2. **No negative category** — category counters are monotone
//!    (`since` panics on regression, which this suite would surface).
//! 3. **Observation-only** — the exported [`StatSet`] is bit-identical
//!    with tracing armed vs disarmed, under both simulation kernels,
//!    so traced runs can share the memo cache with untraced ones.

use tus::System;
use tus_sim::stats::names;
use tus_sim::trace::Attribution;
use tus_sim::{KernelKind, PolicyKind, SimConfig, StatSet};
use tus_workloads::by_name;

const WARMUP: u64 = 500;
const INSTS: u64 = 3_000;
const BUDGET: u64 = 400 * (WARMUP + INSTS) + 2_000_000;

fn build(workload: &str, policy: PolicyKind, kernel: KernelKind, seed: u64) -> System {
    let w = by_name(workload).expect("built-in workload");
    let cores = if w.parallel { 16 } else { 1 };
    let cfg: SimConfig = {
        let mut b = SimConfig::builder();
        b.cores(cores).sb_entries(32).policy(policy).kernel(kernel);
        b.build()
    };
    let traces = w.traces(cores, seed, WARMUP + INSTS + 10_000);
    System::new(&cfg, traces, seed)
}

struct Observed {
    stats: StatSet,
    warm_attr: Vec<Attribution>,
    end_attr: Vec<Attribution>,
    warm_cycles: f64,
    end_cycles: f64,
}

fn run_one(workload: &str, policy: PolicyKind, kernel: KernelKind, seed: u64, trace: bool) -> Observed {
    let mut sys = build(workload, policy, kernel, seed);
    if trace {
        sys.enable_trace(8_192);
    }
    let warm = sys.run_committed(WARMUP, BUDGET);
    let warm_attr = sys.attributions();
    let end = sys.run_committed(WARMUP + INSTS, BUDGET);
    let end_attr = sys.attributions();
    sys.check_attribution();
    if trace {
        // The event streams must be harvestable without disturbing stats.
        let tracks = sys.take_traces();
        assert!(!tracks.is_empty());
    }
    Observed {
        stats: end.clone(),
        warm_attr,
        end_attr,
        warm_cycles: warm.get(names::CYCLES),
        end_cycles: end.get(names::CYCLES),
    }
}

/// Every (policy, kernel, workload, seed) point holds all three
/// invariants.
#[test]
fn attribution_partitions_cycles_everywhere() {
    for workload in ["502.gcc1-like", "557.xz-like"] {
        for policy in PolicyKind::ALL {
            for kernel in KernelKind::ALL {
                for seed in [1u64, 42] {
                    let o = run_one(workload, policy, kernel, seed, true);
                    let label = format!("{workload}/{}/{}/s{seed}", policy.label(), kernel.label());
                    assert!(o.end_cycles > 0.0, "{label}: no cycles");
                    for (i, attr) in o.end_attr.iter().enumerate() {
                        // 1. Sum of categories == total cycles, per core.
                        assert_eq!(
                            attr.total() as f64, o.end_cycles,
                            "{label}: core{i} attribution does not cover the run",
                        );
                        // 2. Monotone across the warm-up boundary: the
                        // measured-window delta is well-defined and covers
                        // exactly the measured cycles. `since` panics if
                        // any category went backwards.
                        let delta = attr.since(&o.warm_attr[i]);
                        assert_eq!(
                            delta.total() as f64,
                            o.end_cycles - o.warm_cycles,
                            "{label}: core{i} measured-window attribution mismatch",
                        );
                    }
                }
            }
        }
    }
}

/// Arming the tracer changes nothing observable: exported stats are
/// bit-identical with tracing on vs off, on both kernels.
#[test]
fn tracing_is_observation_only() {
    for policy in [PolicyKind::Baseline, PolicyKind::Tus, PolicyKind::Csb] {
        for kernel in KernelKind::ALL {
            let off = run_one("502.gcc1-like", policy, kernel, 42, false);
            let on = run_one("502.gcc1-like", policy, kernel, 42, true);
            assert_eq!(
                off.stats, on.stats,
                "{}/{}: tracing perturbed the simulation",
                policy.label(),
                kernel.label(),
            );
        }
    }
}

/// The two kernels agree on attribution, not just on stats: the same
/// run produces the same per-core category totals under lockstep and
/// idle-skipping execution.
#[test]
fn kernels_agree_on_attribution() {
    for policy in [PolicyKind::Baseline, PolicyKind::Tus] {
        let lock = run_one("557.xz-like", policy, KernelKind::Lockstep, 7, true);
        let skip = run_one("557.xz-like", policy, KernelKind::Skip, 7, true);
        assert_eq!(lock.stats, skip.stats, "{}: kernels diverge", policy.label());
        for (l, s) in lock.end_attr.iter().zip(&skip.end_attr) {
            for (class, n) in l.iter() {
                assert_eq!(n, s.get(class), "{}: {class:?} differs", policy.label());
            }
        }
    }
}
