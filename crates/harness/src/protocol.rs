//! The `tus-serve` wire protocol: length-prefixed binary frames.
//!
//! One warm simulator process serves many clients over a unix socket or
//! TCP; this module defines what travels on the wire. The format is
//! deliberately tiny and std-only:
//!
//! ```text
//! frame := u32-LE body-length | u8 kind | body
//! ```
//!
//! `kind` is a [`FrameKind`] discriminant (requests `0x01..=0x7f`,
//! replies `0x81..=0xff`). Bodies are UTF-8 text — `key value`-style
//! header lines for requests, and the harness's existing text formats
//! for payloads (run results travel as
//! [`crate::executor::encode_result`] text, deadlocks as the rendered
//! [`tus::DeadlockReport`]), so the protocol inherits the bit-exactness
//! guarantees those formats already have and every frame is debuggable
//! with `xxd`.
//!
//! A request is answered by zero or more [`FrameKind::Progress`] frames
//! followed by exactly one terminal frame: the request's success reply
//! or [`FrameKind::Error`]. Malformed input — unknown kind, oversized
//! body, bad header lines — becomes a structured error reply, never a
//! server panic: the daemon treats every byte off the wire as hostile.
//!
//! Error bodies put a stable machine-readable token on the first line
//! ([`crate::errors::HarnessError::kind_token`]) and the rendered,
//! human-readable error — including a full deadlock report, when there
//! is one — after it.

use std::io::{Read, Write};

use crate::errors::HarnessError;

/// Protocol version, exchanged in `hello`/`helloed` frames. Bump on any
/// incompatible frame-layout or body-format change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame body (64 MiB). A length prefix beyond this is
/// treated as a protocol error rather than an allocation request —
/// garbage on the wire must not OOM the daemon.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Frame discriminants. Requests have the high bit clear; replies set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    // Requests.
    /// Liveness check; body is echoed back in the `Pong`.
    Ping = 0x01,
    /// Run (or recall) one experiment point; body is a header block
    /// (`workload=`, `policy=`, `sb=`, optional `scale=`, `seed=`,
    /// `kernel=`, `coherence=`, `budget=`). An unknown `coherence=`
    /// label is a structured protocol-error reply, like every other
    /// malformed header.
    RunPoint = 0x02,
    /// Run a named experiment (`name=fig10`, optional `scale=`, `seed=`,
    /// `kernel=`, `coherence=`, `parallel_cap=`); CSVs land in the
    /// server's output directory.
    Experiment = 0x03,
    /// Run a differential fuzz sweep (`programs=`, `seeds=`, `seed=`,
    /// optional `policy=`, `kernel=`, `coherence=`).
    FuzzSweep = 0x04,
    /// Capture one traced run (`workload=`, optional `policy=`, `sb=`,
    /// `insts=`, `seed=`, `kernel=`, `coherence=`); the reply body is
    /// Chrome-trace JSON.
    TraceCapture = 0x05,
    /// Ask for the daemon's lifetime counters.
    Counters = 0x06,
    /// Ask the daemon to shut down cleanly.
    Shutdown = 0x07,
    /// Run a bounded exhaustive model check (`litmus=`, `programs=`,
    /// optional `corpus=`, `seed=`, `max_threads=`, `max_ops=`,
    /// `max_states=`, `seeds=`, `reduction=`, `lazy=`, `policy=`,
    /// `kernel=`, `coherence=`).
    Check = 0x08,

    // Replies.
    /// Echo reply to `Ping`.
    Pong = 0x81,
    /// Intermediate human-readable progress line(s).
    Progress = 0x82,
    /// Terminal reply to `RunPoint`: header lines (`executed=`,
    /// `memo_hits=`, `disk_hits=`, `seconds=`), a blank line, then
    /// [`crate::executor::encode_result`] text.
    RunDone = 0x83,
    /// Terminal reply to `Experiment`: counter header lines.
    ExperimentDone = 0x84,
    /// Terminal reply to `FuzzSweep`: `programs=`, `violations=`,
    /// `seconds=` headers, a blank line, then rendered findings (if any).
    FuzzDone = 0x85,
    /// Terminal reply to `TraceCapture`: Chrome-trace JSON body.
    TraceDone = 0x86,
    /// Terminal reply to `Counters`.
    CountersReply = 0x87,
    /// Terminal structured error reply (any request).
    Error = 0x88,
    /// Terminal reply to `Shutdown`, sent before the daemon exits.
    ShutdownOk = 0x89,
    /// Terminal reply to `Check`: `programs=`, `verified=`,
    /// `violations=`, `bound_exceeded=`, `explored=`, `memoized=`,
    /// `pruned=`, `seconds=` headers, a blank line, then rendered
    /// findings and the per-policy stats table.
    CheckDone = 0x8a,
}

impl FrameKind {
    /// Decodes a wire discriminant.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        use FrameKind::*;
        Some(match b {
            0x01 => Ping,
            0x02 => RunPoint,
            0x03 => Experiment,
            0x04 => FuzzSweep,
            0x05 => TraceCapture,
            0x06 => Counters,
            0x07 => Shutdown,
            0x08 => Check,
            0x81 => Pong,
            0x82 => Progress,
            0x83 => RunDone,
            0x84 => ExperimentDone,
            0x85 => FuzzDone,
            0x86 => TraceDone,
            0x87 => CountersReply,
            0x88 => Error,
            0x89 => ShutdownOk,
            0x8a => CheckDone,
            _ => return None,
        })
    }

    /// Whether this is a terminal reply (ends a request's reply stream).
    pub fn is_terminal_reply(self) -> bool {
        (self as u8) >= 0x80 && self != FrameKind::Progress
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// UTF-8 body (may be empty).
    pub body: String,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, body: impl Into<String>) -> Frame {
        Frame { kind, body: body.into() }
    }
}

/// Writes one frame: `u32-LE (body+1) | u8 kind | body`.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &str) -> std::io::Result<()> {
    let len = (body.len() as u32).checked_add(1).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame body too long")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[kind as u8])?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// What came off the wire when a frame was requested.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A well-formed frame.
    Frame(Frame),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Eof,
    /// The bytes were not a well-formed frame (bad length, unknown kind,
    /// non-UTF-8 body). The connection should be dropped after an error
    /// reply; the stream is no longer frame-aligned.
    Malformed(String),
}

/// Reads one frame. I/O errors (including EOF mid-frame) surface as
/// `Err`; garbage that arrived intact surfaces as
/// [`ReadOutcome::Malformed`] so the server can answer it with a
/// structured error instead of dying.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<ReadOutcome> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(ReadOutcome::Eof),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Ok(ReadOutcome::Malformed("zero-length frame".into()));
    }
    if len > MAX_FRAME_LEN {
        return Ok(ReadOutcome::Malformed(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut kind_buf = [0u8; 1];
    r.read_exact(&mut kind_buf)?;
    let mut body = vec![0u8; len as usize - 1];
    r.read_exact(&mut body)?;
    let Some(kind) = FrameKind::from_u8(kind_buf[0]) else {
        return Ok(ReadOutcome::Malformed(format!(
            "unknown frame kind 0x{:02x}",
            kind_buf[0]
        )));
    };
    match String::from_utf8(body) {
        Ok(body) => Ok(ReadOutcome::Frame(Frame { kind, body })),
        Err(_) => Ok(ReadOutcome::Malformed("non-UTF-8 frame body".into())),
    }
}

/// Renders a [`HarnessError`] as an error-frame body: the stable kind
/// token on line one, the rendered error after it.
pub fn encode_error(e: &HarnessError) -> String {
    format!("{}\n{e}", e.kind_token())
}

/// Splits an error-frame body back into `(kind token, rendered message)`.
pub fn decode_error(body: &str) -> (&str, &str) {
    match body.split_once('\n') {
        Some((token, rest)) => (token, rest),
        None => (body, ""),
    }
}

/// Parses a request body's `key=value` header lines into a map.
/// Duplicate keys keep the last value; a line without `=` is a protocol
/// error. Parsing stops at the first blank line (the rest is payload).
pub fn parse_headers(body: &str) -> Result<std::collections::HashMap<&str, &str>, HarnessError> {
    let mut map = std::collections::HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            break;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(HarnessError::Protocol {
                what: format!("malformed header line {line:?}"),
            });
        };
        map.insert(k, v);
    }
    Ok(map)
}

/// Fetches a required header.
pub fn require<'a>(
    headers: &std::collections::HashMap<&str, &'a str>,
    key: &str,
) -> Result<&'a str, HarnessError> {
    headers.get(key).copied().ok_or_else(|| HarnessError::Protocol {
        what: format!("missing required header {key:?}"),
    })
}

/// Parses an optional numeric header.
pub fn numeric<T: std::str::FromStr>(
    headers: &std::collections::HashMap<&str, &str>,
    key: &str,
) -> Result<Option<T>, HarnessError> {
    match headers.get(key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| HarnessError::Protocol {
            what: format!("header {key}={v:?} is not a valid number"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::RunPoint, "workload=x\npolicy=tus\n").unwrap();
        write_frame(&mut buf, FrameKind::Ping, "").unwrap();
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r).unwrap() {
            ReadOutcome::Frame(f) => {
                assert_eq!(f.kind, FrameKind::RunPoint);
                assert_eq!(f.body, "workload=x\npolicy=tus\n");
            }
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r).unwrap() {
            ReadOutcome::Frame(f) => {
                assert_eq!(f.kind, FrameKind::Ping);
                assert!(f.body.is_empty());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut r).unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn every_kind_survives_the_wire() {
        use FrameKind::*;
        for kind in [
            Ping, RunPoint, Experiment, FuzzSweep, TraceCapture, Counters, Shutdown, Check, Pong,
            Progress, RunDone, ExperimentDone, FuzzDone, TraceDone, CountersReply, Error,
            ShutdownOk, CheckDone,
        ] {
            assert_eq!(FrameKind::from_u8(kind as u8), Some(kind));
            let mut buf = Vec::new();
            write_frame(&mut buf, kind, "x").unwrap();
            match read_frame(&mut std::io::Cursor::new(buf)).unwrap() {
                ReadOutcome::Frame(f) => assert_eq!(f.kind, kind),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn garbage_is_malformed_not_fatal() {
        // Unknown kind byte.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0x7e, b'x']);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        // Absurd length prefix must not allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0x01);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        // Zero-length frame.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        // Non-UTF-8 body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0x01, 0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(buf)).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        // A frame torn mid-body is an I/O error (peer vanished).
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0x01, b'h', b'i']);
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn headers_parse_and_reject_garbage() {
        let h = parse_headers("a=1\nb=two\n\nfree text, not = parsed").unwrap();
        assert_eq!(h.get("a"), Some(&"1"));
        assert_eq!(h.get("b"), Some(&"two"));
        assert_eq!(h.len(), 2);
        assert_eq!(require(&h, "a").unwrap(), "1");
        assert!(require(&h, "missing").is_err());
        assert_eq!(numeric::<u64>(&h, "a").unwrap(), Some(1));
        assert!(numeric::<u64>(&h, "b").is_err());
        assert_eq!(numeric::<u64>(&h, "missing").unwrap(), None);
        assert!(parse_headers("no equals sign").is_err());
    }

    #[test]
    fn error_bodies_round_trip_the_kind_token() {
        let e = HarnessError::UnknownWorkload { name: "zzz".into() };
        let body = encode_error(&e);
        let (token, msg) = decode_error(&body);
        assert_eq!(token, "unknown_workload");
        assert!(msg.contains("zzz"));
    }
}
