use std::time::Instant;
use tus_harness::{run, RunSpec, Scale};
use tus_sim::PolicyKind;
use tus_workloads::by_name;

fn main() {
    for (w, p) in [("502.gcc5-like", PolicyKind::Baseline), ("502.gcc5-like", PolicyKind::Tus), ("505.mcf-like", PolicyKind::Tus), ("541.leela-like", PolicyKind::Baseline)] {
        let spec = RunSpec { warmup: 0, insts: 200_000, ..RunSpec::new(by_name(w).unwrap(), p, 114, Scale::Quick) };
        let t = Instant::now();
        let r = run(&spec);
        let dt = t.elapsed().as_secs_f64();
        println!("{w} {p:?}: {:.0} insts, {:.0} cycles, ipc {:.3}, sbstall {:.3}, {:.2} s => {:.2} Minst/s", r.committed, r.cycles, r.ipc, r.sb_stall_frac, dt, r.committed/1e6/dt);
    }
    // one parallel run
    let spec = RunSpec { warmup: 0, insts: 20_000, ..RunSpec::new(by_name("dedup-like").unwrap(), PolicyKind::Tus, 114, Scale::Quick) };
    let t = Instant::now();
    let r = run(&spec);
    let dt = t.elapsed().as_secs_f64();
    println!("dedup16 TUS: {:.0} insts total, ipc {:.3}, {:.2} s => {:.2} Minst/s", r.committed, r.ipc, dt, r.committed/1e6/dt);
}
