//! The workload archetype model.
//!
//! [`ArchetypeParams`] captures the handful of store-traffic properties
//! the paper's per-benchmark analysis turns on; [`ArchetypeTrace`]
//! generates an instruction stream with those properties. Generators are
//! deterministic per seed and never materialize the whole trace.

use tus_cpu::{OpClass, TraceInst, TraceSource};
use tus_sim::{Addr, SimRng};

/// Store-traffic character of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchetypeParams {
    /// Fraction of instructions that are memory operations.
    pub mem_ratio: f64,
    /// Of the memory operations, the fraction that are stores.
    pub store_fraction: f64,
    /// Mean store-burst length in stores (bursts write consecutive
    /// addresses — the `gcc` pattern that fills the SB faster than it
    /// drains).
    pub burst_len_mean: f64,
    /// Byte stride between consecutive stores of a burst (8 = dense
    /// line-filling bursts that coalesce well).
    pub burst_stride: u64,
    /// Working-set size in bytes; addresses outside the hot set are
    /// uniform over this range (larger than the LLC ⇒ DRAM misses, the
    /// `mcf` long-latency pattern).
    pub working_set: u64,
    /// Probability that an access targets the hot set instead of the
    /// cold working set.
    pub locality: f64,
    /// Store-specific locality override (`None` = use `locality`). The
    /// `mcf` archetype keeps loads cache-friendly while stores miss deep
    /// in the working set — the long-latency-store pattern TUS hides.
    pub store_locality: Option<f64>,
    /// Hot-set size in bytes (cache-resident region).
    pub hot_set: u64,
    /// Probability that a load depends on the previous load
    /// (pointer-chasing; serializes misses).
    pub pointer_chase: f64,
    /// Mean register-dependency distance of ALU operations.
    pub dep_mean: f64,
    /// Fraction of ALU operations that are floating point.
    pub fp_fraction: f64,
    /// Fraction of ALU operations that are divisions.
    pub div_fraction: f64,
}

impl Default for ArchetypeParams {
    fn default() -> Self {
        ArchetypeParams {
            mem_ratio: 0.35,
            store_fraction: 0.35,
            burst_len_mean: 2.0,
            burst_stride: 8,
            working_set: 8 << 20,
            locality: 0.85,
            store_locality: None,
            hot_set: 16 << 10,
            pointer_chase: 0.0,
            dep_mean: 4.0,
            fp_fraction: 0.2,
            div_fraction: 0.01,
        }
    }
}

/// Multi-threaded sharing behaviour (PARSEC archetypes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingParams {
    /// Probability a memory access targets the shared region.
    pub shared_fraction: f64,
    /// Shared-region size in bytes (smaller ⇒ more conflicts).
    pub shared_set: u64,
    /// Probability that a shared access is a store (conflict writes).
    pub shared_store_fraction: f64,
}

impl Default for SharingParams {
    fn default() -> Self {
        SharingParams {
            shared_fraction: 0.0,
            shared_set: 64 << 10,
            shared_store_fraction: 0.5,
        }
    }
}

/// A deterministic trace generator for an archetype.
#[derive(Debug, Clone)]
pub struct ArchetypeTrace {
    p: ArchetypeParams,
    sharing: SharingParams,
    rng: SimRng,
    remaining: u64,
    private_base: u64,
    shared_base: u64,
    burst_left: u64,
    burst_cursor: u64,
    since_last_load: u32,
    value_counter: u64,
}

/// Base address of the shared region for parallel workloads.
pub const SHARED_BASE: u64 = 0x4000_0000;

/// Spacing between per-core private regions.
pub const PRIVATE_SPACING: u64 = 0x1_0000_0000;

impl ArchetypeTrace {
    /// Creates a generator producing `limit` instructions for logical
    /// thread `tid` (its private region is disjoint from other threads').
    pub fn new(
        p: ArchetypeParams,
        sharing: SharingParams,
        tid: usize,
        seed: u64,
        limit: u64,
    ) -> Self {
        ArchetypeTrace {
            p,
            sharing,
            rng: SimRng::seed(seed ^ (tid as u64).wrapping_mul(0xabcd_ef01_2345_6789)),
            remaining: limit,
            private_base: 0x1000_0000 + tid as u64 * PRIVATE_SPACING,
            shared_base: SHARED_BASE,
            burst_left: 0,
            burst_cursor: 0,
            since_last_load: 0,
            value_counter: 1,
        }
    }

    fn aligned(&mut self, base: u64, span: u64) -> u64 {
        let slots = (span / 8).max(1);
        base + self.rng.range(0, slots) * 8
    }

    fn private_addr(&mut self) -> u64 {
        self.private_addr_with(self.p.locality)
    }

    fn private_addr_with(&mut self, locality: f64) -> u64 {
        if self.rng.chance(locality) {
            let hot = self.p.hot_set;
            self.aligned(self.private_base, hot)
        } else {
            let ws = self.p.working_set;
            self.aligned(self.private_base, ws)
        }
    }

    fn next_store(&mut self) -> TraceInst {
        let shared = self.rng.chance(self.sharing.shared_fraction)
            && self.rng.chance(self.sharing.shared_store_fraction);
        let addr = if shared {
            let span = self.sharing.shared_set;
            self.aligned(self.shared_base, span)
        } else if self.burst_left > 0 {
            self.burst_left -= 1;
            let a = self.burst_cursor;
            self.burst_cursor += self.p.burst_stride;
            a
        } else {
            let len = self.rng.geometric(self.p.burst_len_mean);
            let loc = self.p.store_locality.unwrap_or(self.p.locality);
            let base = self.private_addr_with(loc);
            self.burst_left = len.saturating_sub(1);
            self.burst_cursor = base + self.p.burst_stride;
            base
        };
        let v = self.value_counter;
        self.value_counter += 1;
        TraceInst::store(Addr::new(addr), 8, v)
    }

    fn next_load(&mut self) -> TraceInst {
        let shared = self.rng.chance(self.sharing.shared_fraction);
        let addr = if shared {
            let span = self.sharing.shared_set;
            self.aligned(self.shared_base, span)
        } else {
            self.private_addr()
        };
        let mut inst = TraceInst::load(Addr::new(addr), 8);
        if self.rng.chance(self.p.pointer_chase) && self.since_last_load > 0 {
            // Serialize behind the previous load (pointer chasing).
            inst = inst.with_deps(self.since_last_load, 0);
        }
        self.since_last_load = 0;
        inst
    }

    fn next_alu(&mut self) -> TraceInst {
        let op = if self.rng.chance(self.p.div_fraction) {
            if self.rng.chance(self.p.fp_fraction) {
                OpClass::FpDiv
            } else {
                OpClass::IntDiv
            }
        } else if self.rng.chance(self.p.fp_fraction) {
            if self.rng.chance(0.5) {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            }
        } else if self.rng.chance(0.1) {
            OpClass::IntMul
        } else {
            OpClass::IntAlu
        };
        let dep = self.rng.geometric(self.p.dep_mean).min(256) as u32;
        TraceInst {
            op,
            ..TraceInst::alu().with_deps(dep, 0)
        }
    }
}

impl TraceSource for ArchetypeTrace {
    fn next_inst(&mut self) -> Option<TraceInst> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.since_last_load = self.since_last_load.saturating_add(1);
        let inst = if self.rng.chance(self.p.mem_ratio) {
            if self.rng.chance(self.p.store_fraction) {
                self.next_store()
            } else {
                self.next_load()
            }
        } else {
            self.next_alu()
        };
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(p: ArchetypeParams, n: u64, seed: u64) -> Vec<TraceInst> {
        let mut t = ArchetypeTrace::new(p, SharingParams::default(), 0, seed, n);
        std::iter::from_fn(|| t.next_inst()).collect()
    }

    #[test]
    fn respects_limit_and_determinism() {
        let a = collect(ArchetypeParams::default(), 1000, 42);
        let b = collect(ArchetypeParams::default(), 1000, 42);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = collect(ArchetypeParams::default(), 1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mem_ratio_roughly_matches() {
        let p = ArchetypeParams {
            mem_ratio: 0.5,
            ..ArchetypeParams::default()
        };
        let insts = collect(p, 20_000, 1);
        let mem = insts.iter().filter(|i| i.op.is_mem()).count() as f64 / 20_000.0;
        assert!((0.45..0.55).contains(&mem), "mem ratio {mem}");
    }

    #[test]
    fn store_bursts_write_consecutive_addresses() {
        let p = ArchetypeParams {
            mem_ratio: 1.0,
            store_fraction: 1.0,
            burst_len_mean: 16.0,
            burst_stride: 8,
            ..ArchetypeParams::default()
        };
        let insts = collect(p, 1000, 7);
        // Count adjacent store pairs with +8 stride.
        let consec = insts
            .windows(2)
            .filter(|w| w[1].addr.raw() == w[0].addr.raw() + 8)
            .count();
        assert!(consec > 500, "bursty trace had only {consec} consecutive pairs");
    }

    #[test]
    fn pointer_chase_sets_load_deps() {
        let p = ArchetypeParams {
            mem_ratio: 1.0,
            store_fraction: 0.0,
            pointer_chase: 1.0,
            ..ArchetypeParams::default()
        };
        let insts = collect(p, 100, 3);
        let chained = insts.iter().skip(1).filter(|i| i.dep1 > 0).count();
        assert!(chained > 90, "only {chained} chained loads");
    }

    #[test]
    fn addresses_stay_in_private_region() {
        let p = ArchetypeParams {
            working_set: 1 << 20,
            ..ArchetypeParams::default()
        };
        let mut t = ArchetypeTrace::new(p, SharingParams::default(), 2, 9, 5000);
        let base = 0x1000_0000 + 2 * PRIVATE_SPACING;
        while let Some(i) = t.next_inst() {
            if i.op.is_mem() {
                assert!(i.addr.raw() >= base && i.addr.raw() < base + (1 << 20) + 4096);
            }
        }
    }

    #[test]
    fn sharing_targets_shared_region() {
        let sharing = SharingParams {
            shared_fraction: 1.0,
            shared_set: 4096,
            shared_store_fraction: 1.0,
        };
        let mut t = ArchetypeTrace::new(
            ArchetypeParams {
                mem_ratio: 1.0,
                store_fraction: 1.0,
                ..ArchetypeParams::default()
            },
            sharing,
            0,
            1,
            1000,
        );
        let mut any = false;
        while let Some(i) = t.next_inst() {
            if i.op.is_mem() {
                assert!(i.addr.raw() >= SHARED_BASE && i.addr.raw() < SHARED_BASE + 4096 + 8);
                any = true;
            }
        }
        assert!(any);
    }

    #[test]
    fn store_values_unique() {
        let p = ArchetypeParams {
            mem_ratio: 1.0,
            store_fraction: 1.0,
            ..ArchetypeParams::default()
        };
        let insts = collect(p, 500, 5);
        let mut vals: Vec<u64> = insts.iter().map(|i| i.value).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 500);
    }
}
