//! Differential TSO fuzzing: generate → check → shrink.
//!
//! The litmus corpus pins down the famous shapes, but TUS's correctness
//! argument is universal: *every* program must stay within x86-TSO. This
//! module closes the gap with a seeded random litmus generator biased
//! toward the patterns that stress the TUS machinery (cross-line store
//! bursts that force WCB atomic groups, address pairs colliding in the
//! 16-LSB lex order, same-line packing, fence-adjacent races), a
//! differential checker that runs each program across all five drain
//! policies × many timing seeds against the axiomatic reference set from
//! [`crate::refmodel`], and a greedy shrinker that minimizes violating
//! programs (drop ops → drop threads → merge locations) before they are
//! reported or persisted.
//!
//! Everything is deterministic in the base seed, so a CI failure is
//! replayable bit-for-bit from its corpus file.

use tus_sim::{Addr, CoherenceKind, KernelKind, PolicyKind, SimRng};

use crate::conformance::{check_conformance_matrix, default_addrs};
use crate::prog::{LOp, Loc, Outcome, Program, Thread};

/// Maximum threads per generated program (one simulator core each).
pub const MAX_THREADS: usize = 4;
/// Maximum distinct locations per generated program.
pub const MAX_LOCS: usize = 6;
/// Maximum total operations — keeps the reference model's exhaustive
/// interleaving enumeration instant.
pub const MAX_OPS: usize = 12;

/// First cache line used for fuzz locations (decimal line number of the
/// litmus base address).
const BASE_LINE: u64 = 0x4000;

/// How the generator lays fuzz locations out in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrLayout {
    /// Each location on its own line, distinct lex orders (the litmus
    /// default).
    DistinctLines,
    /// Consecutive locations paired onto lines sharing all 16 LSBs —
    /// equal lex order, distinct lines (paper §deadlock resolution).
    LexCollidingPairs,
    /// Consecutive locations packed into the *same* line at distinct
    /// 8-byte offsets (exercises WCB coalescing and store forwarding).
    SameLinePairs,
}

/// A generated program plus its location→address map. The map is part of
/// the case: TSO semantics do not depend on it, but the simulator paths a
/// program exercises (lex conflicts, coalescing) very much do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The litmus program.
    pub program: Program,
    /// Address of each location (8-byte slots; may share cache lines).
    pub addrs: Vec<Addr>,
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (l, a) in self.addrs.iter().enumerate() {
            writeln!(
                f,
                "loc {l} -> addr {:#x} (line {:#x}, lex16 {:#x})",
                a.raw(),
                a.line().raw(),
                a.line().lex_order(16)
            )?;
        }
        for (i, t) in self.program.threads.iter().enumerate() {
            write!(f, "T{i}:")?;
            for op in &t.ops {
                match op {
                    LOp::Store { loc, val } => write!(f, " st x{} {}", loc.0, val)?,
                    LOp::Load { loc } => write!(f, " ld x{}", loc.0)?,
                    LOp::Fence => write!(f, " mfence")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Generates one random litmus case, deterministically from `rng`.
pub fn generate_case(rng: &mut SimRng) -> FuzzCase {
    let threads_n = 1 + rng.index(MAX_THREADS);
    let locs_n = 1 + rng.index(MAX_LOCS);
    // Total op budget: at least one per thread, at most MAX_OPS.
    let total_ops = rng.range(threads_n as u64 * 2, MAX_OPS as u64 + 1).max(threads_n as u64) as usize;
    let mut budgets = vec![1usize; threads_n];
    for _ in threads_n..total_ops {
        budgets[rng.index(threads_n)] += 1;
    }

    let mut val = 1u64; // globally unique store values
    let mut threads = Vec::with_capacity(threads_n);
    for budget in budgets {
        let mut ops: Vec<LOp> = Vec::with_capacity(budget);
        while ops.len() < budget {
            let left = budget - ops.len();
            if rng.chance(0.55) {
                // Store burst: 1–3 stores to (mostly) distinct locations
                // back to back — the shape that builds WCB atomic groups.
                let burst = 1 + rng.index(3.min(left));
                let start = rng.index(locs_n);
                for k in 0..burst {
                    let loc = if rng.chance(0.8) {
                        (start + k) % locs_n // cross-line sweep
                    } else {
                        rng.index(locs_n) // occasional repeat/collision
                    };
                    ops.push(LOp::Store { loc: Loc(loc), val });
                    val += 1;
                }
                // Fence-adjacent race: sometimes pin the burst with a
                // fence so a following load races against drained state.
                if ops.len() < budget && rng.chance(0.25) {
                    ops.push(LOp::Fence);
                }
            } else if rng.chance(0.15) {
                ops.push(LOp::Fence);
            } else {
                ops.push(LOp::Load {
                    loc: Loc(rng.index(locs_n)),
                });
            }
        }
        ops.truncate(budget);
        threads.push(Thread::new(ops));
    }
    let program = Program::new(threads);

    let layout = match rng.index(3) {
        0 => AddrLayout::DistinctLines,
        1 => AddrLayout::LexCollidingPairs,
        _ => AddrLayout::SameLinePairs,
    };
    // The program may use fewer locations than `locs_n`; map whatever it
    // declares (max index + 1).
    let addrs = layout_addrs(layout, program.locations().max(1));
    FuzzCase { program, addrs }
}

fn layout_addrs(layout: AddrLayout, n: usize) -> Vec<Addr> {
    (0..n as u64)
        .map(|i| match layout {
            AddrLayout::DistinctLines => Addr::new((BASE_LINE + i) * 64),
            // Pair (2k, 2k+1): lines differ only above bit 15, so their
            // 16-LSB lex orders are equal.
            AddrLayout::LexCollidingPairs => {
                Addr::new((BASE_LINE + i / 2 + (i % 2) * (1 << 16)) * 64)
            }
            // Pair (2k, 2k+1): same line, different 8-byte slots.
            AddrLayout::SameLinePairs => Addr::new((BASE_LINE + i / 2) * 64 + (i % 2) * 8),
        })
        .collect()
}

/// Why a case failed the differential check.
#[derive(Debug)]
pub enum FailureKind {
    /// The simulator produced an outcome outside the TSO-allowed set.
    Violation(Outcome),
    /// A run hung (cycle budget / progress watchdog); rendered deadlock
    /// diagnostics attached.
    Timeout {
        /// The timing seed that hung.
        seed: u64,
        /// Rendered [`tus::DeadlockReport`].
        report: String,
    },
    /// A run completed with an inconsistent register count.
    Truncated {
        /// The timing seed affected.
        seed: u64,
    },
    /// The model checker's enumeration never reached a TSO-allowed
    /// outcome — the policy machine is over-strong at the bound (only
    /// produced by [`crate::check`], never by simulator runs).
    Missing(Outcome),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Violation(o) => write!(f, "non-TSO outcome {o}"),
            FailureKind::Timeout { seed, .. } => write!(f, "hang at timing seed {seed}"),
            FailureKind::Truncated { seed } => {
                write!(f, "truncated registers at timing seed {seed}")
            }
            FailureKind::Missing(o) => write!(f, "unreachable TSO outcome {o} (over-strong)"),
        }
    }
}

/// A failed differential check: which policy failed and how.
#[derive(Debug)]
pub struct CaseFailure {
    /// The drain policy that misbehaved.
    pub policy: PolicyKind,
    /// The first failure observed.
    pub kind: FailureKind,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy {}: {}", self.policy.label(), self.kind)
    }
}

/// Differentially checks `case` under one policy across `seeds` timing
/// variations; `None` means every run completed and stayed within TSO.
pub fn check_policy(case: &FuzzCase, policy: PolicyKind, seeds: u64) -> Option<CaseFailure> {
    check_policy_kernel(case, policy, seeds, KernelKind::default())
}

/// [`check_policy`] under an explicit simulation kernel.
pub fn check_policy_kernel(
    case: &FuzzCase,
    policy: PolicyKind,
    seeds: u64,
    kernel: KernelKind,
) -> Option<CaseFailure> {
    check_policy_matrix(case, policy, seeds, kernel, CoherenceKind::default())
}

/// [`check_policy_kernel`] under an explicit coherence backend — one
/// point of the policy × kernel × backend differential matrix.
pub fn check_policy_matrix(
    case: &FuzzCase,
    policy: PolicyKind,
    seeds: u64,
    kernel: KernelKind,
    coherence: CoherenceKind,
) -> Option<CaseFailure> {
    let report =
        check_conformance_matrix(&case.program, &case.addrs, policy, seeds, kernel, coherence);
    if let Some(o) = report.violations.first() {
        return Some(CaseFailure {
            policy,
            kind: FailureKind::Violation(o.clone()),
        });
    }
    if let Some((seed, r)) = report.timeouts.first() {
        return Some(CaseFailure {
            policy,
            kind: FailureKind::Timeout {
                seed: *seed,
                report: format!("{r}"),
            },
        });
    }
    if let Some(seed) = report.truncated_seeds.first() {
        return Some(CaseFailure {
            policy,
            kind: FailureKind::Truncated { seed: *seed },
        });
    }
    None
}

/// Differentially checks `case` across **all five** drain policies.
pub fn check_case(case: &FuzzCase, seeds: u64) -> Option<CaseFailure> {
    check_case_kernel(case, seeds, KernelKind::default())
}

/// [`check_case`] under an explicit simulation kernel.
pub fn check_case_kernel(case: &FuzzCase, seeds: u64, kernel: KernelKind) -> Option<CaseFailure> {
    check_case_matrix(case, seeds, kernel, CoherenceKind::default())
}

/// [`check_case_kernel`] under an explicit coherence backend: all five
/// drain policies, one kernel, one backend.
pub fn check_case_matrix(
    case: &FuzzCase,
    seeds: u64,
    kernel: KernelKind,
    coherence: CoherenceKind,
) -> Option<CaseFailure> {
    PolicyKind::ALL
        .iter()
        .find_map(|&p| check_policy_matrix(case, p, seeds, kernel, coherence))
}

/// Drops threads that became empty and compacts location indices,
/// keeping the surviving locations' addresses.
fn normalize(case: &FuzzCase) -> FuzzCase {
    let threads: Vec<Thread> = case
        .program
        .threads
        .iter()
        .filter(|t| !t.ops.is_empty())
        .cloned()
        .collect();
    // Locations actually referenced, in index order.
    let mut used: Vec<usize> = threads
        .iter()
        .flat_map(|t| t.ops.iter())
        .filter_map(|o| match o {
            LOp::Store { loc, .. } | LOp::Load { loc } => Some(loc.0),
            LOp::Fence => None,
        })
        .collect();
    used.sort_unstable();
    used.dedup();
    let remap = |l: usize| Loc(used.binary_search(&l).expect("used location"));
    let threads = threads
        .into_iter()
        .map(|t| {
            Thread::new(
                t.ops
                    .into_iter()
                    .map(|o| match o {
                        LOp::Store { loc, val } => LOp::Store { loc: remap(loc.0), val },
                        LOp::Load { loc } => LOp::Load { loc: remap(loc.0) },
                        LOp::Fence => LOp::Fence,
                    })
                    .collect(),
            )
        })
        .collect();
    let addrs = used.iter().map(|&l| case.addrs[l]).collect();
    FuzzCase {
        program: Program::new(threads),
        addrs,
    }
}

/// Rewrites every reference to location `from` as `to` (`to < from`),
/// then normalizes.
fn merge_locs(case: &FuzzCase, from: usize, to: usize) -> FuzzCase {
    let threads = case
        .program
        .threads
        .iter()
        .map(|t| {
            Thread::new(
                t.ops
                    .iter()
                    .map(|o| match *o {
                        LOp::Store { loc, val } if loc.0 == from => {
                            LOp::Store { loc: Loc(to), val }
                        }
                        LOp::Load { loc } if loc.0 == from => LOp::Load { loc: Loc(to) },
                        other => other,
                    })
                    .collect(),
            )
        })
        .collect();
    normalize(&FuzzCase {
        program: Program::new(threads),
        addrs: case.addrs.clone(),
    })
}

/// Greedily shrinks a failing case while it keeps failing under
/// `policy`: drop single ops, then whole threads, then merge location
/// pairs, to a fixpoint. Returns the minimal case and its failure.
///
/// # Panics
///
/// Panics if `case` does not actually fail `check_policy` (shrinking
/// needs a reproducible failure as its predicate).
pub fn shrink_case(case: &FuzzCase, policy: PolicyKind, seeds: u64) -> (FuzzCase, CaseFailure) {
    shrink_case_matrix(case, policy, seeds, KernelKind::default(), CoherenceKind::default())
}

/// [`shrink_case`] at an explicit (kernel, backend) matrix point, so a
/// failure found under e.g. the Tardis backend is shrunk against the
/// same machine that produced it.
///
/// # Panics
///
/// Panics if `case` does not fail at the given matrix point.
pub fn shrink_case_matrix(
    case: &FuzzCase,
    policy: PolicyKind,
    seeds: u64,
    kernel: KernelKind,
    coherence: CoherenceKind,
) -> (FuzzCase, CaseFailure) {
    shrink_with(case, |c| check_policy_matrix(c, policy, seeds, kernel, coherence))
}

/// The shrinker proper, generic over the failing predicate — the single
/// entry point shared by `fuzz` (simulator differential failures) and
/// `check` (model-enumeration diffs). Greedily minimizes while `failing`
/// keeps returning `Some`: drop single ops, then whole threads, then
/// merge location pairs, to a fixpoint.
///
/// # Panics
///
/// Panics if `case` does not fail `failing` (shrinking needs a
/// reproducible failure as its predicate).
pub fn shrink_with<F>(case: &FuzzCase, mut failing: F) -> (FuzzCase, CaseFailure)
where
    F: FnMut(&FuzzCase) -> Option<CaseFailure>,
{
    let mut cur = normalize(case);
    let mut fail = failing(&cur).expect("shrink input must fail");
    loop {
        let mut progressed = false;

        // Pass 1: drop one op at a time.
        'ops: loop {
            for t in 0..cur.program.threads.len() {
                for o in 0..cur.program.threads[t].ops.len() {
                    if cur.program.ops() <= 1 {
                        break 'ops;
                    }
                    let mut cand = cur.clone();
                    cand.program.threads[t].ops.remove(o);
                    let cand = normalize(&cand);
                    if cand.program.ops() == 0 {
                        continue;
                    }
                    if let Some(f) = failing(&cand) {
                        cur = cand;
                        fail = f;
                        progressed = true;
                        continue 'ops;
                    }
                }
            }
            break;
        }

        // Pass 2: drop whole threads.
        'threads: loop {
            if cur.program.threads.len() <= 1 {
                break;
            }
            for t in 0..cur.program.threads.len() {
                let mut cand = cur.clone();
                cand.program.threads.remove(t);
                let cand = normalize(&cand);
                if cand.program.ops() == 0 {
                    continue;
                }
                if let Some(f) = failing(&cand) {
                    cur = cand;
                    fail = f;
                    progressed = true;
                    continue 'threads;
                }
            }
            break;
        }

        // Pass 3: merge location pairs (higher index into lower).
        'locs: loop {
            let n = cur.program.locations();
            for to in 0..n {
                for from in (to + 1)..n {
                    let cand = merge_locs(&cur, from, to);
                    if let Some(f) = failing(&cand) {
                        cur = cand;
                        fail = f;
                        progressed = true;
                        continue 'locs;
                    }
                }
            }
            break;
        }

        if !progressed {
            return (cur, fail);
        }
    }
}

// ---------------------------------------------------------------------
// Corpus serialization (std-only, line-based text format).

/// Corpus file format tag.
const CORPUS_HEADER: &str = "tusfuzz v1";

/// Serializes a case (plus the policy/seed count that failed it, for
/// replay) into the `results/fuzz-corpus/` text format.
pub fn encode_case(case: &FuzzCase, policy: Option<PolicyKind>, seeds: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{CORPUS_HEADER}");
    if let Some(p) = policy {
        let _ = writeln!(s, "policy {}", p.label());
    }
    let _ = writeln!(s, "seeds {seeds}");
    let addrs: Vec<String> = case.addrs.iter().map(|a| format!("{:#x}", a.raw())).collect();
    let _ = writeln!(s, "addrs {}", addrs.join(" "));
    for t in &case.program.threads {
        let _ = writeln!(s, "thread");
        for op in &t.ops {
            match op {
                LOp::Store { loc, val } => {
                    let _ = writeln!(s, "st {} {}", loc.0, val);
                }
                LOp::Load { loc } => {
                    let _ = writeln!(s, "ld {}", loc.0);
                }
                LOp::Fence => {
                    let _ = writeln!(s, "mf");
                }
            }
        }
    }
    s
}

/// A corpus entry decoded from disk.
#[derive(Debug)]
pub struct CorpusEntry {
    /// The case to replay.
    pub case: FuzzCase,
    /// The policy recorded as failing, if any (replay checks all five
    /// otherwise).
    pub policy: Option<PolicyKind>,
    /// Timing seeds per policy used when the failure was recorded.
    pub seeds: u64,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    v.map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_policy(label: &str) -> Result<PolicyKind, String> {
    PolicyKind::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| format!("unknown policy {label:?}"))
}

/// Parses a corpus file produced by [`encode_case`].
pub fn decode_case(text: &str) -> Result<CorpusEntry, String> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next() != Some(CORPUS_HEADER) {
        return Err(format!("missing {CORPUS_HEADER:?} header"));
    }
    let mut policy = None;
    let mut seeds = 16;
    let mut addrs: Option<Vec<Addr>> = None;
    let mut threads: Vec<Thread> = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let kw = parts.next().expect("non-empty line");
        match kw {
            "policy" => {
                policy = Some(parse_policy(parts.next().ok_or("policy needs a label")?)?);
            }
            "seeds" => {
                seeds = parse_u64(parts.next().ok_or("seeds needs a count")?)?;
            }
            "addrs" => {
                addrs = Some(
                    parts
                        .map(|p| parse_u64(p).map(Addr::new))
                        .collect::<Result<_, _>>()?,
                );
            }
            "thread" => threads.push(Thread::default()),
            "st" | "ld" | "mf" => {
                let t = threads.last_mut().ok_or("op before any `thread` line")?;
                let op = match kw {
                    "st" => LOp::Store {
                        loc: Loc(parse_u64(parts.next().ok_or("st needs a location")?)? as usize),
                        val: parse_u64(parts.next().ok_or("st needs a value")?)?,
                    },
                    "ld" => LOp::Load {
                        loc: Loc(parse_u64(parts.next().ok_or("ld needs a location")?)? as usize),
                    },
                    _ => LOp::Fence,
                };
                t.ops.push(op);
            }
            other => return Err(format!("unknown keyword {other:?}")),
        }
    }
    if threads.is_empty() {
        return Err("no threads".into());
    }
    let program = Program::new(threads);
    let addrs = match addrs {
        Some(a) => {
            if a.len() < program.locations() {
                return Err(format!(
                    "addrs covers {} locations, program uses {}",
                    a.len(),
                    program.locations()
                ));
            }
            a
        }
        None => default_addrs(&program),
    };
    Ok(CorpusEntry {
        case: FuzzCase { program, addrs },
        policy,
        seeds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::dsl::*;

    #[test]
    fn generator_is_deterministic_and_bounded() {
        for seed in 0..50 {
            let mut a = SimRng::seed(seed);
            let mut b = SimRng::seed(seed);
            let ca = generate_case(&mut a);
            let cb = generate_case(&mut b);
            assert_eq!(ca, cb, "seed {seed} not deterministic");
            assert!((1..=MAX_THREADS).contains(&ca.program.threads.len()));
            assert!(ca.program.ops() <= MAX_OPS, "too many ops: {}", ca.program.ops());
            assert!(ca.program.locations() <= MAX_LOCS);
            assert!(ca.addrs.len() >= ca.program.locations());
            assert!(ca.program.threads.iter().all(|t| !t.ops.is_empty()));
        }
    }

    #[test]
    fn generator_emits_the_biased_layouts() {
        let mut seen_lex_collision = false;
        let mut seen_same_line = false;
        for seed in 0..60 {
            let mut rng = SimRng::seed(seed);
            let c = generate_case(&mut rng);
            for i in 0..c.addrs.len() {
                for j in (i + 1)..c.addrs.len() {
                    let (a, b) = (c.addrs[i].line(), c.addrs[j].line());
                    if a != b && a.lex_order(16) == b.lex_order(16) {
                        seen_lex_collision = true;
                    }
                    if a == b {
                        seen_same_line = true;
                    }
                }
            }
        }
        assert!(seen_lex_collision, "no 16-LSB lex collisions generated");
        assert!(seen_same_line, "no same-line packing generated");
    }

    #[test]
    fn corpus_roundtrip() {
        let case = FuzzCase {
            program: Program::new(vec![
                thread(vec![st(0, 1), mfence(), ld(1)]),
                thread(vec![st(1, 2), ld(0)]),
            ]),
            addrs: vec![Addr::new(0x100_000), Addr::new(0x500_008)],
        };
        let text = encode_case(&case, Some(PolicyKind::Tus), 16);
        let entry = decode_case(&text).expect("decode");
        assert_eq!(entry.case, case);
        assert_eq!(entry.policy, Some(PolicyKind::Tus));
        assert_eq!(entry.seeds, 16);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_case("not a corpus file").is_err());
        assert!(decode_case("tusfuzz v1\nst 0 1").is_err(), "op before thread");
        assert!(decode_case("tusfuzz v1\npolicy nope\nthread\nmf").is_err());
    }

    #[test]
    fn normalize_compacts_locations_and_threads() {
        let case = FuzzCase {
            program: Program::new(vec![
                thread(vec![st(3, 1), ld(5)]),
                thread(vec![]),
            ]),
            addrs: (0..6).map(|i| Addr::new(0x100_000 + i * 64)).collect(),
        };
        let n = normalize(&case);
        assert_eq!(n.program.threads.len(), 1);
        assert_eq!(n.program.locations(), 2);
        assert_eq!(n.addrs.len(), 2);
        // loc 3 -> 0, loc 5 -> 1, keeping their addresses.
        assert_eq!(n.addrs[0], case.addrs[3]);
        assert_eq!(n.addrs[1], case.addrs[5]);
        assert_eq!(n.program.threads[0].ops[0], st(0, 1));
        assert_eq!(n.program.threads[0].ops[1], ld(1));
    }

    #[test]
    fn merge_rewrites_and_renumbers() {
        let case = FuzzCase {
            program: Program::new(vec![thread(vec![st(0, 1), st(2, 2), ld(2)])]),
            addrs: (0..3).map(|i| Addr::new(0x100_000 + i * 64)).collect(),
        };
        let m = merge_locs(&case, 2, 0);
        assert_eq!(m.program.locations(), 1);
        assert_eq!(m.program.threads[0].ops, vec![st(0, 1), st(0, 2), ld(0)]);
    }

    /// A handful of generated cases pass the differential check on the
    /// real simulator (smoke; the full sweep is the harness subcommand).
    #[test]
    fn small_differential_sweep_is_clean() {
        let mut rng = SimRng::seed(0xF00D);
        for i in 0..4 {
            let case = generate_case(&mut rng);
            let fail = check_case(&case, 3);
            assert!(fail.is_none(), "case {i} failed: {}\n{case}", fail.expect("some"));
        }
    }

    /// A handful of generated cases pass the differential check on the
    /// Tardis backend too (smoke; the full policy × backend sweep is the
    /// harness `fuzz --coherence tardis` subcommand).
    #[test]
    fn small_differential_sweep_is_clean_under_tardis() {
        let mut rng = SimRng::seed(0xF00D);
        for i in 0..4 {
            let case = generate_case(&mut rng);
            let fail =
                check_case_matrix(&case, 3, KernelKind::default(), CoherenceKind::Tardis);
            assert!(
                fail.is_none(),
                "case {i} failed under tardis: {}\n{case}",
                fail.expect("some")
            );
        }
    }

    /// The idle-skipping kernel must reach the same verdict as lockstep
    /// on generated fuzz cases — a differential check of the kernel
    /// itself (the full 500-case sweep is the harness `fuzz` subcommand
    /// run with `--kernel`).
    #[test]
    fn kernels_agree_on_fuzz_verdicts() {
        let mut rng = SimRng::seed(0xBEEF);
        for i in 0..4 {
            let case = generate_case(&mut rng);
            let lock = check_case_kernel(&case, 3, KernelKind::Lockstep);
            let skip = check_case_kernel(&case, 3, KernelKind::Skip);
            assert_eq!(
                lock.is_none(),
                skip.is_none(),
                "case {i}: kernels disagree (lockstep {lock:?}, skip {skip:?})\n{case}"
            );
        }
    }
}
