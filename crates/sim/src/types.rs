//! Strongly-typed identifiers used throughout the simulator.
//!
//! Newtypes keep byte addresses, cache-line addresses, cycle counts and core
//! identifiers from being mixed up (see C-NEWTYPE in the Rust API
//! guidelines). All of them are `Copy` and cheap.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of bytes in a cache line (64 B throughout the paper).
pub const LINE_BYTES: usize = 64;

/// `log2(LINE_BYTES)`.
pub const LINE_SHIFT: u32 = 6;

/// A byte-granularity physical address.
///
/// # Example
///
/// ```
/// use tus_sim::{Addr, LineAddr};
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x48));
/// assert_eq!(a.line_offset(), 0x34);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Cache line this address falls into.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset within the cache line.
    pub const fn line_offset(self) -> usize {
        (self.0 & (LINE_BYTES as u64 - 1)) as usize
    }

    /// 4 KiB page this address falls into (used by the SPB prefetcher).
    pub const fn page(self) -> u64 {
        self.0 >> 12
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granularity address (byte address shifted right by
/// [`LINE_SHIFT`]).
///
/// The lexicographical sub-address used by the TUS authorization unit is a
/// slice of the low bits of this value — see [`LineAddr::lex_order`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Byte address of the first byte in the line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// 4 KiB page this line falls into.
    pub const fn page(self) -> u64 {
        self.0 >> (12 - LINE_SHIFT)
    }

    /// First line of the 4 KiB page containing this line.
    pub const fn page_first_line(self) -> LineAddr {
        LineAddr(self.0 & !((1u64 << (12 - LINE_SHIFT)) - 1))
    }

    /// The lexicographical sub-address for deadlock avoidance: the `bits`
    /// least-significant bits of the line address (the paper uses 16, the
    /// same bits used to index the directory).
    ///
    /// # Example
    ///
    /// ```
    /// use tus_sim::LineAddr;
    /// let a = LineAddr::new(0x1_0042);
    /// assert_eq!(a.lex_order(16), 0x0042);
    /// ```
    pub const fn lex_order(self, bits: u32) -> u64 {
        self.0 & ((1u64 << bits) - 1)
    }

    /// Returns the line advanced by `n` lines.
    pub const fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

/// A simulated clock cycle count.
///
/// Supports `Cycle + u64`, `Cycle - Cycle` and ordering, which is all the
/// simulator needs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// A cycle value far in the future, used as "never".
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` in cycles.
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a simulated core (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier.
    pub const fn new(raw: u16) -> Self {
        CoreId(raw)
    }

    /// Raw index.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Index usable for `Vec` access.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoreId({})", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_roundtrip() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().base_addr().raw(), 0xdead_beef & !63);
        assert_eq!(a.line_offset(), (0xdead_beefu64 & 63) as usize);
    }

    #[test]
    fn addr_page() {
        assert_eq!(Addr::new(0x1fff).page(), 1);
        assert_eq!(Addr::new(0x2000).page(), 2);
    }

    #[test]
    fn line_page_first_line() {
        // 64 lines per 4 KiB page.
        let l = LineAddr::new(0x12_34);
        assert_eq!(l.page_first_line().raw(), 0x12_00);
        assert_eq!(l.page_first_line().raw() % 64, 0);
        assert_eq!(l.page(), l.page_first_line().page());
    }

    #[test]
    fn lex_order_masks_low_bits() {
        let l = LineAddr::new(0xffff_ffff);
        assert_eq!(l.lex_order(16), 0xffff);
        assert_eq!(l.lex_order(8), 0xff);
        // Same lex order => lex conflict between distinct lines.
        let a = LineAddr::new(0x1_0001);
        let b = LineAddr::new(0x2_0001);
        assert_ne!(a, b);
        assert_eq!(a.lex_order(16), b.lex_order(16));
    }

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(10);
        assert_eq!(c + 5, Cycle::new(15));
        assert_eq!(Cycle::new(15) - c, 5);
        assert_eq!(c.since(Cycle::new(20)), 0);
        assert_eq!(Cycle::new(20).since(c), 10);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", Addr::default()).is_empty());
        assert!(!format!("{:?}", LineAddr::default()).is_empty());
        assert!(!format!("{:?}", Cycle::default()).is_empty());
        assert!(!format!("{:?}", CoreId::default()).is_empty());
        assert_eq!(format!("{}", CoreId::new(3)), "core3");
    }
}
