//! Hardware prefetchers.
//!
//! * [`StreamPrefetcher`] — the baseline L1D stream (stride) prefetcher
//!   from Table I: detects monotonic line sequences within a 4 KiB region
//!   and fetches `degree` lines ahead with read permission.
//! * [`SpbPrefetcher`] — Store Prefetch Burst [Cebrian et al., MICRO'20]:
//!   when `trigger` committed stores touch consecutive lines of a page, it
//!   requests write permission for every line of that 4 KiB page.
//!
//! Both emit *suggestions*; the cache controller turns them into actual
//! requests subject to MSHR availability.

use tus_sim::LineAddr;

/// An allocation-free sequence of prefetch suggestions: up to `remaining`
/// lines starting after a base line, advancing by a fixed stride. Both
/// prefetchers emit arithmetic line sequences, so suggestions are carried
/// as this small `Copy` iterator instead of a heap `Vec` — the prefetch
/// train/observe calls sit on the demand-miss and store-commit hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchHints {
    next: i64,
    stride: i64,
    remaining: usize,
}

impl PrefetchHints {
    /// The empty suggestion set.
    pub const NONE: PrefetchHints = PrefetchHints {
        next: 0,
        stride: 0,
        remaining: 0,
    };

    fn ahead_of(base: LineAddr, stride: i64, count: usize) -> Self {
        PrefetchHints {
            next: base.raw() as i64 + stride,
            stride,
            remaining: count,
        }
    }

    /// Whether no suggestion remains.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Number of suggestions remaining.
    pub fn len(&self) -> usize {
        self.remaining
    }
}

impl Iterator for PrefetchHints {
    type Item = LineAddr;

    fn next(&mut self) -> Option<LineAddr> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let l = LineAddr::new(self.next.max(0) as u64);
        self.next += self.stride;
        Some(l)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A stride-detecting stream prefetcher trained on demand accesses.
///
/// # Example
///
/// ```
/// use tus_mem::prefetch::StreamPrefetcher;
/// use tus_sim::LineAddr;
///
/// let mut p = StreamPrefetcher::new(8, 2);
/// assert!(p.train(LineAddr::new(100)).is_empty());
/// assert!(p.train(LineAddr::new(101)).is_empty()); // stride candidate
/// let out = p.train(LineAddr::new(102)); // confirmed: prefetch ahead
/// assert_eq!(
///     out.collect::<Vec<_>>(),
///     vec![LineAddr::new(103), LineAddr::new(104)]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    entries: Vec<StreamEntry>,
    degree: usize,
    tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    page: u64,
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
    lru: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with a `streams`-entry training table fetching
    /// `degree` lines ahead.
    pub fn new(streams: usize, degree: usize) -> Self {
        StreamPrefetcher {
            entries: Vec::with_capacity(streams.max(1)),
            degree,
            tick: 0,
        }
    }

    /// Trains on a demand access and returns the lines to prefetch (empty
    /// until a stride is confirmed twice).
    pub fn train(&mut self, line: LineAddr) -> PrefetchHints {
        self.tick += 1;
        let page = line.page();
        let cap = self.entries.capacity();
        if let Some(e) = self.entries.iter_mut().find(|e| e.page == page) {
            e.lru = self.tick;
            let delta = line.raw() as i64 - e.last_line.raw() as i64;
            if delta == 0 {
                return PrefetchHints::NONE;
            }
            if delta == e.stride {
                e.confidence = e.confidence.saturating_add(1);
            } else {
                e.stride = delta;
                e.confidence = 0;
            }
            e.last_line = line;
            if e.confidence >= 1 {
                return PrefetchHints::ahead_of(line, e.stride, self.degree);
            }
            return PrefetchHints::NONE;
        }
        let fresh = StreamEntry {
            page,
            last_line: line,
            stride: 0,
            confidence: 0,
            lru: self.tick,
        };
        if self.entries.len() < cap {
            self.entries.push(fresh);
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|e| e.lru) {
            *victim = fresh;
        }
        PrefetchHints::NONE
    }
}

/// Store Prefetch Burst: full-page write-permission prefetch on detecting
/// a store burst of consecutive lines.
#[derive(Debug, Clone)]
pub struct SpbPrefetcher {
    trigger: usize,
    last_line: Option<LineAddr>,
    run: usize,
    last_burst_page: Option<u64>,
}

impl SpbPrefetcher {
    /// Creates an SPB detector that fires after `trigger` consecutive-line
    /// stores.
    pub fn new(trigger: usize) -> Self {
        SpbPrefetcher {
            trigger: trigger.max(2),
            last_line: None,
            run: 1,
            last_burst_page: None,
        }
    }

    /// Observes a committed store's line; returns the 64 lines of the page
    /// to prefetch with write permission when a burst is detected (at most
    /// once per page until the burst leaves the page).
    pub fn observe(&mut self, line: LineAddr) -> PrefetchHints {
        let consecutive = self
            .last_line
            .is_some_and(|l| line.raw() == l.raw() + 1 || line == l);
        if self.last_line == Some(line) {
            return PrefetchHints::NONE;
        }
        self.run = if consecutive { self.run + 1 } else { 1 };
        self.last_line = Some(line);
        if self.run >= self.trigger && self.last_burst_page != Some(line.page()) {
            self.last_burst_page = Some(line.page());
            let first = line.page_first_line();
            return PrefetchHints {
                next: first.raw() as i64,
                stride: 1,
                remaining: 64,
            };
        }
        PrefetchHints::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_detects_negative_stride() {
        let mut p = StreamPrefetcher::new(4, 1);
        p.train(LineAddr::new(100));
        p.train(LineAddr::new(98));
        let out = p.train(LineAddr::new(96));
        assert_eq!(out.collect::<Vec<_>>(), vec![LineAddr::new(94)]);
    }

    #[test]
    fn stream_ignores_random_pattern() {
        let mut p = StreamPrefetcher::new(4, 2);
        assert!(p.train(LineAddr::new(10)).is_empty());
        assert!(p.train(LineAddr::new(17)).is_empty());
        assert!(p.train(LineAddr::new(11)).is_empty());
        assert!(p.train(LineAddr::new(29)).is_empty());
    }

    #[test]
    fn stream_table_replacement_lru() {
        let mut p = StreamPrefetcher::new(1, 1);
        p.train(LineAddr::new(0)); // page 0
        p.train(LineAddr::new(64)); // page 1 evicts page 0
        p.train(LineAddr::new(1));
        p.train(LineAddr::new(2)); // retrains page 0 from scratch
        let out = p.train(LineAddr::new(3));
        assert_eq!(out.collect::<Vec<_>>(), vec![LineAddr::new(4)]);
    }

    #[test]
    fn stream_repeat_access_is_ignored() {
        let mut p = StreamPrefetcher::new(4, 1);
        p.train(LineAddr::new(5));
        assert!(p.train(LineAddr::new(5)).is_empty());
        p.train(LineAddr::new(6));
        let out = p.train(LineAddr::new(7));
        assert!(!out.is_empty());
    }

    #[test]
    fn spb_fires_once_per_page_burst() {
        let mut p = SpbPrefetcher::new(3);
        assert!(p.observe(LineAddr::new(128)).is_empty());
        assert!(p.observe(LineAddr::new(129)).is_empty());
        let burst: Vec<_> = p.observe(LineAddr::new(130)).collect();
        assert_eq!(burst.len(), 64);
        assert_eq!(burst[0], LineAddr::new(128));
        assert_eq!(burst[63], LineAddr::new(191));
        // Continuing in the same page does not refire.
        assert!(p.observe(LineAddr::new(131)).is_empty());
        assert!(p.observe(LineAddr::new(132)).is_empty());
        // A burst crossing into the next page fires again.
        for l in 133..192 {
            assert!(p.observe(LineAddr::new(l)).is_empty());
        }
        let burst2: Vec<_> = p.observe(LineAddr::new(192)).collect();
        assert_eq!(burst2.len(), 64);
        assert_eq!(burst2[0], LineAddr::new(192));
    }

    #[test]
    fn spb_irregular_pattern_never_fires() {
        let mut p = SpbPrefetcher::new(4);
        for l in [5u64, 900, 13, 77, 2000, 42, 6, 1001] {
            assert!(p.observe(LineAddr::new(l)).is_empty());
        }
    }

    #[test]
    fn spb_same_line_does_not_advance_run() {
        let mut p = SpbPrefetcher::new(3);
        p.observe(LineAddr::new(10));
        p.observe(LineAddr::new(10));
        p.observe(LineAddr::new(11));
        assert!(p.observe(LineAddr::new(11)).is_empty());
        assert_eq!(p.observe(LineAddr::new(12)).len(), 64);
    }
}
