//! Temporarily Unauthorized Stores (TUS) — the paper's contribution.
//!
//! This crate implements the store-handling mechanism of *"Temporarily
//! Unauthorized Stores: Write First, Ask for Permission Later"* (MICRO
//! 2024) on top of the `tus-cpu` core model and the `tus-mem` memory
//! hierarchy:
//!
//! * [`lex`] — the lexicographical sub-address order and the
//!   authorization unit that decides between *delaying* and
//!   *relinquishing* on external conflicts (Section III-C).
//! * [`woq`] — the Write Ordering Queue: tracks the x86-TSO order in
//!   which unauthorized cache lines must become visible, with atomic
//!   groups for store cycles (Sections III-A/III-B, Figure 6).
//! * [`wcb`] — the re-purposed write-combining buffers that coalesce
//!   coherent stores across non-consecutive lines.
//! * [`policy`] — the five drain policies the evaluation compares:
//!   baseline, TUS, SSB, CSB and SPB, behind one [`policy::Policy`] enum.
//! * [`system`] — [`System`]: cores + policies + memory, ticked cycle by
//!   cycle, with run loops, progress watchdogs and statistics.
//! * [`gang`] — [`SystemGang`]: gang-scheduled execution of many
//!   seed-varied systems in one interleaved pass, merged by local
//!   virtual time, with per-member retirement.
//!
//! # Quickstart
//!
//! ```
//! use tus::System;
//! use tus_cpu::{TraceInst, VecTrace};
//! use tus_sim::{Addr, PolicyKind, SimConfig};
//!
//! let cfg = SimConfig::builder().policy(PolicyKind::Tus).build();
//! let trace = VecTrace::new(vec![
//!     TraceInst::store(Addr::new(0x1000), 8, 42),
//!     TraceInst::load(Addr::new(0x1000), 8),
//! ]);
//! let mut sys = System::new(&cfg, vec![Box::new(trace)], 1);
//! let stats = sys.run_to_completion(100_000);
//! assert_eq!(stats.get("core0.cpu.committed"), 2.0);
//! ```

pub mod gang;
pub mod lex;
pub mod policy;
pub mod system;
pub mod wcb;
pub mod woq;

pub use gang::SystemGang;
pub use lex::{AuthorizationUnit, ConflictDecision};
pub use policy::{Policy, PolicyOccupancy};
pub use system::{
    set_trace_default, trace_default, CoreDeadlockState, DeadlockKind, DeadlockReport, RunCtl,
    RunGoal, StepOutcome, System, DEFAULT_TRACE_CAP,
};
pub use wcb::WcbSet;
pub use woq::{GroupId, Woq, WoqEntry};
