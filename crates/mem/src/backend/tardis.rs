//! Tardis-style logical-timestamp coherence backend.
//!
//! After "Tardis 2.0: Optimized Time Traveling Coherence for Relaxed
//! Consistency Models": coherence is enforced in *logical* time instead of
//! by invalidation. Every line carries a write timestamp `wts` (logical
//! time of its last write) and a read timestamp `rts` (end of its current
//! read lease); every core carries a program timestamp `pts`. A shared
//! copy is readable while the reader's `pts <= rts`; a writer must jump
//! its `pts` to at least `rts + 1` before its store becomes visible, which
//! orders the write after every leased read *without telling any reader
//! anything* — there are no invalidation messages and no sharer list.
//! Stale copies die by **self-downgrade**: when a core's `pts` passes a
//! lease's `rts`, the copy silently stops being usable (the private cache
//! controller drops it and replays any speculative loads bound from it).
//!
//! The directory here keeps the paper's home-node duties — single open
//! transaction per line, L3 latency filter, DRAM bandwidth model, owner
//! forwards for modified lines — but its request handling differs from
//! MESI in exactly the timestamp ways:
//!
//! * **GetS** with no owner extends the lease,
//!   `rts = max(rts, max(wts, requester_pts) + LEASE)`, and grants Shared
//!   with the `(wts, rts)` pair. Carrying the requester's `pts` in the
//!   request is what makes renewals converge: the granted lease always
//!   ends past the clock the requester will read at.
//! * **GetM** transfers ownership and the timestamp pair; the owner
//!   becomes the line's timestamp authority until it writes back. No
//!   sharer is notified — their leases simply bound when the new write
//!   may become visible.
//! * **Fwd** exists only toward an *owner* (`to_owner` is always true):
//!   modified lines still have exactly one writable copy, so the TUS
//!   delay/relinquish conflict machinery is exercised identically.
//! * **InvAck** cannot occur.
//!
//! The TUS interaction rule (the new research surface): a temporarily
//! unauthorized line may not become visible at a logical time covered by
//! any lease the line must respect — the controller makes the store
//! visible at `pts = max(pts, rts + 1)` using the `rts` granted here.

use std::collections::VecDeque;

use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{CoreId, Cycle, DelayQueue, LineAddr, LineId, LineInterner, Schedulable, Slab, StatSet};

use crate::backend::{CoherenceBackend, Replay};
use crate::cache::L3Cache;
use crate::line::LineData;
use crate::mainmem::MainMemory;
use crate::mesi::Mesi;
use crate::msgs::{FwdKind, Lease, Msg, ReqKind};
use crate::net::{Network, Node};

/// Lease length in logical-time units. Short leases keep writers close
/// behind readers (small `pts` jumps); long leases amortize renewals.
/// Tardis 2.0 uses a small fixed lease with optional adaptation; a
/// constant is enough here because renewals are cheap L3 hits.
pub const LEASE: u64 = 10;

#[derive(Debug, Clone, Copy)]
struct TardisEntry {
    owner: Option<CoreId>,
    wts: u64,
    rts: u64,
}

impl Default for TardisEntry {
    fn default() -> Self {
        TardisEntry {
            owner: None,
            wts: 0,
            rts: 0,
        }
    }
}

#[derive(Debug)]
struct TardisTrans {
    requester: CoreId,
    kind: ReqKind,
    prefetch: bool,
    /// Requester's logical timestamp, echoed from the request.
    pts: u64,
    waiting_owner: bool,
    waiting_mem: bool,
    queued: VecDeque<(CoreId, ReqKind, bool, u64)>,
}

impl Default for TardisTrans {
    fn default() -> Self {
        TardisTrans {
            requester: CoreId::new(0),
            kind: ReqKind::GetS,
            prefetch: false,
            pts: 0,
            waiting_owner: false,
            waiting_mem: false,
            queued: VecDeque::new(),
        }
    }
}

/// Slot index in the transaction slab meaning "no open transaction".
const NO_TRANS: u32 = u32::MAX;

/// Running counters exported into the run's [`StatSet`].
#[derive(Debug, Clone, Default)]
pub struct TardisStats {
    /// GetS requests processed.
    pub gets: u64,
    /// GetM requests processed.
    pub getm: u64,
    /// Forwards (Inv/Downgrade) sent to owners.
    pub fwds: u64,
    /// Read-lease extensions performed (every non-owner GetS).
    pub lease_extends: u64,
    /// L3 data hits.
    pub l3_hits: u64,
    /// L3 misses (DRAM fetches).
    pub l3_misses: u64,
    /// Relinquish responses received (TUS lex-order deadlock avoidance).
    pub relinquishes: u64,
    /// Dirty write-backs received.
    pub writebacks: u64,
}

/// The timestamp-coherence home node.
///
/// Dense per-line storage mirrors [`crate::backend::mesi::Directory`]:
/// line addresses intern to [`LineId`]s, timestamp entries and
/// open-transaction handles live in flat arrays, and transactions are
/// slab slots whose replay buffers keep their capacity — the steady state
/// allocates nothing.
pub struct TardisDirectory {
    cores: usize,
    lines: LineInterner,
    /// Owner + timestamp pair, indexed by [`LineId`].
    entries: Vec<TardisEntry>,
    /// Open-transaction slab slot per line ([`NO_TRANS`] when idle).
    trans_idx: Vec<u32>,
    trans: Slab<TardisTrans>,
    open_trans: usize,
    l3: L3Cache,
    dram: DelayQueue<LineId>,
    dram_busy_until: Cycle,
    dram_latency: u64,
    dram_gap: u64,
    replays: VecDeque<Replay>,
    tracer: Tracer,
    /// Statistics.
    pub stats: TardisStats,
}

impl std::fmt::Debug for TardisDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TardisDirectory")
            .field("cores", &self.cores)
            .field("entries", &self.lines.len())
            .field("open_transactions", &self.open_trans)
            .finish()
    }
}

impl TardisDirectory {
    /// Creates a timestamp directory for `cores` cores with an L3 of the
    /// given geometry and DRAM latency (same machine parameters as the
    /// MESI backend).
    pub fn new(
        cores: usize,
        l3_sets: usize,
        l3_ways: usize,
        dram_latency: u64,
        dram_max_inflight: usize,
    ) -> Self {
        let dram_gap = (dram_latency / dram_max_inflight.max(1) as u64).max(1);
        TardisDirectory {
            cores,
            lines: LineInterner::new(),
            entries: Vec::new(),
            trans_idx: Vec::new(),
            trans: Slab::new(),
            open_trans: 0,
            l3: L3Cache::new(l3_sets, l3_ways),
            dram: DelayQueue::new(),
            dram_busy_until: Cycle::ZERO,
            dram_latency,
            dram_gap,
            replays: VecDeque::new(),
            tracer: Tracer::default(),
            stats: TardisStats::default(),
        }
    }

    #[inline]
    fn intern(&mut self, line: LineAddr) -> LineId {
        let id = self.lines.intern(line);
        if self.entries.len() < self.lines.len() {
            self.entries.push(TardisEntry::default());
            self.trans_idx.push(NO_TRANS);
        }
        id
    }

    #[inline]
    fn tr(&self, id: LineId) -> Option<&TardisTrans> {
        let slot = self.trans_idx[id.index()];
        (slot != NO_TRANS).then(|| self.trans.get(slot))
    }

    #[inline]
    fn tr_mut(&mut self, id: LineId) -> Option<&mut TardisTrans> {
        let slot = self.trans_idx[id.index()];
        (slot != NO_TRANS).then(|| self.trans.get_mut(slot))
    }

    #[inline]
    fn open_transaction(&mut self, id: LineId) -> &mut TardisTrans {
        debug_assert_eq!(self.trans_idx[id.index()], NO_TRANS);
        let slot = self.trans.alloc();
        self.trans_idx[id.index()] = slot;
        self.open_trans += 1;
        let t = self.trans.get_mut(slot);
        debug_assert!(t.queued.is_empty());
        t
    }

    /// Arms structured L3/DRAM access tracing with a ring of `cap`
    /// records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Drains the buffered trace records, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.take()
    }

    /// Merges timestamps reported by a core (the line's authority while it
    /// owned the line) into the home entry, component-wise max.
    #[inline]
    fn merge_lease(&mut self, id: LineId, lease: Option<Lease>) {
        if let Some(l) = lease {
            let e = &mut self.entries[id.index()];
            e.wts = e.wts.max(l.wts);
            e.rts = e.rts.max(l.rts);
        }
    }

    /// Handles one inbound message.
    pub fn handle(&mut self, msg: Msg, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        match msg {
            Msg::Req {
                core,
                line,
                kind,
                prefetch,
                pts,
            } => {
                let id = self.intern(line);
                if let Some(t) = self.tr_mut(id) {
                    t.queued.push_back((core, kind, prefetch, pts));
                } else {
                    self.start(core, id, kind, prefetch, pts, net, mem, now);
                }
            }
            Msg::FwdResp {
                core,
                line,
                data,
                relinquished,
                lease,
            } => {
                let id = self.intern(line);
                self.on_fwd_resp(core, id, data, relinquished, lease, net, mem, now);
            }
            Msg::InvAck { .. } => {
                unreachable!("tardis backend sends no invalidations, so no InvAck can arrive")
            }
            Msg::Evict {
                core,
                line,
                data,
                lease,
            } => {
                let id = self.intern(line);
                self.on_evict(core, id, data, lease, net, mem);
            }
            Msg::Grant { .. } | Msg::Fwd { .. } => {
                unreachable!("directory received a directory-originated message")
            }
        }
    }

    /// Completes DRAM fetches that are due; must be called every cycle.
    pub fn tick(&mut self, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        while let Some(id) = self.dram.pop_due(now) {
            let line = self.lines.addr(id);
            let mut data = net.alloc_data();
            mem.read_into(line, &mut data);
            self.fill_l3(line, &data);
            if self.tr(id).is_some_and(|t| t.waiting_mem) {
                if let Some(t) = self.tr_mut(id) {
                    t.waiting_mem = false;
                }
                self.grant_with_data(id, Some(data), net, now);
            } else {
                net.recycle_data(data);
            }
        }
    }

    /// Whether no transaction is open and no DRAM fetch pending.
    pub fn idle(&self) -> bool {
        self.open_trans == 0 && self.dram.is_empty()
    }

    /// Completion cycle of the earliest pending DRAM fetch.
    pub fn next_dram_due(&self) -> Option<Cycle> {
        self.dram.next_due()
    }

    /// Number of open transactions (watchdog diagnostics).
    pub fn open_transactions(&self) -> usize {
        self.open_trans
    }

    /// Debug description of the backend state for one line (deadlock
    /// diagnostics).
    pub fn debug_line(&self, line: LineAddr) -> String {
        let id = self.lines.get(line);
        let e = id.map(|id| &self.entries[id.index()]);
        let t = id.and_then(|id| self.tr(id));
        format!(
            "entry={:?} trans={:?}",
            e.map(|e| (e.owner, e.wts, e.rts)),
            t.map(|t| (
                t.requester,
                t.kind,
                t.pts,
                t.waiting_owner,
                t.waiting_mem,
                t.queued.len()
            ))
        )
    }

    /// Exports statistics. The key set matches the MESI backend (with
    /// `invs` pinned at 0 — no invalidations exist) plus the
    /// lease-extension count, so downstream consumers (energy model, CSV
    /// emitters) see one schema.
    pub fn export_stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("gets", self.stats.gets as f64);
        s.set("getm", self.stats.getm as f64);
        s.set("fwds", self.stats.fwds as f64);
        s.set("invs", 0.0);
        s.set("lease_extends", self.stats.lease_extends as f64);
        s.set("l3_hits", self.stats.l3_hits as f64);
        s.set("l3_misses", self.stats.l3_misses as f64);
        s.set("relinquishes", self.stats.relinquishes as f64);
        s.set("writebacks", self.stats.writebacks as f64);
        s
    }

    #[allow(clippy::too_many_arguments)]
    fn start(
        &mut self,
        core: CoreId,
        id: LineId,
        kind: ReqKind,
        prefetch: bool,
        pts: u64,
        net: &mut Network,
        mem: &mut MainMemory,
        now: Cycle,
    ) {
        debug_assert_eq!(self.trans_idx[id.index()], NO_TRANS);
        let line = self.lines.addr(id);
        let entry = self.entries[id.index()];
        match kind {
            ReqKind::GetS => self.stats.gets += 1,
            ReqKind::GetM => self.stats.getm += 1,
        }
        // Owner present (and not the requester): the modified copy lives
        // at a core, so forward — the one place Tardis still talks to a
        // remote cache, and exactly where the TUS delay/relinquish
        // machinery engages.
        if let Some(owner) = entry.owner {
            if owner != core {
                let fwd_kind = match kind {
                    ReqKind::GetS => FwdKind::Downgrade,
                    ReqKind::GetM => FwdKind::Inv,
                };
                self.stats.fwds += 1;
                let t = self.open_transaction(id);
                t.requester = core;
                t.kind = kind;
                t.prefetch = prefetch;
                t.pts = pts;
                t.waiting_owner = true;
                t.waiting_mem = false;
                net.send(
                    Node::Dir,
                    Node::Core(owner),
                    now,
                    Msg::Fwd {
                        line,
                        kind: fwd_kind,
                        to_owner: true,
                    },
                );
                return;
            }
            // Redundant request from the owner itself: it is the timestamp
            // authority; echo what the home last saw.
            let lease = Lease {
                wts: entry.wts,
                rts: entry.rts,
            };
            self.send_grant(core, line, Mesi::Modified, None, kind, prefetch, lease, net, now);
            return;
        }

        // No owner: the home is the authority. GetS extends the lease
        // before data is fetched so the granted pair already covers the
        // requester's clock; GetM hands the pair over untouched — the new
        // owner will jump past `rts` when its store becomes visible.
        if kind == ReqKind::GetS {
            let e = &mut self.entries[id.index()];
            e.rts = e.rts.max(e.wts.max(pts) + LEASE);
            self.stats.lease_extends += 1;
        }
        let t = self.open_transaction(id);
        t.requester = core;
        t.kind = kind;
        t.prefetch = prefetch;
        t.pts = pts;
        t.waiting_owner = false;
        t.waiting_mem = false;
        self.fetch_then_grant(id, net, mem, now);
    }

    /// Supplies data from L3 (immediately) or DRAM (after the latency),
    /// then grants. Tardis grants always carry data: without a sharer
    /// list the home cannot know whether the requester's copy is current,
    /// so there is no permission-only upgrade.
    fn fetch_then_grant(&mut self, id: LineId, net: &mut Network, _mem: &mut MainMemory, now: Cycle) {
        let line = self.lines.addr(id);
        if let Some((set, way)) = self.l3.lookup(line) {
            self.stats.l3_hits += 1;
            self.tracer.emit(
                now,
                0,
                TraceEvent::DramAccess {
                    line: line.raw(),
                    l3_hit: true,
                },
            );
            self.l3.touch(set, way);
            let data = net.alloc_data_copy(self.l3.data(set, way));
            self.grant_with_data(id, Some(data), net, now);
        } else {
            self.stats.l3_misses += 1;
            let start = now.max(self.dram_busy_until);
            self.dram_busy_until = start + self.dram_gap;
            self.dram.push(start + self.dram_latency, id);
            let done = start + self.dram_latency;
            self.tracer.emit(
                now,
                done.since(now),
                TraceEvent::DramAccess {
                    line: line.raw(),
                    l3_hit: false,
                },
            );
            self.tr_mut(id).expect("transaction open").waiting_mem = true;
        }
    }

    /// Sends the grant for the open transaction on `id`, updates
    /// ownership, then replays queued requests.
    fn grant_with_data(
        &mut self,
        id: LineId,
        data: Option<Box<LineData>>,
        net: &mut Network,
        now: Cycle,
    ) {
        let line = self.lines.addr(id);
        let t = self.tr(id).expect("transaction open");
        let (requester, kind, prefetch) = (t.requester, t.kind, t.prefetch);
        let entry = &mut self.entries[id.index()];
        let state = match kind {
            ReqKind::GetM => {
                entry.owner = Some(requester);
                Mesi::Modified
            }
            // Shared always: with no sharer list there is no "alone, grant
            // Exclusive" special case — exclusivity is what `rts + 1`
            // write ordering buys instead.
            ReqKind::GetS => Mesi::Shared,
        };
        let lease = Lease {
            wts: entry.wts,
            rts: entry.rts,
        };
        self.send_grant(requester, line, state, data, kind, prefetch, lease, net, now);
        self.complete(id);
    }

    #[allow(clippy::too_many_arguments)]
    fn send_grant(
        &mut self,
        core: CoreId,
        line: LineAddr,
        state: Mesi,
        data: Option<Box<LineData>>,
        kind: ReqKind,
        prefetch: bool,
        lease: Lease,
        net: &mut Network,
        now: Cycle,
    ) {
        net.send(
            Node::Dir,
            Node::Core(core),
            now,
            Msg::Grant {
                line,
                state,
                data,
                kind,
                prefetch,
                lease: Some(lease),
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_fwd_resp(
        &mut self,
        _from: CoreId,
        id: LineId,
        data: Option<Box<LineData>>,
        relinquished: bool,
        lease: Option<Lease>,
        net: &mut Network,
        mem: &mut MainMemory,
        now: Cycle,
    ) {
        let line = self.lines.addr(id);
        // The owner was the timestamp authority; fold its view back in
        // before granting onward.
        self.merge_lease(id, lease);
        let (kind, req_pts) = match self.tr_mut(id) {
            Some(t) => {
                t.waiting_owner = false;
                (t.kind, t.pts)
            }
            None => {
                // Stale response (transaction aborted) — apply data, done.
                if let Some(d) = data {
                    self.write_back(line, &d, mem);
                    net.recycle_data(d);
                }
                return;
            }
        };
        if relinquished {
            self.stats.relinquishes += 1;
        }
        if let Some(d) = &data {
            self.write_back(line, d, mem);
        }
        let entry = &mut self.entries[id.index()];
        entry.owner = None;
        // A downgrade leaves the old owner holding a Shared copy readable
        // until `rts`; extend the lease for the new reader now that the
        // home is the authority again.
        if kind == ReqKind::GetS {
            entry.rts = entry.rts.max(entry.wts.max(req_pts) + LEASE);
            self.stats.lease_extends += 1;
        }
        match data {
            Some(d) => self.grant_with_data(id, Some(d), net, now),
            // The owner raced an eviction; its PutM arrived earlier on the
            // same FIFO channel, so L3/memory hold current data.
            None => self.fetch_then_grant(id, net, mem, now),
        }
    }

    fn on_evict(
        &mut self,
        from: CoreId,
        id: LineId,
        data: Option<Box<LineData>>,
        lease: Option<Lease>,
        net: &mut Network,
        mem: &mut MainMemory,
    ) {
        self.merge_lease(id, lease);
        if let Some(d) = data {
            self.stats.writebacks += 1;
            let line = self.lines.addr(id);
            self.write_back(line, &d, mem);
            net.recycle_data(d);
        }
        let e = &mut self.entries[id.index()];
        if e.owner == Some(from) {
            e.owner = None;
        }
    }

    /// Queues the requests that waited on the completed transaction for
    /// replay, then releases the slab slot.
    fn complete(&mut self, id: LineId) {
        let slot = self.trans_idx[id.index()];
        debug_assert_ne!(slot, NO_TRANS, "transaction open");
        self.trans_idx[id.index()] = NO_TRANS;
        self.open_trans -= 1;
        let line = self.lines.addr(id);
        let t = self.trans.get_mut(slot);
        while let Some((c, k, p, pts)) = t.queued.pop_front() {
            self.replays.push_back(Replay {
                core: c,
                line,
                kind: k,
                prefetch: p,
                pts,
            });
        }
        self.trans.release(slot);
    }

    /// Pops the oldest pending replay (filled by `complete`).
    pub fn pop_replay(&mut self) -> Option<Replay> {
        self.replays.pop_front()
    }

    /// Takes pending replays — batch form of
    /// [`TardisDirectory::pop_replay`] for tests.
    pub fn take_replays(&mut self) -> Vec<Replay> {
        self.replays.drain(..).collect()
    }

    fn write_back(&mut self, line: LineAddr, data: &LineData, mem: &mut MainMemory) {
        mem.write(line, data);
        self.fill_l3(line, data);
    }

    fn fill_l3(&mut self, line: LineAddr, data: &LineData) {
        if let Some((set, way)) = self.l3.lookup(line) {
            *self.l3.data_mut(set, way) = *data;
            self.l3.touch(set, way);
        } else {
            let (set, way) = self.l3.insert(line);
            *self.l3.data_mut(set, way) = *data;
        }
    }
}

impl CoherenceBackend for TardisDirectory {
    fn handle(&mut self, msg: Msg, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        TardisDirectory::handle(self, msg, net, mem, now)
    }
    fn tick(&mut self, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        TardisDirectory::tick(self, net, mem, now)
    }
    fn idle(&self) -> bool {
        TardisDirectory::idle(self)
    }
    fn next_dram_due(&self) -> Option<Cycle> {
        TardisDirectory::next_dram_due(self)
    }
    fn open_transactions(&self) -> usize {
        TardisDirectory::open_transactions(self)
    }
    fn debug_line(&self, line: LineAddr) -> String {
        TardisDirectory::debug_line(self, line)
    }
    fn export_stats(&self) -> StatSet {
        TardisDirectory::export_stats(self)
    }
    fn pop_replay(&mut self) -> Option<Replay> {
        TardisDirectory::pop_replay(self)
    }
    fn trace_enable(&mut self, cap: usize) {
        TardisDirectory::trace_enable(self, cap)
    }
    fn take_trace(&mut self) -> Vec<TraceRecord> {
        TardisDirectory::take_trace(self)
    }
}

impl Schedulable for TardisDirectory {
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        if !self.replays.is_empty() {
            return Some(now);
        }
        self.dram.next_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_sim::SimRng;

    fn setup(cores: usize) -> (TardisDirectory, Network, MainMemory) {
        let dir = TardisDirectory::new(cores.max(3), 16, 4, 100, 4);
        let net = Network::new(cores.max(3), crate::net::NetLatency { hop: 1 }, 0, SimRng::seed(1));
        (dir, net, MainMemory::new())
    }

    fn pump(
        dir: &mut TardisDirectory,
        net: &mut Network,
        mem: &mut MainMemory,
        until: u64,
        cores: u16,
    ) -> Vec<(CoreId, Msg)> {
        let mut out = Vec::new();
        for t in 0..until {
            let now = Cycle::new(t);
            dir.tick(net, mem, now);
            while let Some((_src, msg)) = net.recv(Node::Dir, now) {
                dir.handle(msg, net, mem, now);
            }
            for r in dir.take_replays() {
                dir.handle(
                    Msg::Req {
                        core: r.core,
                        line: r.line,
                        kind: r.kind,
                        prefetch: r.prefetch,
                        pts: r.pts,
                    },
                    net,
                    mem,
                    now,
                );
            }
            for c in 0..cores {
                while let Some((_src, msg)) = net.recv(Node::Core(CoreId::new(c)), now) {
                    out.push((CoreId::new(c), msg));
                }
            }
        }
        out
    }

    fn req(core: u16, line: u64, kind: ReqKind, pts: u64) -> Msg {
        Msg::Req {
            core: CoreId::new(core),
            line: LineAddr::new(line),
            kind,
            prefetch: false,
            pts,
        }
    }

    #[test]
    fn gets_grants_shared_with_lease_past_requester_pts() {
        let (mut dir, mut net, mut mem) = setup(2);
        let mut d = [0u8; 64];
        d[0] = 9;
        mem.write(LineAddr::new(5), &d);
        dir.handle(req(0, 5, ReqKind::GetS, 7), &mut net, &mut mem, Cycle::ZERO);
        let msgs = pump(&mut dir, &mut net, &mut mem, 200, 3);
        assert_eq!(msgs.len(), 1);
        match &msgs[0].1 {
            Msg::Grant { state, data, lease, .. } => {
                assert_eq!(*state, Mesi::Shared);
                assert_eq!(data.as_ref().expect("data")[0], 9);
                let l = lease.expect("tardis grant carries a lease");
                assert_eq!(l.rts, 7 + LEASE);
                assert_eq!(l.wts, 0);
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(dir.stats.lease_extends, 1);
        assert!(dir.idle());
    }

    #[test]
    fn second_reader_needs_no_forward() {
        let (mut dir, mut net, mut mem) = setup(2);
        dir.handle(req(0, 5, ReqKind::GetS, 0), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        // Unlike MESI (E-state owner -> Fwd Downgrade), a second reader is
        // served straight from the home: no owner, no forward.
        dir.handle(req(1, 5, ReqKind::GetS, 3), &mut net, &mut mem, Cycle::new(200));
        let msgs = pump(&mut dir, &mut net, &mut mem, 300, 3);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            &msgs[0],
            (c, Msg::Grant { state: Mesi::Shared, .. }) if *c == CoreId::new(1)
        ));
        assert_eq!(dir.stats.fwds, 0);
    }

    #[test]
    fn writer_gets_no_invalidations_and_inherits_reader_lease() {
        let (mut dir, mut net, mut mem) = setup(3);
        // Two readers lease the line.
        dir.handle(req(0, 7, ReqKind::GetS, 4), &mut net, &mut mem, Cycle::ZERO);
        dir.handle(req(1, 7, ReqKind::GetS, 20), &mut net, &mut mem, Cycle::new(1));
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        // A writer asks: nobody is invalidated, and the granted pair tells
        // it the latest outstanding lease it must write past.
        dir.handle(req(2, 7, ReqKind::GetM, 0), &mut net, &mut mem, Cycle::new(200));
        let msgs = pump(&mut dir, &mut net, &mut mem, 300, 3);
        assert_eq!(msgs.len(), 1, "grant only — no Inv to either reader");
        match &msgs[0] {
            (c, Msg::Grant { state: Mesi::Modified, lease, data, .. }) => {
                assert_eq!(*c, CoreId::new(2));
                assert!(data.is_some(), "tardis has no permission-only upgrade");
                assert_eq!(lease.expect("lease").rts, 20 + LEASE);
            }
            other => panic!("expected M grant, got {other:?}"),
        }
        assert_eq!(dir.stats.fwds, 0);
    }

    #[test]
    fn owned_line_still_forwards_to_owner() {
        let (mut dir, mut net, mut mem) = setup(2);
        dir.handle(req(0, 11, ReqKind::GetM, 0), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        dir.handle(req(1, 11, ReqKind::GetS, 6), &mut net, &mut mem, Cycle::new(200));
        let msgs = pump(&mut dir, &mut net, &mut mem, 210, 3);
        assert!(matches!(
            &msgs[..],
            [(c, Msg::Fwd { kind: FwdKind::Downgrade, to_owner: true, .. })] if *c == CoreId::new(0)
        ));
        // Owner answers, reporting the timestamps it advanced to.
        dir.handle(
            Msg::FwdResp {
                core: CoreId::new(0),
                line: LineAddr::new(11),
                data: Some(Box::new([5u8; 64])),
                relinquished: false,
                lease: Some(Lease { wts: 31, rts: 31 }),
            },
            &mut net,
            &mut mem,
            Cycle::new(210),
        );
        let msgs = pump(&mut dir, &mut net, &mut mem, 400, 3);
        match msgs
            .iter()
            .find(|(c, _)| *c == CoreId::new(1))
            .map(|(_, m)| m)
        {
            Some(Msg::Grant { state: Mesi::Shared, lease, .. }) => {
                // Lease extends past the merged wts, not just the pts.
                assert_eq!(lease.expect("lease").rts, 31 + LEASE);
                assert_eq!(lease.expect("lease").wts, 31);
            }
            other => panic!("expected shared grant, got {other:?}"),
        }
        assert_eq!(dir.stats.fwds, 1);
    }

    #[test]
    fn evict_merges_timestamps_and_updates_memory() {
        let (mut dir, mut net, mut mem) = setup(1);
        dir.handle(req(0, 13, ReqKind::GetM, 0), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        dir.handle(
            Msg::Evict {
                core: CoreId::new(0),
                line: LineAddr::new(13),
                data: Some(Box::new([0x77u8; 64])),
                lease: Some(Lease { wts: 42, rts: 50 }),
            },
            &mut net,
            &mut mem,
            Cycle::new(200),
        );
        assert_eq!(mem.read(LineAddr::new(13))[0], 0x77);
        assert_eq!(dir.stats.writebacks, 1);
        // Next reader's lease starts from the merged wts=42.
        dir.handle(req(0, 13, ReqKind::GetS, 0), &mut net, &mut mem, Cycle::new(201));
        let msgs = pump(&mut dir, &mut net, &mut mem, 300, 3);
        match msgs.last().map(|(_, m)| m) {
            Some(Msg::Grant { lease, .. }) => {
                let l = lease.expect("lease");
                assert_eq!(l.wts, 42);
                assert_eq!(l.rts, 52.max(42 + LEASE));
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn queued_requests_replay_with_their_pts() {
        let (mut dir, mut net, mut mem) = setup(2);
        dir.handle(req(0, 9, ReqKind::GetM, 0), &mut net, &mut mem, Cycle::ZERO);
        // Second request while the first is fetching from DRAM.
        dir.handle(req(1, 9, ReqKind::GetS, 17), &mut net, &mut mem, Cycle::new(1));
        assert_eq!(dir.open_transactions(), 1);
        let msgs = pump(&mut dir, &mut net, &mut mem, 150, 3);
        // Core 0 granted M; the replayed GetS then forwards a Downgrade to
        // the new owner, carrying pts=17 in the reopened transaction.
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(0)
            && matches!(m, Msg::Grant { state: Mesi::Modified, .. })));
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(0)
            && matches!(m, Msg::Fwd { kind: FwdKind::Downgrade, to_owner: true, .. })));
        let dbg = dir.debug_line(LineAddr::new(9));
        assert!(dbg.contains("17"), "transaction should carry pts=17: {dbg}");
    }
}
