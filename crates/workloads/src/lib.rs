//! Synthetic workloads for the TUS reproduction.
//!
//! The paper evaluates on SPEC CPU2017, TensorFlow (BigDataBench) and
//! PARSEC-3.0 reference runs. Those inputs are not redistributable and a
//! full x86 functional front end is out of scope, so this crate generates
//! *archetype-calibrated* traces instead: each named workload reproduces
//! the store-traffic character the paper attributes to that benchmark
//! (store bursts for `gcc`, long-latency irregular store misses for
//! `mcf`, streaming stores for `streamcluster`, interleaved bursts for
//! `ferret`, ...). See `DESIGN.md` §2 for the substitution argument.
//!
//! * [`archetype`] — the parameter model and the [`TraceSource`]
//!   generator built on it.
//! * [`suites`] — the named workloads and the three suites the figures
//!   use: `sb_bound_single()`, `all_single()` and `parsec16()`.
//!
//! [`TraceSource`]: tus_cpu::TraceSource

pub mod archetype;
pub mod suites;

pub use archetype::{ArchetypeParams, ArchetypeTrace, SharingParams};
pub use suites::{all_single, by_name, parsec16, sb_bound_single, Workload};
