//! `tus-serve` — a long-lived simulation daemon.
//!
//! The harness used to pay full cache/page-pool construction — and a
//! cold memo map — on every CLI invocation. This module turns it into a
//! service: one warm process owning a single [`Executor`] (in-process
//! memo + on-disk `.runcache`) serves many clients over a unix socket
//! and/or TCP, so the thousandth request for a popular experiment point
//! costs a memo lookup instead of a simulation.
//!
//! The shape is deliberately std-only and hand-rolled, like the
//! executor's worker pool: per-listener accept threads feed accepted
//! connections into an mpsc channel drained by a fixed pool of handler
//! threads. Each connection speaks the length-prefixed frame protocol of
//! [`crate::protocol`] and may issue any number of requests
//! back-to-back.
//!
//! **Nothing a client sends can kill the daemon.** Malformed frames
//! become structured error replies; unknown workload/experiment names
//! come back as [`HarnessError`] replies; per-request cycle budgets are
//! enforced by the simulator's own watchdog machinery and returned as
//! rendered [`tus::DeadlockReport`]s; and every handler runs under
//! `catch_unwind`, so even a panicking simulation job is a single error
//! reply — the executor's locks recover from poisoning and the next
//! request proceeds.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use tus_sim::{CoherenceKind, KernelKind};

use crate::check_cmd::{
    collect_jobs, persist_finding, render_finding, render_stats, sweep_jobs, CheckOptions,
};
use crate::errors::{panic_message, workload, HarnessError};
use crate::executor::{encode_result, Executor};
use crate::experiments::{Options, EXPERIMENTS};
use crate::fuzz_cmd::{report_finding, sweep_cases, FuzzOptions};
use crate::protocol::{
    encode_error, numeric, parse_headers, read_frame, require, write_frame, Frame, FrameKind,
    ReadOutcome,
};
use crate::runner::{RunSpec, Scale};
use crate::trace_cmd::{try_run_traced, write_chrome_trace_to, TraceOptions};

/// How long a handler blocks waiting for the next request frame before
/// re-checking the shutdown flag. Keeps persistent idle connections from
/// pinning the daemon open across a shutdown.
const READ_POLL: Duration = Duration::from_millis(500);

/// How long an accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Daemon configuration (the `serve` subcommand's flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (e.g. `127.0.0.1:9118`); `None` = no TCP.
    pub tcp: Option<String>,
    /// Unix-socket path; `None` = no unix socket.
    pub socket: Option<PathBuf>,
    /// Simulation worker threads inside the shared executor.
    pub jobs: usize,
    /// Concurrent connection-handler threads.
    pub handlers: usize,
    /// Output directory: experiment CSVs, fuzz corpus and the shared
    /// `.runcache` all land here.
    pub out: PathBuf,
    /// Whether the shared on-disk run cache is enabled.
    pub cache: bool,
    /// Server-side ceiling on per-request cycle budgets; a client budget
    /// is clamped to this, and requests without a budget get it as their
    /// ceiling. `None` = the runner's default budget only.
    pub max_budget: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            tcp: None,
            socket: None,
            jobs: Executor::default_jobs(),
            handlers: 4,
            out: PathBuf::from("results"),
            cache: true,
            max_budget: None,
        }
    }
}

/// A bidirectional client connection (TCP or unix socket).
trait Conn: std::io::Read + std::io::Write + Send {
    /// Sets the read timeout (both stream types support it).
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, d)
    }
}

impl Conn for UnixStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, d)
    }
}

/// Shared daemon state: the warm executor plus lifetime counters.
pub struct Server {
    opt: ServeOptions,
    ex: Executor,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Serializes experiment requests: they write CSV files into the
    /// shared output directory, and interleaved writers would tear them.
    /// Point/fuzz/trace requests run fully concurrently.
    experiment_gate: Mutex<()>,
    started: Instant,
}

/// A server that has bound its listeners but not yet entered the serve
/// loop — the point where an ephemeral TCP port is knowable (tests, and
/// the `[tus-serve: listening ...]` banner).
pub struct BoundServer {
    server: Arc<Server>,
    tcp: Option<TcpListener>,
    unix: Option<(UnixListener, PathBuf)>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Builds the shared state (does not bind anything yet).
    pub fn new(opt: ServeOptions) -> Arc<Server> {
        let cache_dir = opt.cache.then(|| opt.out.join(".runcache"));
        Arc::new(Server {
            ex: Executor::new(opt.jobs, cache_dir),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            experiment_gate: Mutex::new(()),
            started: Instant::now(),
            opt,
        })
    }

    /// Requests shutdown: accept loops drain, handlers finish their
    /// in-flight request, `BoundServer::run` returns.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The effective cycle budget for a request: the client's ask,
    /// clamped by the server-wide ceiling.
    fn effective_budget(&self, client: Option<u64>) -> Option<u64> {
        match (client, self.opt.max_budget) {
            (Some(c), Some(m)) => Some(c.min(m)),
            (Some(c), None) => Some(c),
            (None, m) => m,
        }
    }
}

/// Binds the configured listeners. Fails fast (before daemonizing into
/// the serve loop) on unusable addresses; a stale unix-socket file from
/// a dead daemon is removed and rebound.
pub fn bind(opt: ServeOptions) -> std::io::Result<BoundServer> {
    if opt.tcp.is_none() && opt.socket.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "tus-serve needs at least one of --listen / --socket",
        ));
    }
    let tcp = opt.tcp.as_deref().map(TcpListener::bind).transpose()?;
    let tcp_addr = tcp.as_ref().map(TcpListener::local_addr).transpose()?;
    let unix = match &opt.socket {
        Some(path) => {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            Some((UnixListener::bind(path)?, path.clone()))
        }
        None => None,
    };
    Ok(BoundServer {
        server: Server::new(opt),
        tcp,
        unix,
        tcp_addr,
    })
}

impl BoundServer {
    /// The bound TCP address (resolves `:0` ephemeral ports).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// A handle to the shared server state (tests use it to inspect and
    /// to request shutdown out-of-band).
    pub fn server(&self) -> Arc<Server> {
        Arc::clone(&self.server)
    }

    /// Serves until a `Shutdown` request (or [`Server::request_shutdown`]).
    ///
    /// Accept loops and the handler pool are scoped threads, so this
    /// returns only after every in-flight request has completed — a
    /// clean shutdown, never a torn reply.
    pub fn run(self) -> std::io::Result<()> {
        let BoundServer { server, tcp, unix, tcp_addr } = self;
        if let Some(addr) = tcp_addr {
            eprintln!("[tus-serve: listening on tcp {addr}]");
        }
        let unix_path = unix.as_ref().map(|(_, p)| p.clone());
        if let Some(p) = &unix_path {
            eprintln!("[tus-serve: listening on unix {}]", p.display());
        }
        eprintln!(
            "[tus-serve: {} sim jobs, {} handlers, cache {}, out {}]",
            server.opt.jobs,
            server.opt.handlers,
            if server.opt.cache { "on" } else { "off" },
            server.opt.out.display(),
        );

        let (tx, rx) = mpsc::channel::<Box<dyn Conn>>();
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            if let Some(listener) = &tcp {
                let tx = tx.clone();
                let server = &server;
                s.spawn(move || accept_loop(server, listener, &tx, |c| Box::new(c)));
            }
            if let Some((listener, _)) = &unix {
                let tx = tx.clone();
                let server = &server;
                s.spawn(move || accept_loop(server, listener, &tx, |c| Box::new(c)));
            }
            // The accept loops hold the only remaining senders: when they
            // exit on shutdown, the channel closes and handlers drain out.
            drop(tx);
            for _ in 0..server.opt.handlers.max(1) {
                let server = &server;
                let rx = &rx;
                s.spawn(move || loop {
                    let conn = {
                        let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard.recv()
                    };
                    match conn {
                        Ok(conn) => handle_conn(server, conn),
                        Err(_) => break,
                    }
                });
            }
        });
        if let Some(p) = unix_path {
            let _ = std::fs::remove_file(p);
        }
        eprintln!(
            "[tus-serve: clean shutdown after {} request(s), {} error repl(ies), {:.1}s up]",
            server.requests.load(Ordering::Relaxed),
            server.errors.load(Ordering::Relaxed),
            server.started.elapsed().as_secs_f64(),
        );
        Ok(())
    }
}

/// Generic nonblocking accept loop: polls `listener` until shutdown,
/// handing accepted streams (switched back to blocking mode with a read
/// poll timeout) to the handler channel.
fn accept_loop<L, C>(
    server: &Server,
    listener: &L,
    tx: &mpsc::Sender<Box<dyn Conn>>,
    boxer: impl Fn(C) -> Box<dyn Conn>,
) where
    L: Acceptor<C>,
    C: Conn + 'static,
{
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("tus-serve: cannot set listener nonblocking: {e}");
        return;
    }
    while !server.shutting_down() {
        match listener.accept_conn() {
            Ok(conn) => {
                let _ = conn.set_read_timeout(Some(READ_POLL));
                if tx.send(boxer(conn)).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                eprintln!("tus-serve: accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// The two listener types, unified for [`accept_loop`].
trait Acceptor<C> {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()>;
    fn accept_conn(&self) -> std::io::Result<C>;
}

impl Acceptor<TcpStream> for TcpListener {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        TcpListener::set_nonblocking(self, on)
    }
    fn accept_conn(&self) -> std::io::Result<TcpStream> {
        let (s, _) = self.accept()?;
        s.set_nonblocking(false)?;
        Ok(s)
    }
}

impl Acceptor<UnixStream> for UnixListener {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        UnixListener::set_nonblocking(self, on)
    }
    fn accept_conn(&self) -> std::io::Result<UnixStream> {
        let (s, _) = self.accept()?;
        s.set_nonblocking(false)?;
        Ok(s)
    }
}

/// Serves one connection until EOF, a malformed frame, or shutdown.
fn handle_conn(server: &Server, mut conn: Box<dyn Conn>) {
    loop {
        let frame = match read_frame(&mut conn) {
            Ok(ReadOutcome::Frame(f)) => f,
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::Malformed(what)) => {
                // The stream is no longer frame-aligned: answer once,
                // structurally, and drop the connection — but never the
                // process.
                server.errors.fetch_add(1, Ordering::Relaxed);
                let e = HarnessError::Protocol { what };
                let _ = write_frame(&mut conn, FrameKind::Error, &encode_error(&e));
                return;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: keep waiting unless the daemon is
                // shutting down.
                if server.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        server.requests.fetch_add(1, Ordering::Relaxed);

        // A panic anywhere in a handler is one error reply, not a dead
        // daemon: the executor's poison-recovering locks make its shared
        // state safe to keep using afterwards.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            dispatch(server, &mut conn, &frame)
        }));
        let done = match outcome {
            Ok(Ok(done)) => done,
            Ok(Err(DispatchError::Reply(e))) => {
                server.errors.fetch_add(1, Ordering::Relaxed);
                if write_frame(&mut conn, FrameKind::Error, &encode_error(&e)).is_err() {
                    return;
                }
                false
            }
            Ok(Err(DispatchError::Io(e))) => {
                eprintln!("tus-serve: connection write failed: {e}");
                return;
            }
            Err(payload) => {
                server.errors.fetch_add(1, Ordering::Relaxed);
                let e = HarnessError::JobPanicked {
                    what: panic_message(&*payload),
                };
                let _ = write_frame(&mut conn, FrameKind::Error, &encode_error(&e));
                false
            }
        };
        if done {
            return;
        }
    }
}

/// Why a dispatch did not produce a success reply.
enum DispatchError {
    /// Structured error to send back; the connection stays up.
    Reply(HarnessError),
    /// The connection itself failed; nothing more to send.
    Io(std::io::Error),
}

impl From<HarnessError> for DispatchError {
    fn from(e: HarnessError) -> Self {
        DispatchError::Reply(e)
    }
}

impl From<std::io::Error> for DispatchError {
    fn from(e: std::io::Error) -> Self {
        DispatchError::Io(e)
    }
}

/// Handles one request frame. `Ok(true)` closes the connection (only
/// `Shutdown` does).
fn dispatch(
    server: &Server,
    conn: &mut Box<dyn Conn>,
    frame: &Frame,
) -> Result<bool, DispatchError> {
    match frame.kind {
        FrameKind::Ping => {
            write_frame(conn, FrameKind::Pong, &frame.body)?;
            Ok(false)
        }
        FrameKind::RunPoint => {
            handle_run_point(server, conn, &frame.body)?;
            Ok(false)
        }
        FrameKind::Experiment => {
            handle_experiment(server, conn, &frame.body)?;
            Ok(false)
        }
        FrameKind::FuzzSweep => {
            handle_fuzz(server, conn, &frame.body)?;
            Ok(false)
        }
        FrameKind::TraceCapture => {
            handle_trace(server, conn, &frame.body)?;
            Ok(false)
        }
        FrameKind::Check => {
            handle_check(server, conn, &frame.body)?;
            Ok(false)
        }
        FrameKind::Counters => {
            let c = server.ex.counters();
            let body = format!(
                "uptime_seconds={:.3}\nrequests={}\nerrors={}\nexecuted={}\nmemo_hits={}\ndisk_hits={}\n",
                server.started.elapsed().as_secs_f64(),
                server.requests.load(Ordering::Relaxed),
                server.errors.load(Ordering::Relaxed),
                c.executed,
                c.memo_hits,
                c.disk_hits,
            );
            write_frame(conn, FrameKind::CountersReply, &body)?;
            Ok(false)
        }
        FrameKind::Shutdown => {
            write_frame(conn, FrameKind::ShutdownOk, "")?;
            server.request_shutdown();
            Ok(true)
        }
        other => Err(HarnessError::Protocol {
            what: format!("{other:?} is not a request frame"),
        }
        .into()),
    }
}

fn parse_policy(label: &str) -> Result<tus_sim::PolicyKind, HarnessError> {
    tus_sim::PolicyKind::ALL
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| HarnessError::Protocol {
            what: format!(
                "unknown policy {label:?}; known: {}",
                tus_sim::PolicyKind::ALL.map(|p| p.label()).join(" ")
            ),
        })
}

fn parse_kernel(label: &str) -> Result<KernelKind, HarnessError> {
    KernelKind::parse(label).ok_or_else(|| HarnessError::Protocol {
        what: format!("unknown kernel {label:?}; known: lockstep skip event"),
    })
}

fn parse_coherence(label: &str) -> Result<CoherenceKind, HarnessError> {
    CoherenceKind::parse(label).ok_or_else(|| HarnessError::Protocol {
        what: format!(
            "unknown coherence backend {label:?}; known: {}",
            CoherenceKind::ALL.map(|c| c.label()).join(" ")
        ),
    })
}

fn parse_scale(label: &str) -> Result<Scale, HarnessError> {
    Scale::parse(label).ok_or_else(|| HarnessError::Protocol {
        what: format!("unknown scale {label:?}; known: quick normal full"),
    })
}

/// Builds the [`RunSpec`] a `RunPoint`/`TraceCapture` body describes,
/// plus the request's optional cycle budget (`budget=`) and wall-clock
/// budget in milliseconds (`wall_ms=`).
fn spec_from_headers(body: &str) -> Result<(RunSpec, Option<u64>, Option<u64>), HarnessError> {
    let h = parse_headers(body)?;
    let w = workload(require(&h, "workload")?)?;
    let policy = parse_policy(require(&h, "policy")?)?;
    let sb = numeric::<usize>(&h, "sb")?.unwrap_or(114).max(1);
    let scale = match h.get("scale") {
        Some(s) => parse_scale(s)?,
        None => Scale::Normal,
    };
    let mut spec = RunSpec::new(w, policy, sb, scale);
    if let Some(seed) = numeric::<u64>(&h, "seed")? {
        spec.seed = seed;
    }
    if let Some(k) = h.get("kernel") {
        spec.kernel = parse_kernel(k)?;
    }
    if let Some(c) = h.get("coherence") {
        spec.coherence = parse_coherence(c)?;
    }
    let budget = numeric::<u64>(&h, "budget")?;
    let wall_ms = numeric::<u64>(&h, "wall_ms")?;
    Ok((spec, budget, wall_ms))
}

fn handle_run_point(
    server: &Server,
    conn: &mut Box<dyn Conn>,
    body: &str,
) -> Result<(), DispatchError> {
    let (spec, budget, wall_ms) = spec_from_headers(body)?;
    let budget = server.effective_budget(budget);
    let key = spec.memo_key();
    write_frame(conn, FrameKind::Progress, &format!("running {key}\n"))?;
    let before = server.ex.counters();
    let started = Instant::now();
    let result = server
        .ex
        .try_run_one_wall(&spec, budget, wall_ms)
        .map_err(DispatchError::Reply)?;
    let since = server.ex.counters().since(before);
    let reply = format!(
        "executed={}\nmemo_hits={}\ndisk_hits={}\nseconds={:.6}\nkey={}\n\n{}",
        since.executed,
        since.memo_hits,
        since.disk_hits,
        started.elapsed().as_secs_f64(),
        key,
        encode_result(&result, &key),
    );
    write_frame(conn, FrameKind::RunDone, &reply)?;
    Ok(())
}

fn handle_experiment(
    server: &Server,
    conn: &mut Box<dyn Conn>,
    body: &str,
) -> Result<(), DispatchError> {
    let h = parse_headers(body)?;
    let name = require(&h, "name")?;
    let Some(&(name, f)) = EXPERIMENTS.iter().find(|&&(n, _)| n == name) else {
        return Err(HarnessError::UnknownExperiment { name: name.to_owned() }.into());
    };
    let mut opt = Options {
        out: server.opt.out.clone(),
        ..Options::default()
    };
    if let Some(s) = h.get("scale") {
        opt.scale = parse_scale(s)?;
    }
    if let Some(seed) = numeric::<u64>(&h, "seed")? {
        opt.seed = seed;
    }
    if let Some(k) = h.get("kernel") {
        opt.kernel = parse_kernel(k)?;
    }
    if let Some(c) = h.get("coherence") {
        opt.coherence = parse_coherence(c)?;
    }
    opt.parallel_cap = numeric::<usize>(&h, "parallel_cap")?;
    write_frame(
        conn,
        FrameKind::Progress,
        &format!("running experiment {name} at {} scale\n", opt.scale.label()),
    )?;
    let before = server.ex.counters();
    let started = Instant::now();
    {
        // Experiments write CSVs into the shared out directory: one at a
        // time. (Simulation results themselves are memo-shared and
        // deterministic, so serialization is purely about file writes.)
        let _gate = server
            .experiment_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&server.ex, &opt);
    }
    let since = server.ex.counters().since(before);
    let reply = format!(
        "name={}\nexecuted={}\nmemo_hits={}\ndisk_hits={}\nseconds={:.6}\ncsv_dir={}\n",
        name,
        since.executed,
        since.memo_hits,
        since.disk_hits,
        started.elapsed().as_secs_f64(),
        server.opt.out.display(),
    );
    write_frame(conn, FrameKind::ExperimentDone, &reply)?;
    Ok(())
}

fn handle_fuzz(
    server: &Server,
    conn: &mut Box<dyn Conn>,
    body: &str,
) -> Result<(), DispatchError> {
    let h = parse_headers(body)?;
    let mut opt = FuzzOptions {
        programs: numeric::<u64>(&h, "programs")?.unwrap_or(50),
        out: server.opt.out.clone(),
        jobs: server.opt.jobs,
        ..FuzzOptions::default()
    };
    if let Some(seeds) = numeric::<u64>(&h, "seeds")? {
        opt.seeds = seeds.max(1);
    }
    if let Some(seed) = numeric::<u64>(&h, "seed")? {
        opt.base_seed = seed;
    }
    if let Some(p) = h.get("policy") {
        opt.policy = Some(parse_policy(p)?);
    }
    if let Some(k) = h.get("kernel") {
        opt.kernel = parse_kernel(k)?;
    }
    if let Some(c) = h.get("coherence") {
        opt.coherence = parse_coherence(c)?;
    }
    let started = Instant::now();
    // Stream progress roughly every 100 programs, like the CLI does.
    let progress: Mutex<&mut Box<dyn Conn>> = Mutex::new(conn);
    let findings = sweep_cases(&opt, &|done, total, violations| {
        if done % 100 == 0 || done == total {
            let mut conn = progress.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = write_frame(
                &mut **conn,
                FrameKind::Progress,
                &format!("{done}/{total} programs, {violations} violation(s)\n"),
            );
        }
    });
    let conn = progress.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rendered = String::new();
    for f in &findings {
        use std::fmt::Write as _;
        let _ = writeln!(rendered, "--- VIOLATION (program {}) ---", f.index);
        let _ = writeln!(rendered, "{}", f.failure);
        let _ = write!(rendered, "{}", f.case);
        if let Err(e) = report_finding(&opt, f) {
            eprintln!("tus-serve: cannot persist counterexample: {e}");
        }
    }
    let reply = format!(
        "programs={}\nseeds={}\nviolations={}\nseconds={:.6}\n\n{}",
        opt.programs,
        opt.seeds,
        findings.len(),
        started.elapsed().as_secs_f64(),
        rendered,
    );
    write_frame(conn, FrameKind::FuzzDone, &reply)?;
    Ok(())
}

fn handle_check(
    server: &Server,
    conn: &mut Box<dyn Conn>,
    body: &str,
) -> Result<(), DispatchError> {
    let h = parse_headers(body)?;
    let mut opt = CheckOptions {
        out: server.opt.out.clone(),
        jobs: server.opt.jobs,
        litmus: None,
        ..CheckOptions::default()
    };
    if let Some(dir) = h.get("corpus") {
        opt.corpus = Some(PathBuf::from(dir));
    }
    if let Some(sel) = h.get("litmus") {
        opt.litmus = Some((*sel).to_owned());
    }
    if let Some(n) = numeric::<u64>(&h, "programs")? {
        opt.fuzz = n;
    }
    if let Some(seed) = numeric::<u64>(&h, "seed")? {
        opt.base_seed = seed;
    }
    if let Some(n) = numeric::<usize>(&h, "max_threads")? {
        opt.config.max_threads = n.max(1);
    }
    if let Some(n) = numeric::<usize>(&h, "max_ops")? {
        opt.config.max_ops = n.max(1);
    }
    if let Some(n) = numeric::<u64>(&h, "max_states")? {
        opt.config.max_states = n.max(1);
    }
    if let Some(n) = numeric::<u64>(&h, "seeds")? {
        opt.config.sim_seeds = n;
    }
    if let Some(n) = numeric::<u32>(&h, "reduction")? {
        opt.config.reduction = n != 0;
    }
    if let Some(n) = numeric::<u32>(&h, "lazy")? {
        opt.config.lazy = n != 0;
    }
    if let Some(p) = h.get("policy") {
        opt.policy = Some(parse_policy(p)?);
    }
    if let Some(k) = h.get("kernel") {
        opt.config.kernel = parse_kernel(k)?;
    }
    if let Some(c) = h.get("coherence") {
        opt.config.coherence = parse_coherence(c)?;
    }
    if opt.corpus.is_none() && opt.litmus.is_none() && opt.fuzz == 0 {
        opt.litmus = Some("all".into());
    }
    let mut cfg = opt.config.clone();
    let jobs = collect_jobs(&opt, &mut cfg)
        .map_err(|what| HarnessError::Protocol { what })?;
    let policies: Vec<tus_sim::PolicyKind> = opt
        .policy
        .map_or_else(|| tus_sim::PolicyKind::ALL.to_vec(), |p| vec![p]);
    let started = Instant::now();
    let progress: Mutex<&mut Box<dyn Conn>> = Mutex::new(conn);
    let summary = sweep_jobs(&jobs, &cfg, &policies, opt.jobs, &|done, total, violations| {
        if done % 25 == 0 || done == total {
            let mut conn = progress.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = write_frame(
                &mut **conn,
                FrameKind::Progress,
                &format!("{done}/{total} programs, {violations} violation(s)\n"),
            );
        }
    });
    let conn = progress.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rendered = String::new();
    for f in &summary.findings {
        rendered.push_str(&render_finding(f));
        if matches!(f.report.outcome(), tus_tso::check::CheckOutcome::Violated) {
            match persist_finding(&opt, &cfg, &policies, f) {
                Ok(p) => eprintln!("tus-serve: persisted check repro {}", p.display()),
                Err(e) => eprintln!("tus-serve: cannot persist check repro: {e}"),
            }
        }
    }
    rendered.push_str(&render_stats(&summary));
    let agg = summary.per_policy.iter().fold(
        tus_tso::check::CheckStats::default(),
        |mut a, (_, s, _)| {
            a.absorb(s);
            a
        },
    );
    let reply = format!(
        "programs={}\nverified={}\nviolations={}\nbound_exceeded={}\nexplored={}\nmemoized={}\npruned={}\nseconds={:.6}\n\n{}",
        summary.programs,
        summary.verified,
        summary.violations(),
        summary.bound_exceeded,
        agg.explored,
        agg.memoized,
        agg.pruned,
        started.elapsed().as_secs_f64(),
        rendered,
    );
    write_frame(conn, FrameKind::CheckDone, &reply)?;
    Ok(())
}

fn handle_trace(
    server: &Server,
    conn: &mut Box<dyn Conn>,
    body: &str,
) -> Result<(), DispatchError> {
    let h = parse_headers(body)?;
    let mut opt = TraceOptions {
        workload: workload(require(&h, "workload")?)?,
        ..TraceOptions::default()
    };
    if let Some(p) = h.get("policy") {
        opt.policy = parse_policy(p)?;
    }
    if let Some(sb) = numeric::<usize>(&h, "sb")? {
        opt.sb_entries = sb.max(1);
    }
    if let Some(insts) = numeric::<u64>(&h, "insts")? {
        opt.insts = insts.max(1);
    }
    if let Some(seed) = numeric::<u64>(&h, "seed")? {
        opt.seed = seed;
    }
    if let Some(k) = h.get("kernel") {
        opt.kernel = parse_kernel(k)?;
    }
    if let Some(c) = h.get("coherence") {
        opt.coherence = parse_coherence(c)?;
    }
    opt.budget = server.effective_budget(numeric::<u64>(&h, "budget")?);
    let run = try_run_traced(&opt).map_err(|r| DispatchError::Reply(HarnessError::Deadlock(r)))?;
    let events: usize = run.tracks.iter().map(|(_, r)| r.len()).sum();
    write_frame(
        conn,
        FrameKind::Progress,
        &format!("{events} events across {} tracks, {} cycles\n", run.tracks.len(), run.cycles),
    )?;
    let mut json = Vec::new();
    write_chrome_trace_to(&mut json, &run.tracks).map_err(DispatchError::Io)?;
    let json = String::from_utf8(json).map_err(|_| HarnessError::Protocol {
        what: "trace JSON was not UTF-8".into(),
    })?;
    write_frame(conn, FrameKind::TraceDone, &json)?;
    Ok(())
}

/// CLI usage for `tus-harness serve`.
fn serve_usage() -> ! {
    eprintln!(
        "usage: tus-harness serve [--listen ADDR:PORT] [--socket PATH]\n\
         \x20                       [--jobs N] [--handlers N] [--out DIR]\n\
         \x20                       [--no-cache] [--max-budget CYCLES]\n\
         a long-lived simulation daemon: shares one memo map and one on-disk\n\
         run cache across every client; speaks the length-prefixed frame\n\
         protocol (see EXPERIMENTS.md); never panics on a bad request"
    );
    std::process::exit(2);
}

/// Parses `serve` arguments.
pub fn parse_serve_args(args: &[String]) -> ServeOptions {
    let mut opt = ServeOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => opt.tcp = Some(it.next().unwrap_or_else(|| serve_usage()).clone()),
            "--socket" => opt.socket = Some(it.next().unwrap_or_else(|| serve_usage()).into()),
            "--jobs" => {
                opt.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| serve_usage())
            }
            "--handlers" => {
                opt.handlers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| serve_usage())
            }
            "--out" => opt.out = it.next().unwrap_or_else(|| serve_usage()).into(),
            "--no-cache" => opt.cache = false,
            "--max-budget" => {
                opt.max_budget = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| serve_usage()),
                )
            }
            _ => serve_usage(),
        }
    }
    opt
}

/// Entry point for `tus-harness serve ...`.
pub fn main_serve(args: &[String]) -> ! {
    let opt = parse_serve_args(args);
    match bind(opt) {
        Ok(bound) => match bound.run() {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("tus-serve: {e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("tus-serve: cannot bind: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_serve_args_covers_flags() {
        let args: Vec<String> = [
            "--listen", "127.0.0.1:0", "--socket", "/tmp/x.sock", "--jobs", "3", "--handlers",
            "2", "--out", "/tmp/o", "--no-cache", "--max-budget", "5000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_serve_args(&args);
        assert_eq!(o.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.socket, Some(PathBuf::from("/tmp/x.sock")));
        assert_eq!(o.jobs, 3);
        assert_eq!(o.handlers, 2);
        assert_eq!(o.out, PathBuf::from("/tmp/o"));
        assert!(!o.cache);
        assert_eq!(o.max_budget, Some(5000));
    }

    #[test]
    fn effective_budget_clamps_to_server_ceiling() {
        let mut opt = ServeOptions::default();
        opt.max_budget = Some(1_000);
        let s = Server::new(opt);
        assert_eq!(s.effective_budget(None), Some(1_000));
        assert_eq!(s.effective_budget(Some(500)), Some(500));
        assert_eq!(s.effective_budget(Some(9_999)), Some(1_000));
        let s = Server::new(ServeOptions::default());
        assert_eq!(s.effective_budget(None), None);
        assert_eq!(s.effective_budget(Some(7)), Some(7));
    }

    #[test]
    fn bind_requires_an_address() {
        assert!(bind(ServeOptions::default()).is_err());
    }
}
