//! Bounded exhaustive model checking of the drain policies.
//!
//! The fuzzer ([`crate::fuzz`]) *samples* interleavings; this module
//! *enumerates* them. For a small [`Program`] it explores every reachable
//! state of each policy's **observable** semantics — an abstract machine
//! over per-thread FIFO store buffers whose drain transitions mirror what
//! the policy makes architecturally visible — and diffs the reachable
//! outcome set against the x86-TSO reference set from
//! [`crate::refmodel::tso_outcomes`] with **exact set equality**. Extra
//! outcomes are TSO violations; missing outcomes mean the machine is
//! over-strong (it forbids something TSO allows) — both are reported.
//!
//! Per-policy observable semantics:
//!
//! * `base`, `SSB`, `SPB` — single stores drain in FIFO order (the
//!   classic TSO buffer machine). SSB write-through and SPB permission
//!   prefetch change *timing*, never what becomes visible when.
//! * `CSB`, `TUS` — write-combining buffers drain **atomic groups**: any
//!   prefix of the FIFO may become visible in one indivisible step
//!   (a coalesced WCB flush / an authorized WOQ head-run). Group drains
//!   are a strict subset of single-drain interleavings, so the reachable
//!   set must still equal the reference set exactly.
//!
//! Two prunings keep the exploration small without losing outcomes:
//!
//! 1. **Store-buffer reduction** ("A Better Reduction Theorem for Store
//!    Buffers"): drain transitions are explored only at *buffer
//!    interaction boundaries* — states where some thread's next op is a
//!    load, or a thread with a non-empty buffer sits at a fence or at the
//!    end of its program. Any drain elsewhere commutes forward: it can
//!    only be observed through a later load, fence or final-memory read,
//!    and delaying it keeps buffers fuller, never less enabled.
//! 2. **Lazy TSO** ("Lazy TSO Reachability"): iterative deepening on
//!    per-thread buffer occupancy. Level 0 is sequential consistency
//!    (stores write through); level *k* forces a store at a full buffer
//!    to first drain the oldest entry. Each level's outcomes are valid
//!    TSO outcomes (the forced composite is two legal transitions), and
//!    the first level whose occupancy bound never fires is equivalent to
//!    the unbounded machine — a sound fixpoint.
//!
//! A canonical-state memo (full per-thread pc + buffer contents + memory
//! + observations, hashed) cuts revisits; explored/pruned/memoized counts
//! are reported per policy. On top of the model diff, a sampled
//! **simulator cross-check** runs the real machine over a handful of
//! timing seeds and asserts every observed outcome is in the enumerated
//! set — tying the cycle-level implementation to the exhaustively
//! verified envelope (and catching the feature-gated `bug-woq-reorder`
//! fault through `check`, not just through fuzzing: under that feature
//! the TUS machine also drains *non-head* runs, which surfaces as extra
//! outcomes in the diff).

use std::collections::{BTreeSet, VecDeque};

use tus_sim::{Addr, CoherenceKind, FxHashSet, KernelKind, PolicyKind};

use crate::conformance::{try_run_once_matrix, RunVerdict};
use crate::fuzz::{CaseFailure, FailureKind, FuzzCase};
use crate::prog::{LOp, Outcome, Program};
use crate::refmodel::tso_outcomes;

/// Bounds and toggles for one check run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Reject programs with more threads (structured
    /// [`Bound::Threads`], not a panic).
    pub max_threads: usize,
    /// Reject programs with more total operations.
    pub max_ops: usize,
    /// Per-(program, policy) explored-state budget; exceeding it yields
    /// [`Bound::States`].
    pub max_states: u64,
    /// Store-buffer reduction (drains only at interaction boundaries).
    pub reduction: bool,
    /// Lazy iterative deepening on buffer occupancy.
    pub lazy: bool,
    /// Timing seeds for the simulator cross-check (0 disables it — the
    /// diff against the reference model still runs).
    pub sim_seeds: u64,
    /// Simulation kernel for the cross-check runs.
    pub kernel: KernelKind,
    /// Coherence backend for the cross-check runs.
    pub coherence: CoherenceKind,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_threads: 3,
            max_ops: 8,
            max_states: 2_000_000,
            reduction: true,
            lazy: true,
            sim_seeds: 8,
            kernel: KernelKind::default(),
            coherence: CoherenceKind::default(),
        }
    }
}

/// Exploration counters for one (program, policy) enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// States expanded (memo misses).
    pub explored: u64,
    /// States cut by the canonical-state memo (revisits).
    pub memoized: u64,
    /// Drain transitions suppressed by the store-buffer reduction.
    pub pruned: u64,
    /// Lazy occupancy levels run (1 when `lazy` is off).
    pub levels: u32,
    /// Outcomes already reachable at level 0 (sequential consistency);
    /// 0 when `lazy` is off.
    pub sc_outcomes: usize,
}

impl CheckStats {
    /// Folds another run's counters into an aggregate (sums counts,
    /// keeps the deepest level).
    pub fn absorb(&mut self, other: &CheckStats) {
        self.explored += other.explored;
        self.memoized += other.memoized;
        self.pruned += other.pruned;
        self.levels = self.levels.max(other.levels);
        self.sc_outcomes += other.sc_outcomes;
    }
}

/// Which bound a program exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// More threads than `max_threads`.
    Threads {
        /// Threads in the program.
        got: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// More total operations than `max_ops`.
    Ops {
        /// Operations in the program.
        got: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// The explored-state budget ran out mid-enumeration.
    States {
        /// The configured budget.
        max: u64,
    },
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Bound::Threads { got, max } => write!(f, "{got} threads > --max-threads {max}"),
            Bound::Ops { got, max } => write!(f, "{got} ops > --max-ops {max}"),
            Bound::States { max } => write!(f, "state budget {max} exhausted"),
        }
    }
}

/// The verdict of one program-level check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every policy's reachable set equals the reference set and every
    /// sampled simulator outcome is inside it.
    Verified,
    /// The program (or its exploration) exceeded a bound; nothing was
    /// proved. Structured and non-fatal — sweeps report and continue.
    BoundExceeded(Bound),
    /// At least one policy diverged from the reference set (or the
    /// simulator escaped the enumerated envelope).
    Violated,
}

impl std::fmt::Display for CheckOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckOutcome::Verified => write!(f, "verified"),
            CheckOutcome::BoundExceeded(b) => write!(f, "bound exceeded: {b}"),
            CheckOutcome::Violated => write!(f, "VIOLATED"),
        }
    }
}

/// The per-policy result of a program check.
#[derive(Debug, Clone)]
pub struct PolicyCheck {
    /// The policy whose observable machine was enumerated.
    pub policy: PolicyKind,
    /// Size of the enumerated reachable outcome set.
    pub enumerated: usize,
    /// Outcomes the machine reaches but TSO forbids (violations).
    pub extra: Vec<Outcome>,
    /// Outcomes TSO allows but the machine never reaches (over-strong).
    pub missed: Vec<Outcome>,
    /// Simulator-observed outcomes outside the enumerated set.
    pub sim_extra: Vec<Outcome>,
    /// Cross-check seeds whose runs timed out (rendered elsewhere).
    pub sim_timeouts: Vec<u64>,
    /// Cross-check seeds whose runs returned truncated registers.
    pub sim_truncated: Vec<u64>,
    /// Exploration counters.
    pub stats: CheckStats,
}

impl PolicyCheck {
    /// Whether this policy passed: exact set equality and a clean
    /// cross-check.
    pub fn clean(&self) -> bool {
        self.extra.is_empty()
            && self.missed.is_empty()
            && self.sim_extra.is_empty()
            && self.sim_timeouts.is_empty()
            && self.sim_truncated.is_empty()
    }
}

/// The full result of checking one program.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Size of the TSO reference outcome set.
    pub reference: usize,
    /// One entry per checked policy (empty when a bound fired before
    /// any policy completed).
    pub policies: Vec<PolicyCheck>,
    /// Set when a bound fired.
    pub bound: Option<Bound>,
}

impl CheckReport {
    /// Collapses the report into a single verdict.
    pub fn outcome(&self) -> CheckOutcome {
        if let Some(b) = self.bound {
            return CheckOutcome::BoundExceeded(b);
        }
        if self.policies.iter().all(PolicyCheck::clean) {
            CheckOutcome::Verified
        } else {
            CheckOutcome::Violated
        }
    }

    /// Aggregated exploration counters across policies.
    pub fn stats(&self) -> CheckStats {
        let mut s = CheckStats::default();
        for p in &self.policies {
            s.absorb(&p.stats);
        }
        s
    }

    /// The first failing policy's divergence, as a shrinkable
    /// [`CaseFailure`] (`None` when verified or bound-exceeded).
    pub fn first_failure(&self) -> Option<CaseFailure> {
        let p = self.policies.iter().find(|p| !p.clean())?;
        let kind = if let Some(o) = p.extra.first() {
            FailureKind::Violation(o.clone())
        } else if let Some(o) = p.missed.first() {
            FailureKind::Missing(o.clone())
        } else if let Some(o) = p.sim_extra.first() {
            FailureKind::Violation(o.clone())
        } else if let Some(&seed) = p.sim_timeouts.first() {
            FailureKind::Timeout { seed, report: String::new() }
        } else {
            FailureKind::Truncated { seed: *p.sim_truncated.first()? }
        };
        Some(CaseFailure { policy: p.policy, kind })
    }
}

// ---------------------------------------------------------------------
// The abstract machine.

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: Vec<u64>,
    pcs: Vec<usize>,
    sbs: Vec<VecDeque<(usize, u64)>>,
    obs: Vec<Vec<u64>>,
}

impl State {
    fn initial(prog: &Program) -> Self {
        State {
            mem: vec![0; prog.locations()],
            pcs: vec![0; prog.threads.len()],
            sbs: vec![VecDeque::new(); prog.threads.len()],
            obs: prog.threads.iter().map(|_| Vec::new()).collect(),
        }
    }

    fn is_final(&self, prog: &Program) -> bool {
        self.pcs
            .iter()
            .zip(&prog.threads)
            .all(|(&pc, t)| pc == t.ops.len())
            && self.sbs.iter().all(|sb| sb.is_empty())
    }

    fn outcome(&self) -> Outcome {
        Outcome {
            regs: self.obs.clone(),
            mem: self.mem.clone(),
        }
    }
}

/// Store-buffer reduction enabling predicate: a drain is only observable
/// through a load (any thread), a fence the draining thread must retire,
/// or final memory — so drains are explored only when some thread's next
/// op is a load, or a thread with a non-empty buffer is at a fence or at
/// the end of its program. Delaying a drain past stores and empty-buffer
/// fences commutes (they neither read memory nor touch the buffer's
/// front), and buffers only get fuller, so no enabled drain is lost.
fn drains_enabled(s: &State, prog: &Program) -> bool {
    (0..prog.threads.len()).any(|t| match prog.threads[t].ops.get(s.pcs[t]) {
        Some(LOp::Load { .. }) => true,
        Some(LOp::Fence) => !s.sbs[t].is_empty(),
        None => !s.sbs[t].is_empty(),
        Some(LOp::Store { .. }) => false,
    })
}

/// Applies one drain: entries `start..start + len` of thread `t`'s
/// buffer become visible atomically, oldest first. `start` is 0 for
/// every legal policy; the `bug-woq-reorder` model uses `start > 0`.
fn drained(s: &State, t: usize, start: usize, len: usize) -> State {
    let mut n = s.clone();
    for _ in 0..len {
        let (loc, val) = n.sbs[t].remove(start).expect("drain range in buffer");
        n.mem[loc] = val;
    }
    n
}

/// Largest atomic drain group the policy's observable semantics allows.
fn max_group(policy: PolicyKind, buffered: usize) -> usize {
    match policy {
        // WCB coalescing: any FIFO prefix may flush as one atomic group.
        PolicyKind::Csb | PolicyKind::Tus => buffered,
        // Single-store drains only.
        _ => 1.min(buffered),
    }
}

/// Exhaustive DFS of one occupancy level (`cap = None` → unbounded).
/// Returns the reachable outcome set and whether the occupancy bound
/// fired (i.e. a store executed at a full buffer and was forced to
/// write through).
fn explore_level(
    prog: &Program,
    policy: PolicyKind,
    cfg: &CheckConfig,
    cap: Option<usize>,
    stats: &mut CheckStats,
) -> Result<(BTreeSet<Outcome>, bool), Bound> {
    let mut outcomes = BTreeSet::new();
    let mut seen: FxHashSet<State> = FxHashSet::default();
    let mut stack = vec![State::initial(prog)];
    let mut bound_hit = false;
    while let Some(s) = stack.pop() {
        if !seen.insert(s.clone()) {
            stats.memoized += 1;
            continue;
        }
        stats.explored += 1;
        if stats.explored > cfg.max_states {
            return Err(Bound::States { max: cfg.max_states });
        }
        if s.is_final(prog) {
            outcomes.insert(s.outcome());
            continue;
        }
        let drains_on = !cfg.reduction || drains_enabled(&s, prog);
        for t in 0..prog.threads.len() {
            let buffered = s.sbs[t].len();
            if buffered > 0 {
                if drains_on {
                    for k in 1..=max_group(policy, buffered) {
                        stack.push(drained(&s, t, 0, k));
                    }
                    #[cfg(feature = "bug-woq-reorder")]
                    if policy == PolicyKind::Tus {
                        // Fault-injection model: mirror the simulator's
                        // WOQ bug — a fully-ready *non-head* group may
                        // drain ahead of older entries.
                        for start in 1..buffered {
                            for k in 1..=(buffered - start) {
                                stack.push(drained(&s, t, start, k));
                            }
                        }
                    }
                } else {
                    stats.pruned += max_group(policy, buffered) as u64;
                }
            }
            let Some(op) = prog.threads[t].ops.get(s.pcs[t]) else {
                continue;
            };
            match *op {
                LOp::Store { loc, val } => {
                    let mut n = s.clone();
                    if cap.is_some_and(|c| buffered >= c) {
                        // Occupancy bound: forced composite — drain the
                        // oldest entry (or write through at level 0),
                        // then buffer the store. Both halves are legal
                        // unbounded-machine transitions.
                        bound_hit = true;
                        if let Some(&(l, v)) = n.sbs[t].front() {
                            n.sbs[t].pop_front();
                            n.mem[l] = v;
                            n.sbs[t].push_back((loc.0, val));
                        } else {
                            n.mem[loc.0] = val;
                        }
                    } else {
                        n.sbs[t].push_back((loc.0, val));
                    }
                    n.pcs[t] += 1;
                    stack.push(n);
                }
                LOp::Load { loc } => {
                    let mut n = s.clone();
                    // Forward from own buffer (youngest match), else
                    // read memory.
                    let v = s.sbs[t]
                        .iter()
                        .rev()
                        .find(|&&(l, _)| l == loc.0)
                        .map(|&(_, v)| v)
                        .unwrap_or(s.mem[loc.0]);
                    n.obs[t].push(v);
                    n.pcs[t] += 1;
                    stack.push(n);
                }
                LOp::Fence => {
                    if s.sbs[t].is_empty() {
                        let mut n = s.clone();
                        n.pcs[t] += 1;
                        stack.push(n);
                    }
                }
            }
        }
    }
    Ok((outcomes, bound_hit))
}

/// Enumerates the reachable outcome set of `prog` under `policy`'s
/// observable semantics, applying the configured prunings.
pub fn explore_policy(
    prog: &Program,
    policy: PolicyKind,
    cfg: &CheckConfig,
) -> Result<(BTreeSet<Outcome>, CheckStats), Bound> {
    let mut stats = CheckStats::default();
    if !cfg.lazy {
        let (outs, _) = explore_level(prog, policy, cfg, None, &mut stats)?;
        stats.levels = 1;
        return Ok((outs, stats));
    }
    // Iterative deepening on buffer occupancy. A thread can never hold
    // more entries than it has stores, so the loop always reaches a
    // level whose bound cannot fire.
    let max_cap = prog
        .threads
        .iter()
        .map(|t| t.ops.iter().filter(|o| matches!(o, LOp::Store { .. })).count())
        .max()
        .unwrap_or(0);
    let mut all = BTreeSet::new();
    for cap in 0..=max_cap {
        stats.levels += 1;
        let (outs, hit) = explore_level(prog, policy, cfg, Some(cap), &mut stats)?;
        if cap == 0 {
            stats.sc_outcomes = outs.len();
        }
        all.extend(outs);
        if !hit {
            // This level never clamped a store: it *is* the unbounded
            // machine, so the union is exact.
            break;
        }
    }
    Ok((all, stats))
}

/// Checks one program: enumerates every policy's observable machine,
/// diffs each against the TSO reference set (exact equality), and
/// cross-checks sampled simulator runs against the enumerated envelope.
pub fn check_program(prog: &Program, addrs: &[Addr], cfg: &CheckConfig) -> CheckReport {
    check_program_policies(prog, addrs, cfg, &PolicyKind::ALL)
}

/// [`check_program`] restricted to a policy subset.
pub fn check_program_policies(
    prog: &Program,
    addrs: &[Addr],
    cfg: &CheckConfig,
    policies: &[PolicyKind],
) -> CheckReport {
    let mut report = CheckReport {
        reference: 0,
        policies: Vec::new(),
        bound: None,
    };
    if prog.threads.len() > cfg.max_threads {
        report.bound = Some(Bound::Threads {
            got: prog.threads.len(),
            max: cfg.max_threads,
        });
        return report;
    }
    if prog.ops() > cfg.max_ops {
        report.bound = Some(Bound::Ops {
            got: prog.ops(),
            max: cfg.max_ops,
        });
        return report;
    }
    let reference = tso_outcomes(prog);
    report.reference = reference.len();
    for &policy in policies {
        let (enumerated, stats) = match explore_policy(prog, policy, cfg) {
            Ok(r) => r,
            Err(b) => {
                report.bound = Some(b);
                return report;
            }
        };
        let extra: Vec<Outcome> =
            enumerated.difference(&reference).cloned().collect();
        let missed: Vec<Outcome> =
            reference.difference(&enumerated).cloned().collect();
        let mut sim_extra = BTreeSet::new();
        let mut sim_timeouts = Vec::new();
        let mut sim_truncated = Vec::new();
        for seed in 0..cfg.sim_seeds {
            match try_run_once_matrix(prog, addrs, policy, seed, cfg.kernel, cfg.coherence) {
                RunVerdict::Outcome(o) => {
                    if !enumerated.contains(&o) {
                        sim_extra.insert(o);
                    }
                }
                RunVerdict::Timeout(_) => sim_timeouts.push(seed),
                RunVerdict::Truncated { .. } => sim_truncated.push(seed),
            }
        }
        report.policies.push(PolicyCheck {
            policy,
            enumerated: enumerated.len(),
            extra,
            missed,
            sim_extra: sim_extra.into_iter().collect(),
            sim_timeouts,
            sim_truncated,
            stats,
        });
    }
    report
}

/// Checks a fuzz case (program + address map) — the corpus entry point.
pub fn check_case_model(case: &FuzzCase, cfg: &CheckConfig) -> CheckReport {
    check_program(&case.program, &case.addrs, cfg)
}

/// The model-diff as a shrinking predicate: `Some` iff `case` fails the
/// check. Plugs into [`crate::fuzz::shrink_with`] so `check` findings
/// are minimized by the same shrinker the fuzzer uses, then persisted
/// in the corpus format for `fuzz --replay`.
pub fn model_failure(case: &FuzzCase, cfg: &CheckConfig) -> Option<CaseFailure> {
    check_case_model(case, cfg).first_failure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::default_addrs;
    use crate::prog::dsl::*;

    fn cfg() -> CheckConfig {
        // Model-only in unit tests: the simulator cross-check has its
        // own integration coverage and would dominate runtime here.
        CheckConfig { sim_seeds: 0, ..CheckConfig::default() }
    }

    fn sb() -> Program {
        Program::new(vec![
            thread(vec![st(0, 1), ld(1)]),
            thread(vec![st(1, 1), ld(0)]),
        ])
    }

    /// Every policy machine's reachable set equals the reference set on
    /// SB — including the relaxed both-read-zero outcome.
    #[test]
    fn all_policies_match_reference_on_sb() {
        let p = sb();
        let report = check_program(&p, &default_addrs(&p), &cfg());
        assert_eq!(report.outcome(), CheckOutcome::Verified, "{report:?}");
        assert_eq!(report.policies.len(), PolicyKind::ALL.len());
        let reference = tso_outcomes(&p);
        for pc in &report.policies {
            assert_eq!(pc.enumerated, reference.len(), "{:?}", pc.policy);
        }
        assert!(reference
            .iter()
            .any(|o| o.regs == vec![vec![0u64], vec![0u64]]));
    }

    /// Reduction and lazy deepening prune real work but change nothing
    /// observable.
    #[test]
    fn prunings_shrink_exploration_not_outcomes() {
        let full = CheckConfig { reduction: false, lazy: false, ..cfg() };

        // On SB the lazy levels are visible: the relaxed outcome only
        // appears above level 0.
        let p = sb();
        let (base_outs, base_stats) =
            explore_policy(&p, PolicyKind::Tus, &full).expect("in budget");
        let (fast_outs, fast_stats) =
            explore_policy(&p, PolicyKind::Tus, &cfg()).expect("in budget");
        assert_eq!(base_outs, fast_outs);
        assert!(fast_stats.levels >= 2, "{fast_stats:?}");
        assert!(
            fast_stats.sc_outcomes < fast_outs.len(),
            "SC must be a strict subset on SB: {fast_stats:?}"
        );
        assert!(base_stats.explored > 0);

        // Back-to-back stores create states where no thread is at a
        // load/fence boundary — exactly where the reduction suppresses
        // drain transitions.
        let bursty = Program::new(vec![
            thread(vec![st(0, 1), st(1, 2), ld(2)]),
            thread(vec![st(2, 3), ld(0)]),
        ]);
        let (slow, _) = explore_policy(&bursty, PolicyKind::Tus, &full).expect("in budget");
        let (quick, stats) = explore_policy(&bursty, PolicyKind::Tus, &cfg()).expect("in budget");
        assert_eq!(slow, quick);
        assert!(stats.pruned > 0, "{stats:?}");
    }

    /// The memo actually fires (diamond revisits collapse).
    #[test]
    fn memo_counts_revisits() {
        let p = sb();
        let (_, stats) = explore_policy(&p, PolicyKind::Baseline, &cfg()).expect("in budget");
        assert!(stats.memoized > 0, "{stats:?}");
    }

    /// Thread/op bounds come back as structured outcomes, not panics.
    #[test]
    fn bounds_are_structured() {
        let wide = Program::new(vec![
            thread(vec![ld(0)]),
            thread(vec![ld(0)]),
            thread(vec![ld(0)]),
            thread(vec![ld(0)]),
        ]);
        let r = check_program(&wide, &default_addrs(&wide), &cfg());
        assert!(matches!(r.outcome(), CheckOutcome::BoundExceeded(Bound::Threads { got: 4, max: 3 })));

        let long = Program::new(vec![thread(vec![st(0, 1); 9])]);
        let r = check_program(&long, &default_addrs(&long), &cfg());
        assert!(matches!(r.outcome(), CheckOutcome::BoundExceeded(Bound::Ops { got: 9, max: 8 })));

        let tiny = CheckConfig { max_states: 3, ..cfg() };
        let p = sb();
        let r = check_program(&p, &default_addrs(&p), &tiny);
        assert!(matches!(r.outcome(), CheckOutcome::BoundExceeded(Bound::States { max: 3 })));
    }

    /// Single-threaded programs have exactly the sequential outcome.
    #[test]
    fn single_thread_is_sequential() {
        let p = Program::new(vec![thread(vec![st(0, 5), ld(0), st(1, 6), ld(1)])]);
        for policy in PolicyKind::ALL {
            let (outs, _) = explore_policy(&p, policy, &cfg()).expect("in budget");
            assert_eq!(outs.len(), 1, "{policy:?}");
            let o = outs.first().expect("one");
            assert_eq!(o.regs, vec![vec![5, 6]]);
            assert_eq!(o.mem, vec![5, 6]);
        }
    }

    /// Fences close the relaxation: SB+mfences collapses to the SC set
    /// under every policy machine.
    #[test]
    fn fenced_sb_has_no_relaxed_outcome() {
        let p = Program::new(vec![
            thread(vec![st(0, 1), mfence(), ld(1)]),
            thread(vec![st(1, 1), mfence(), ld(0)]),
        ]);
        for policy in PolicyKind::ALL {
            let (outs, _) = explore_policy(&p, policy, &cfg()).expect("in budget");
            assert!(
                !outs.iter().any(|o| o.regs == vec![vec![0u64], vec![0u64]]),
                "{policy:?} reached the fenced-out outcome"
            );
        }
    }

    /// MP under the injected WOQ-reorder model: the TUS machine drains a
    /// non-head group and reaches the forbidden `r=[1,0]` outcome, which
    /// the diff reports as an extra outcome — `check` catches the bug
    /// deterministically, with no fuzzing luck involved.
    #[cfg(feature = "bug-woq-reorder")]
    #[test]
    fn injected_woq_reorder_is_caught_on_mp() {
        let p = Program::new(vec![
            thread(vec![st(0, 1), st(1, 1)]),
            thread(vec![ld(1), ld(0)]),
        ]);
        let report = check_program(&p, &default_addrs(&p), &cfg());
        assert_eq!(report.outcome(), CheckOutcome::Violated);
        let tus = report
            .policies
            .iter()
            .find(|pc| pc.policy == PolicyKind::Tus)
            .expect("tus checked");
        assert!(
            tus.extra.iter().any(|o| o.regs[1] == vec![1, 0]),
            "expected the MP-forbidden outcome, got {:?}",
            tus.extra
        );
        // The single-store policies are unaffected by the WOQ fault.
        for pc in &report.policies {
            if pc.policy != PolicyKind::Tus {
                assert!(pc.clean(), "{:?} flagged spuriously", pc.policy);
            }
        }
    }
}
