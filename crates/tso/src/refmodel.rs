//! Operational x86-TSO reference model.
//!
//! The machine of Owens, Sarkar & Sewell ("x86-TSO: A Rigorous and Usable
//! Programmer's Model for x86 Multiprocessors", CACM 2010): a single
//! shared memory plus one FIFO store buffer per hardware thread.
//! Non-deterministic transitions:
//!
//! * a thread executes its next instruction — a load reads the youngest
//!   matching entry of *its own* store buffer, else memory; a store
//!   appends to its buffer; a fence requires the buffer to be empty;
//! * a thread's oldest buffered store drains to memory.
//!
//! [`tso_outcomes`] enumerates every reachable final state by exhaustive
//! DFS over these transitions (with state memoization), giving the exact
//! set of TSO-allowed outcomes for small litmus programs.

use std::collections::{BTreeSet, VecDeque};

use tus_sim::FxHashSet;

use crate::prog::{LOp, Outcome, Program};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: Vec<u64>,
    pcs: Vec<usize>,
    sbs: Vec<VecDeque<(usize, u64)>>,
    obs: Vec<Vec<u64>>,
}

impl State {
    fn initial(prog: &Program) -> Self {
        State {
            mem: vec![0; prog.locations()],
            pcs: vec![0; prog.threads.len()],
            sbs: vec![VecDeque::new(); prog.threads.len()],
            obs: prog.threads.iter().map(|_| Vec::new()).collect(),
        }
    }

    fn is_final(&self, prog: &Program) -> bool {
        self.pcs
            .iter()
            .zip(&prog.threads)
            .all(|(&pc, t)| pc == t.ops.len())
            && self.sbs.iter().all(|sb| sb.is_empty())
    }

    fn outcome(&self) -> Outcome {
        Outcome {
            regs: self.obs.clone(),
            mem: self.mem.clone(),
        }
    }
}

/// Computes the exact set of x86-TSO-allowed outcomes of `prog`.
///
/// # Example
///
/// ```
/// use tus_tso::prog::dsl::*;
/// use tus_tso::{tso_outcomes, Program};
///
/// // Dekker / SB: both loads may see 0 under TSO.
/// let p = Program::new(vec![
///     thread(vec![st(0, 1), ld(1)]),
///     thread(vec![st(1, 1), ld(0)]),
/// ]);
/// let outs = tso_outcomes(&p);
/// assert!(outs.iter().any(|o| o.regs == vec![vec![0], vec![0]]));
/// ```
pub fn tso_outcomes(prog: &Program) -> BTreeSet<Outcome> {
    let mut outcomes = BTreeSet::new();
    let mut seen: FxHashSet<State> = FxHashSet::default();
    let mut stack = vec![State::initial(prog)];
    while let Some(s) = stack.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        if s.is_final(prog) {
            outcomes.insert(s.outcome());
            continue;
        }
        for t in 0..prog.threads.len() {
            // Transition 1: drain the oldest buffered store.
            if let Some(&(loc, val)) = s.sbs[t].front() {
                let mut n = s.clone();
                n.sbs[t].pop_front();
                n.mem[loc] = val;
                stack.push(n);
            }
            // Transition 2: execute the next instruction.
            let pc = s.pcs[t];
            let Some(op) = prog.threads[t].ops.get(pc) else {
                continue;
            };
            match *op {
                LOp::Store { loc, val } => {
                    let mut n = s.clone();
                    n.sbs[t].push_back((loc.0, val));
                    n.pcs[t] += 1;
                    stack.push(n);
                }
                LOp::Load { loc } => {
                    let mut n = s.clone();
                    // Read own SB (youngest entry) first, else memory.
                    let v = s.sbs[t]
                        .iter()
                        .rev()
                        .find(|&&(l, _)| l == loc.0)
                        .map(|&(_, v)| v)
                        .unwrap_or(s.mem[loc.0]);
                    n.obs[t].push(v);
                    n.pcs[t] += 1;
                    stack.push(n);
                }
                LOp::Fence => {
                    if s.sbs[t].is_empty() {
                        let mut n = s.clone();
                        n.pcs[t] += 1;
                        stack.push(n);
                    }
                }
            }
        }
    }
    outcomes
}

/// Computes the *sequentially consistent* outcomes (no store buffering) —
/// useful to demonstrate which outcomes are TSO-only relaxations.
pub fn sc_outcomes(prog: &Program) -> BTreeSet<Outcome> {
    let mut outcomes = BTreeSet::new();
    let mut seen: FxHashSet<State> = FxHashSet::default();
    let mut stack = vec![State::initial(prog)];
    while let Some(s) = stack.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        if s.is_final(prog) {
            outcomes.insert(s.outcome());
            continue;
        }
        for t in 0..prog.threads.len() {
            let pc = s.pcs[t];
            let Some(op) = prog.threads[t].ops.get(pc) else {
                continue;
            };
            let mut n = s.clone();
            match *op {
                LOp::Store { loc, val } => n.mem[loc.0] = val,
                LOp::Load { loc } => {
                    let v = n.mem[loc.0];
                    n.obs[t].push(v);
                }
                LOp::Fence => {}
            }
            n.pcs[t] += 1;
            stack.push(n);
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::dsl::*;
    use crate::prog::Program;

    fn sb() -> Program {
        Program::new(vec![
            thread(vec![st(0, 1), ld(1)]),
            thread(vec![st(1, 1), ld(0)]),
        ])
    }

    #[test]
    fn sb_allows_both_zero_under_tso_not_sc() {
        let both_zero = |outs: &BTreeSet<Outcome>| {
            outs.iter().any(|o| o.regs == vec![vec![0u64], vec![0u64]])
        };
        assert!(both_zero(&tso_outcomes(&sb())));
        assert!(!both_zero(&sc_outcomes(&sb())));
    }

    #[test]
    fn sb_with_fences_is_sc() {
        let p = Program::new(vec![
            thread(vec![st(0, 1), mfence(), ld(1)]),
            thread(vec![st(1, 1), mfence(), ld(0)]),
        ]);
        let outs = tso_outcomes(&p);
        assert!(!outs.iter().any(|o| o.regs == vec![vec![0u64], vec![0u64]]));
        assert_eq!(outs, sc_outcomes(&p));
    }

    #[test]
    fn mp_forbidden_outcome_absent() {
        // T0: x=1; y=1.  T1: r0=y; r1=x.  r0=1 && r1=0 forbidden.
        let p = Program::new(vec![
            thread(vec![st(0, 1), st(1, 1)]),
            thread(vec![ld(1), ld(0)]),
        ]);
        let outs = tso_outcomes(&p);
        assert!(!outs.iter().any(|o| o.regs[1] == vec![1, 0]));
        // But r0=0, r1=1 and others are present.
        assert!(outs.iter().any(|o| o.regs[1] == vec![0, 0]));
        assert!(outs.iter().any(|o| o.regs[1] == vec![1, 1]));
    }

    #[test]
    fn store_forwarding_n6_allowed() {
        // T0: x=1; r0=x; r1=y.  T1: y=1; x=2.
        // r0=1, r1=0 with final x=1 is TSO-allowed (reads own SB).
        let p = Program::new(vec![
            thread(vec![st(0, 1), ld(0), ld(1)]),
            thread(vec![st(1, 1), st(0, 2)]),
        ]);
        let outs = tso_outcomes(&p);
        assert!(outs
            .iter()
            .any(|o| o.regs[0] == vec![1, 0] && o.mem[0] == 1));
    }

    #[test]
    fn final_memory_reflects_drained_stores() {
        let p = Program::new(vec![thread(vec![st(0, 7), st(1, 9)])]);
        let outs = tso_outcomes(&p);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs.first().expect("one").mem, vec![7, 9]);
    }

    #[test]
    fn coherence_corr_forbidden() {
        // T0: x=1.  T1: r0=x; r1=x.  r0=1 && r1=0 forbidden (per-location
        // coherence).
        let p = Program::new(vec![
            thread(vec![st(0, 1)]),
            thread(vec![ld(0), ld(0)]),
        ]);
        let outs = tso_outcomes(&p);
        assert!(!outs.iter().any(|o| o.regs[1] == vec![1, 0]));
    }
}
