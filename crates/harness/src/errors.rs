//! Structured harness errors.
//!
//! The one-shot CLI could afford to `panic!`/`expect` its way out of bad
//! input — the process was about to exit anyway. A long-lived daemon
//! cannot: a panicking request handler is an availability bug. Every
//! failure a client request can provoke is therefore represented here as
//! a [`HarnessError`] value that travels up to the CLI/server boundary,
//! where it becomes a non-zero exit code or a structured error reply
//! frame — never a dead process.

use tus::DeadlockReport;
use tus_workloads::Workload;

/// A structured, reportable harness failure.
#[derive(Debug)]
pub enum HarnessError {
    /// A workload name that matches no built-in suite entry.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// An experiment name that matches no entry in
    /// [`crate::experiments::EXPERIMENTS`].
    UnknownExperiment {
        /// The name that failed to resolve.
        name: String,
    },
    /// A run gave up: cycle budget exhausted or the progress watchdog
    /// fired. Carries the simulator's full structured diagnostics.
    Deadlock(Box<DeadlockReport>),
    /// A simulation job panicked; the panic was caught at the worker
    /// boundary so it cannot poison shared state or kill the process.
    JobPanicked {
        /// The captured panic payload (best-effort stringification).
        what: String,
    },
    /// A malformed request or reply frame.
    Protocol {
        /// What was wrong with it.
        what: String,
    },
    /// An I/O failure talking to a peer or the filesystem.
    Io(std::io::Error),
}

impl HarnessError {
    /// Stable one-token machine-readable kind (the first line of a wire
    /// error reply; exit-code selection in the client).
    pub fn kind_token(&self) -> &'static str {
        match self {
            HarnessError::UnknownWorkload { .. } => "unknown_workload",
            HarnessError::UnknownExperiment { .. } => "unknown_experiment",
            HarnessError::Deadlock(_) => "deadlock",
            HarnessError::JobPanicked { .. } => "panic",
            HarnessError::Protocol { .. } => "protocol",
            HarnessError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::UnknownWorkload { name } => {
                writeln!(f, "unknown workload {name:?}; known workloads:")?;
                for w in tus_workloads::all_single()
                    .iter()
                    .chain(tus_workloads::parsec16().iter())
                {
                    writeln!(f, "  {}", w.name)?;
                }
                Ok(())
            }
            HarnessError::UnknownExperiment { name } => {
                write!(f, "unknown experiment {name:?}; known:")?;
                for (n, _) in crate::experiments::EXPERIMENTS {
                    write!(f, " {n}")?;
                }
                Ok(())
            }
            HarnessError::Deadlock(r) => write!(f, "{r}"),
            HarnessError::JobPanicked { what } => {
                write!(f, "simulation job panicked: {what}")
            }
            HarnessError::Protocol { what } => write!(f, "protocol error: {what}"),
            HarnessError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

impl From<Box<DeadlockReport>> for HarnessError {
    fn from(r: Box<DeadlockReport>) -> Self {
        HarnessError::Deadlock(r)
    }
}

/// Resolves a workload by name, or reports [`HarnessError::UnknownWorkload`].
///
/// Every user-supplied workload name — CLI argument or wire request —
/// goes through here, so a typo is an error value at the boundary, not a
/// `by_name(..).expect("exists")` abort deep in a worker.
pub fn workload(name: &str) -> Result<Workload, HarnessError> {
    tus_workloads::by_name(name).ok_or_else(|| HarnessError::UnknownWorkload {
        name: name.to_owned(),
    })
}

/// Best-effort stringification of a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_lookup_reports_unknown_names() {
        assert!(workload("505.mcf-like").is_ok());
        let err = workload("no-such-workload").unwrap_err();
        assert_eq!(err.kind_token(), "unknown_workload");
        let msg = err.to_string();
        assert!(msg.contains("no-such-workload"));
        // The message lists the valid names, so a typo is self-serviceable.
        assert!(msg.contains("505.mcf-like"));
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(&*s), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(&*s), "kaboom");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*s), "<non-string panic payload>");
    }
}
