//! The idle-skipping and event-driven kernels must be observationally
//! identical to the lockstep kernel on real experiment points: every
//! metric the harness ever serializes — cycles, IPC, stall fractions,
//! energy components and the full raw `StatSet` — is compared through
//! the cache's bit-exact codec (`encode_result` stores floats as their
//! IEEE-754 bits), so even a 1-ulp drift fails the test.

use tus_harness::executor::encode_result;
use tus_harness::{run, RunSpec, Scale, Tweak};
use tus_sim::{KernelKind, PolicyKind};
use tus_workloads::by_name;

/// Experiment-shaped specs: every policy, two SB sizes, a second seed,
/// a 16-core PARSEC point and an ablation tweak.
fn figure_points() -> Vec<RunSpec> {
    let short = |mut s: RunSpec| {
        s.warmup = 1_000;
        s.insts = 6_000;
        s
    };
    let w = |name: &str| by_name(name).expect("workload exists");
    let mut specs = Vec::new();
    for policy in PolicyKind::ALL {
        specs.push(short(RunSpec::new(w("502.gcc1-like"), policy, 114, Scale::Quick)));
    }
    specs.push(short(RunSpec::new(w("557.xz-like"), PolicyKind::Tus, 32, Scale::Quick)));
    specs.push(RunSpec {
        seed: 7,
        ..specs[0].clone()
    });
    let mut par = RunSpec::new(w("canneal-like"), PolicyKind::Tus, 114, Scale::Quick);
    par.warmup = 500;
    par.insts = 2_000;
    specs.push(par);
    specs.push(RunSpec {
        tweak: Some(Tweak {
            name: "no-pf-commit",
            apply: |b| {
                b.prefetch_at_commit(false);
            },
        }),
        ..specs[4].clone()
    });
    specs
}

#[test]
fn kernels_are_bit_identical_on_figure_points() {
    for (i, spec) in figure_points().into_iter().enumerate() {
        let under = |kernel| {
            let s = RunSpec { kernel, ..spec.clone() };
            // A kernel-independent key, so the encodings compare equal
            // iff every measured bit does.
            encode_result(&run(&s), "point")
        };
        let lockstep = under(KernelKind::Lockstep);
        for kernel in [KernelKind::Skip, KernelKind::Event] {
            assert_eq!(
                lockstep,
                under(kernel),
                "{kernel} kernel diverged from lockstep on point {i} ({}, {}, sb{})",
                spec.workload.name,
                spec.policy.label(),
                spec.sb_entries,
            );
        }
    }
}
