//! Result tables: aligned text rendering and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A titled table of named rows × named numeric columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// `(row label, values)` — values align with `columns`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Decimal places.
    pub precision: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([9])
            .max()
            .unwrap_or(9);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(self.precision + 4))
            .collect::<Vec<_>>();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (v, w) in vals.iter().zip(&col_w) {
                let _ = write!(out, "  {v:>w$.prec$}", prec = self.precision);
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "name");
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label}");
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `dir/<file>.csv` (creating `dir`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path, file: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{file}.csv")), self.to_csv())
    }

    /// Geometric mean per column over the current rows (appended by the
    /// caller if wanted).
    pub fn geomean_row(&self) -> Vec<f64> {
        (0..self.columns.len())
            .map(|c| tus_sim::stats::geomean(self.rows.iter().map(|(_, v)| v[c])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row2", vec![4.0, 8.0]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = t().render();
        assert!(r.contains("demo"));
        assert!(r.contains("row1"));
        assert!(r.contains("2.000"));
    }

    #[test]
    fn csv_shape() {
        let csv = t().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "name,a,b");
        assert_eq!(lines[1], "row1,1,2");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn geomean_row_per_column() {
        let g = t().geomean_row();
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        t().push("bad", vec![1.0]);
    }
}
