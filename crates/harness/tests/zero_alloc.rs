//! Proof that the steady-state simulation loop does not touch the heap.
//!
//! The dense line-state overhaul (interned `LineId`s, slab-pooled
//! directory state, recycled message payloads, scratch-buffer drain
//! loops) exists so that a warmed-up simulation allocates nothing per
//! cycle. This test pins that property with a counting global allocator:
//! after a warm-up phase that lets every pool, slab, map, and scratch
//! buffer reach its plateau, a 10 000-cycle measurement window must
//! perform **zero** heap allocations.
//!
//! The file is its own test binary (one `#[test]`) because the counting
//! allocator is process-global.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use tus::System;
use tus_cpu::trace::FnTrace;
use tus_cpu::{TraceInst, TraceSource};
use tus_sim::{Addr, PolicyKind, SimConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// An endless store-heavy workload cycling over a bounded line set, so
/// every per-line structure (interner, directory slab, cache sets, WCB
/// groups) reaches a plateau while stores keep flowing through the full
/// TUS path: SB → WCB → unauthorized L1D write → WOQ → visibility flip,
/// with evictions and DRAM traffic (the footprint exceeds the scaled
/// caches).
fn cyclic_store_trace() -> impl TraceSource {
    const LINES: u64 = 256;
    let mut n: u64 = 0;
    FnTrace(move || {
        n += 1;
        let i = n / 4;
        Some(match n % 4 {
            0 => {
                let line = (i * 7) % LINES; // stride walks the whole set
                let offset = (i % 8) * 8;
                TraceInst::store(Addr::new(line * 64 + offset), 8, n)
            }
            _ => TraceInst::alu(),
        })
    })
}

const WARMUP_CYCLES: u64 = 50_000;
const WINDOW_CYCLES: u64 = 10_000;

/// Regression ceiling on total allocations for construction plus
/// warm-up. Construction dominates (~67k: cache line boxes, queues,
/// pools growing to their plateaus); the warmed loop contributes ~0 per
/// 10k cycles. A reintroduced per-store or per-cycle allocation adds
/// 50k+ over the warm-up and trips this bound.
const TOTAL_ALLOC_BUDGET: u64 = 100_000;

#[test]
fn steady_state_tus_run_allocates_nothing() {
    let cfg = SimConfig::builder()
        .policy(PolicyKind::Tus)
        .sb_entries(56)
        .scale_caches_down(16)
        .build();
    let before_build = allocations();
    let mut sys = System::new(&cfg, vec![Box::new(cyclic_store_trace())], 42);
    for _ in 0..WARMUP_CYCLES {
        sys.tick();
    }
    let after_warmup = allocations();
    let warmup_allocs = after_warmup - before_build;
    assert!(
        warmup_allocs < TOTAL_ALLOC_BUDGET,
        "construction + {WARMUP_CYCLES}-cycle warm-up made {warmup_allocs} \
         allocations (budget {TOTAL_ALLOC_BUDGET}): a per-cycle or per-store \
         allocation crept back into the hot path"
    );
    // ---- the actual claim: a warmed-up run never touches the heap ----
    let start = allocations();
    for _ in 0..WINDOW_CYCLES {
        sys.tick();
    }
    let in_window = allocations() - start;
    assert_eq!(
        in_window, 0,
        "steady-state window of {WINDOW_CYCLES} cycles performed {in_window} \
         heap allocations; the hot path must draw from pools and scratch \
         buffers only"
    );
    // The machine must actually have been doing store work the whole
    // time, or the zero-allocation claim is vacuous.
    let stats = sys.export_stats();
    assert!(
        stats.get("core0.policy.visibility_flips") > 100.0,
        "workload failed to exercise the TUS store path: {stats}"
    );
}
