//! Functional backing store.
//!
//! [`MainMemory`] holds the authoritative copy of every line that has ever
//! been written back. Unwritten lines read as zero. The timing of DRAM is
//! modeled in the directory; this type is purely functional.

use tus_sim::{Addr, FxHashMap, LineAddr};

use crate::line::{read_value, zero_line, LineData};

/// Sparse, zero-default line-granularity memory.
///
/// # Example
///
/// ```
/// use tus_mem::MainMemory;
/// use tus_sim::{Addr, LineAddr};
///
/// let mut m = MainMemory::new();
/// let mut line = *m.read(LineAddr::new(3));
/// line[0] = 0xAB;
/// m.write(LineAddr::new(3), &line);
/// assert_eq!(m.read(LineAddr::new(3))[0], 0xAB);
/// assert_eq!(m.read_addr(Addr::new(3 * 64), 1), 0xAB);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    lines: FxHashMap<LineAddr, Box<LineData>>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        MainMemory::default()
    }

    /// Reads a line (zeros if never written).
    pub fn read(&self, line: LineAddr) -> Box<LineData> {
        self.lines
            .get(&line)
            .cloned()
            .unwrap_or_else(zero_line)
    }

    /// Copies a line into `out` (zeros if never written) — the hot-path
    /// read: no allocation.
    pub fn read_into(&self, line: LineAddr, out: &mut LineData) {
        match self.lines.get(&line) {
            Some(d) => *out = **d,
            None => *out = [0u8; tus_sim::LINE_BYTES],
        }
    }

    /// Writes a full line, in place when the line already exists.
    pub fn write(&mut self, line: LineAddr, data: &LineData) {
        match self.lines.get_mut(&line) {
            Some(d) => **d = *data,
            None => {
                self.lines.insert(line, Box::new(*data));
            }
        }
    }

    /// Reads `size` bytes at a byte address (little-endian), for test
    /// oracles and debugging.
    pub fn read_addr(&self, addr: Addr, size: usize) -> u64 {
        let data = self.read(addr.line());
        read_value(&data, addr.line_offset(), size)
    }

    /// Number of distinct lines ever written.
    pub fn footprint_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = MainMemory::new();
        assert_eq!(*m.read(LineAddr::new(99)), [0u8; 64]);
        assert_eq!(m.footprint_lines(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        let mut d = [0u8; 64];
        d[10] = 7;
        m.write(LineAddr::new(1), &d);
        assert_eq!(m.read(LineAddr::new(1))[10], 7);
        assert_eq!(m.footprint_lines(), 1);
    }

    #[test]
    fn read_addr_crosses_offsets() {
        let mut m = MainMemory::new();
        let mut d = [0u8; 64];
        d[8] = 0x34;
        d[9] = 0x12;
        m.write(LineAddr::new(0), &d);
        assert_eq!(m.read_addr(Addr::new(8), 2), 0x1234);
    }
}
