//! Experiment harness.
//!
//! One entry point per table/figure of the paper's evaluation section:
//!
//! | Entry | Paper content |
//! |---|---|
//! | [`experiments::table1`] | Table I configuration parameters |
//! | [`experiments::fig08`] | Speedup vs SB size {32,56,64,114}, all policies, per suite |
//! | [`experiments::fig09`] | SB-induced stalls (% cycles), 114-entry SB |
//! | [`experiments::fig10`] | Speedup S-curve + SB-bound breakdown vs 114-SB |
//! | [`experiments::fig11`] | Normalized EDP vs 114-SB (single-thread SB-bound) |
//! | [`experiments::fig12`] | PARSEC speedup + EDP vs 114-SB (16 cores) |
//! | [`experiments::fig13`] | Speedup S-curve + breakdown vs 32-SB |
//! | [`experiments::fig14`] | PARSEC speedup + EDP vs 32-SB |
//! | [`experiments::fig15`] | Normalized EDP vs 32-SB (single-thread SB-bound) |
//! | [`experiments::intext`] | In-text claims: SB/WOQ area & energy ratios, L1D write reduction, stall totals |
//! | [`experiments::ablation`] | Design-space sweeps: WOQ size, WCB count, atomic-group cap, lex bits, prefetch-at-commit |
//!
//! Each experiment prints an aligned table and writes a CSV under the
//! output directory. [`runner`] executes individual simulations with
//! warm-up subtraction; [`executor`] batches them — deduplicating,
//! memoizing (in process and on disk) and running them on a worker
//! pool — without changing a byte of output; [`table`] renders results.

//! The harness also runs as a long-lived daemon ([`serve`]): one warm
//! process sharing a single memoizing [`Executor`] across many clients
//! over a unix socket and/or TCP, speaking the length-prefixed frame
//! protocol of [`protocol`]. Bad requests — unknown names, malformed
//! frames, over-budget runs, even panicking simulations — come back as
//! structured [`HarnessError`] replies, never a dead process.

pub mod check_cmd;
pub mod client;
pub mod errors;
pub mod executor;
pub mod experiments;
pub mod fuzz_cmd;
pub mod protocol;
pub mod runner;
pub mod serve;
pub mod table;
pub mod trace_cmd;

pub use errors::HarnessError;
pub use executor::{ExecCounters, Executor, ResultSet};
pub use runner::{run, try_run, RunResult, RunSpec, Scale, Tweak};
pub use table::Table;
