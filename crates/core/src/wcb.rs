//! Write-combining buffers (WCBs) re-purposed for coherent stores.
//!
//! Modern cores already provide a handful of WCBs for non-temporal
//! stores; TUS (and CSB) reuse them to coalesce *coherent* stores across
//! multiple non-consecutive cache lines before writing to the L1D (paper
//! Section III-B). Each buffer holds one line's worth of data, a byte
//! mask, and a coalescing-group id (`C_ID`, `log2 N` extra bits per
//! buffer): when a store writes to an existing buffer that is not the
//! last one written, a cycle exists and the involved buffers merge into
//! one atomic group that must be written to the L1D together.

use tus_mem::{ByteMask, LineData};
use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{Addr, Cycle, LineAddr};

/// One write-combining buffer.
#[derive(Debug, Clone)]
pub struct WcbBuf {
    /// The line being coalesced.
    pub line: LineAddr,
    /// Coalesced data (masked bytes valid).
    pub data: Box<LineData>,
    /// Valid bytes.
    pub mask: ByteMask,
    /// Coalescing group id.
    pub cid: u32,
    /// Cycle the buffer was allocated (age-based flush).
    pub born: Cycle,
    /// Number of stores coalesced into this buffer.
    pub stores: u64,
}

/// The set of WCBs of one core.
///
/// # Example
///
/// ```
/// use tus::WcbSet;
/// use tus_sim::{Addr, Cycle};
///
/// let mut w = WcbSet::new(2);
/// assert!(w.write(Addr::new(0x100), 4, 7, Cycle::ZERO).is_ok());
/// assert!(w.write(Addr::new(0x104), 4, 9, Cycle::ZERO).is_ok()); // coalesces
/// assert_eq!(w.occupied(), 1);
/// assert_eq!(w.forward(Addr::new(0x100), 4), Some(7));
/// assert_eq!(w.forward(Addr::new(0x104), 4), Some(9));
/// ```
#[derive(Debug, Clone)]
pub struct WcbSet {
    bufs: Vec<Option<WcbBuf>>,
    last_written: Option<usize>,
    next_cid: u32,
    searches: u64,
    coalesced_stores: u64,
    cycle_merges: u64,
    tracer: Tracer,
    /// Retired line-data boxes awaiting reuse. Flushed buffers return
    /// their boxes here (via [`WcbSet::recycle`]) so steady-state
    /// allocate/flush cycles never touch the heap: the pool plateaus at
    /// the buffer count.
    spare: Vec<Box<LineData>>,
}

/// Why a store could not enter the WCBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcbRefusal {
    /// All buffers are in use with other lines; a group must be flushed
    /// to the L1D first.
    NeedFlush,
}

impl WcbSet {
    /// Creates `n` empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one WCB");
        WcbSet {
            bufs: vec![None; n],
            last_written: None,
            next_cid: 0,
            searches: 0,
            coalesced_stores: 0,
            cycle_merges: 0,
            tracer: Tracer::default(),
            spare: Vec::new(),
        }
    }

    /// Enables trace recording into a ring of `cap` records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Drains recorded trace events, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.take()
    }

    /// Number of buffers.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Buffers in use.
    pub fn occupied(&self) -> usize {
        self.bufs.iter().filter(|b| b.is_some()).count()
    }

    /// Whether all buffers are empty.
    pub fn is_empty(&self) -> bool {
        self.occupied() == 0
    }

    /// Immutable view of buffer `i`.
    pub fn buf(&self, i: usize) -> Option<&WcbBuf> {
        self.bufs[i].as_ref()
    }

    /// Writes a store into the WCBs: coalesces into a matching buffer,
    /// allocates a free one, or asks the caller to flush. Returns whether
    /// a *cycle* was created (the buffers' groups merged).
    ///
    /// # Errors
    ///
    /// [`WcbRefusal::NeedFlush`] when no buffer matches and none is free.
    pub fn write(
        &mut self,
        addr: Addr,
        size: usize,
        value: u64,
        now: Cycle,
    ) -> Result<bool, WcbRefusal> {
        let line = addr.line();
        if let Some(i) = self.find(line) {
            let cycle = self.last_written.is_some_and(|lw| lw != i)
                && self.bufs.iter().enumerate().any(|(j, b)| {
                    j != i && b.as_ref().is_some_and(|b| b.cid != self.bufs[i].as_ref().expect("found").cid)
                });
            let merged = if cycle {
                // All in-use buffers become one atomic group (conservative
                // reading of "the WCBs must be treated as an atomic
                // group").
                let cid = self.bufs[i].as_ref().expect("found").cid;
                for b in self.bufs.iter_mut().flatten() {
                    b.cid = cid;
                }
                self.cycle_merges += 1;
                if self.tracer.is_enabled() {
                    let size = self.group_members(cid).len() as u32;
                    self.tracer.emit(now, 0, TraceEvent::AtomicGroupMerge { group: cid, size });
                }
                true
            } else {
                false
            };
            let b = self.bufs[i].as_mut().expect("found");
            tus_mem::line::write_value(&mut b.data, addr.line_offset(), size, value);
            b.mask.set_range(addr.line_offset(), size);
            b.stores += 1;
            self.coalesced_stores += 1;
            self.last_written = Some(i);
            return Ok(merged);
        }
        if let Some(i) = self.bufs.iter().position(|b| b.is_none()) {
            let mut data = match self.spare.pop() {
                Some(mut d) => {
                    *d = [0u8; tus_sim::LINE_BYTES];
                    d
                }
                None => Box::new([0u8; tus_sim::LINE_BYTES]),
            };
            tus_mem::line::write_value(&mut data, addr.line_offset(), size, value);
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            self.bufs[i] = Some(WcbBuf {
                line,
                data,
                mask: ByteMask::range(addr.line_offset(), size),
                cid,
                born: now,
                stores: 1,
            });
            self.last_written = Some(i);
            return Ok(false);
        }
        Err(WcbRefusal::NeedFlush)
    }

    /// Finds the buffer holding `line`.
    pub fn find(&self, line: LineAddr) -> Option<usize> {
        self.bufs
            .iter()
            .position(|b| b.as_ref().is_some_and(|b| b.line == line))
    }

    /// Store-to-load forwarding search: returns the value when a buffer
    /// fully covers the access.
    pub fn forward(&mut self, addr: Addr, size: usize) -> Option<u64> {
        self.searches += 1;
        let i = self.find(addr.line())?;
        let b = self.bufs[i].as_ref().expect("found");
        if b.mask.covers(addr.line_offset(), size) {
            Some(tus_mem::line::read_value(&b.data, addr.line_offset(), size))
        } else {
            None
        }
    }

    /// Whether any buffer holds bytes overlapping the access but not
    /// covering it (the load must wait for the flush).
    pub fn partial_overlap(&self, addr: Addr, size: usize) -> bool {
        self.find(addr.line())
            .map(|i| {
                let b = self.bufs[i].as_ref().expect("found");
                b.mask.overlaps(addr.line_offset(), size)
                    && !b.mask.covers(addr.line_offset(), size)
            })
            .unwrap_or(false)
    }

    /// Indices of the buffers forming the oldest group (by allocation
    /// cycle) — the natural flush victim.
    pub fn oldest_group(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.oldest_group_into(&mut out);
        out
    }

    /// Allocation-free [`WcbSet::oldest_group`]: clears `out` and fills
    /// it with the indices of the oldest group (empty when no buffer is
    /// in use).
    pub fn oldest_group_into(&self, out: &mut Vec<usize>) {
        out.clear();
        let Some(oldest) = self
            .bufs
            .iter()
            .flatten()
            .min_by_key(|b| b.born)
            .map(|b| b.cid)
        else {
            return;
        };
        self.group_members_into(oldest, out);
    }

    /// Indices of the buffers in group `cid`.
    pub fn group_members(&self, cid: u32) -> Vec<usize> {
        let mut out = Vec::new();
        self.group_members_into(cid, &mut out);
        out
    }

    /// Appends the indices of the buffers in group `cid` to `out`.
    pub fn group_members_into(&self, cid: u32, out: &mut Vec<usize>) {
        out.extend(
            self.bufs
                .iter()
                .enumerate()
                .filter(|(_, b)| b.as_ref().is_some_and(|b| b.cid == cid))
                .map(|(i, _)| i),
        );
    }

    /// All distinct group ids currently present, oldest first.
    pub fn groups(&self) -> Vec<u32> {
        let mut v: Vec<(Cycle, u32)> = Vec::new();
        for b in self.bufs.iter().flatten() {
            match v.iter_mut().find(|(_, c)| *c == b.cid) {
                Some((born, _)) => *born = (*born).min(b.born),
                None => v.push((b.born, b.cid)),
            }
        }
        v.sort();
        v.into_iter().map(|(_, c)| c).collect()
    }

    /// Removes and returns the buffers at `indices` (after a successful
    /// flush to the L1D).
    pub fn take(&mut self, indices: &[usize]) -> Vec<WcbBuf> {
        let mut out = Vec::with_capacity(indices.len());
        self.take_into(indices, &mut out);
        out
    }

    /// Allocation-free [`WcbSet::take`]: appends the removed buffers to
    /// `out`. Pass the buffers back through [`WcbSet::recycle`] once
    /// their contents are consumed so their data boxes are reused.
    pub fn take_into(&mut self, indices: &[usize], out: &mut Vec<WcbBuf>) {
        for &i in indices {
            out.push(self.bufs[i].take().expect("taking an empty WCB"));
        }
        if self
            .last_written
            .is_some_and(|lw| self.bufs[lw].is_none())
        {
            self.last_written = None;
        }
    }

    /// Returns a flushed buffer's line-data box to the spare pool.
    pub fn recycle(&mut self, buf: WcbBuf) {
        self.spare.push(buf.data);
    }

    /// Removes the buffers at `indices` and recycles their data boxes in
    /// one step (for callers that do not need the contents).
    pub fn release(&mut self, indices: &[usize]) {
        for &i in indices {
            let b = self.bufs[i].take().expect("releasing an empty WCB");
            self.spare.push(b.data);
        }
        if self
            .last_written
            .is_some_and(|lw| self.bufs[lw].is_none())
        {
            self.last_written = None;
        }
    }

    /// Age of the oldest buffer, in cycles.
    pub fn oldest_age(&self, now: Cycle) -> u64 {
        self.bufs
            .iter()
            .flatten()
            .map(|b| now.since(b.born))
            .max()
            .unwrap_or(0)
    }

    /// Forwarding searches performed (energy model).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Stores that coalesced into an existing buffer.
    pub fn coalesced_stores(&self) -> u64 {
        self.coalesced_stores
    }

    /// Cycle merges performed.
    pub fn cycle_merges(&self) -> u64 {
        self.cycle_merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_same_line() {
        let mut w = WcbSet::new(2);
        w.write(Addr::new(0x100), 4, 0x11, Cycle::ZERO).expect("ok");
        w.write(Addr::new(0x104), 4, 0x22, Cycle::ZERO).expect("ok");
        assert_eq!(w.occupied(), 1);
        assert_eq!(w.coalesced_stores(), 1);
        assert_eq!(w.forward(Addr::new(0x100), 4), Some(0x11));
        assert_eq!(w.forward(Addr::new(0x104), 4), Some(0x22));
    }

    #[test]
    fn refuses_when_full_of_other_lines() {
        let mut w = WcbSet::new(2);
        w.write(Addr::new(0x000), 8, 1, Cycle::ZERO).expect("ok");
        w.write(Addr::new(0x100), 8, 2, Cycle::ZERO).expect("ok");
        assert_eq!(
            w.write(Addr::new(0x200), 8, 3, Cycle::ZERO),
            Err(WcbRefusal::NeedFlush)
        );
    }

    #[test]
    fn cycle_detection_on_alternating_lines() {
        // A, B, A: writing A again while B was last-written => cycle.
        let mut w = WcbSet::new(2);
        assert_eq!(w.write(Addr::new(0x000), 8, 1, Cycle::ZERO), Ok(false));
        assert_eq!(w.write(Addr::new(0x100), 8, 2, Cycle::ZERO), Ok(false));
        assert_eq!(w.write(Addr::new(0x008), 8, 3, Cycle::ZERO), Ok(true));
        assert_eq!(w.cycle_merges(), 1);
        let groups = w.groups();
        assert_eq!(groups.len(), 1, "buffers merged into one group");
        assert_eq!(w.group_members(groups[0]).len(), 2);
    }

    #[test]
    fn no_cycle_when_rewriting_last_buffer() {
        let mut w = WcbSet::new(2);
        w.write(Addr::new(0x000), 8, 1, Cycle::ZERO).expect("ok");
        assert_eq!(w.write(Addr::new(0x008), 8, 2, Cycle::ZERO), Ok(false));
        assert_eq!(w.cycle_merges(), 0);
        assert_eq!(w.groups().len(), 1);
    }

    #[test]
    fn forward_requires_full_cover() {
        let mut w = WcbSet::new(1);
        w.write(Addr::new(0x100), 4, 0xAABBCCDD, Cycle::ZERO).expect("ok");
        assert_eq!(w.forward(Addr::new(0x100), 8), None);
        assert!(w.partial_overlap(Addr::new(0x100), 8));
        assert!(!w.partial_overlap(Addr::new(0x108), 8));
        assert_eq!(w.forward(Addr::new(0x102), 2), Some(0xAABB));
    }

    #[test]
    fn oldest_group_and_take() {
        let mut w = WcbSet::new(2);
        w.write(Addr::new(0x000), 8, 1, Cycle::new(5)).expect("ok");
        w.write(Addr::new(0x100), 8, 2, Cycle::new(9)).expect("ok");
        let g = w.oldest_group();
        assert_eq!(g.len(), 1);
        let taken = w.take(&g);
        assert_eq!(taken[0].line, LineAddr::new(0));
        assert_eq!(w.occupied(), 1);
        assert_eq!(w.oldest_age(Cycle::new(20)), 11);
    }

    #[test]
    fn groups_ordered_oldest_first() {
        let mut w = WcbSet::new(3);
        w.write(Addr::new(0x200), 8, 1, Cycle::new(30)).expect("ok");
        w.write(Addr::new(0x000), 8, 2, Cycle::new(10)).expect("ok");
        w.write(Addr::new(0x100), 8, 3, Cycle::new(20)).expect("ok");
        let gs = w.groups();
        assert_eq!(gs.len(), 3);
        let first = &w.group_members(gs[0]);
        assert_eq!(w.buf(first[0]).expect("buf").line, LineAddr::new(0));
    }
}
