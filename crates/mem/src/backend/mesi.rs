//! Full-map MESI directory with the shared L3 and DRAM behind it — the
//! reference implementation of the [`CoherenceBackend`] contract.
//!
//! The directory is the coherence home for every line. It processes one
//! transaction per line at a time (an *atomic directory*): requests that
//! arrive for a busy line queue and are replayed in order when the current
//! transaction completes. Combined with per-channel FIFO delivery in
//! [`crate::net::Network`], this keeps the protocol race-free without
//! transient-state explosion, while still exercising the cross-core
//! interactions TUS cares about — most importantly, forwarded
//! invalidations that an owner may *delay* (leaving the transaction open
//! until the line becomes visible) or answer with a *relinquish* carrying
//! the old copy from its private L2 (paper Section III-C).
//!
//! Timing: network hops are charged by the interconnect; DRAM fetches add
//! the configured latency (plus queuing when more than
//! `dram_max_inflight` fetches are outstanding). The L3 acts as a latency
//! filter — lines present in the L3 array grant without the DRAM delay.
//! The L3 is kept write-through with respect to [`MainMemory`], so memory
//! always holds the last written-back data.

use std::collections::VecDeque;

use tus_sim::trace::{TraceEvent, TraceRecord, Tracer};
use tus_sim::{CoreId, Cycle, DelayQueue, LineAddr, LineId, LineInterner, Schedulable, Slab, StatSet};

use crate::backend::{CoherenceBackend, Replay};
use crate::cache::L3Cache;
use crate::line::LineData;
use crate::mainmem::MainMemory;
use crate::mesi::Mesi;
use crate::msgs::{FwdKind, Msg, ReqKind};
use crate::net::{Network, Node};

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    owner: Option<CoreId>,
    sharers: u64,
}

impl DirEntry {
    #[allow(dead_code)]
    fn sharer_count(&self) -> usize {
        self.sharers.count_ones() as usize
    }
    fn is_sharer(&self, c: CoreId) -> bool {
        self.sharers & (1u64 << c.index()) != 0
    }
    fn add_sharer(&mut self, c: CoreId) {
        self.sharers |= 1u64 << c.index();
    }
    fn remove_sharer(&mut self, c: CoreId) {
        self.sharers &= !(1u64 << c.index());
    }
    fn idle_empty(&self) -> bool {
        self.owner.is_none() && self.sharers == 0
    }
}

#[derive(Debug)]
struct Transaction {
    requester: CoreId,
    kind: ReqKind,
    prefetch: bool,
    pending_acks: usize,
    waiting_owner: bool,
    waiting_mem: bool,
    perm_only: bool,
    queued: VecDeque<(CoreId, ReqKind, bool)>,
}

impl Default for Transaction {
    fn default() -> Self {
        Transaction {
            requester: CoreId::new(0),
            kind: ReqKind::GetS,
            prefetch: false,
            pending_acks: 0,
            waiting_owner: false,
            waiting_mem: false,
            perm_only: false,
            queued: VecDeque::new(),
        }
    }
}

/// Slot index in the transaction slab meaning "no open transaction".
const NO_TRANS: u32 = u32::MAX;

/// Running counters exported into the run's [`StatSet`].
#[derive(Debug, Clone, Default)]
pub struct DirStats {
    /// GetS requests processed.
    pub gets: u64,
    /// GetM requests processed.
    pub getm: u64,
    /// Forwards (Inv/Downgrade) sent to owners.
    pub fwds: u64,
    /// Invalidations sent to sharers.
    pub invs: u64,
    /// L3 data hits.
    pub l3_hits: u64,
    /// L3 misses (DRAM fetches).
    pub l3_misses: u64,
    /// Relinquish responses received (TUS lex-order deadlock avoidance).
    pub relinquishes: u64,
    /// Dirty write-backs received.
    pub writebacks: u64,
}

/// The directory / shared-LLC home node.
///
/// Per-line state is dense: line addresses are interned into [`LineId`]s
/// at the message boundary (one hash lookup per inbound message) and the
/// sharer entries and open-transaction handles live in flat arrays
/// indexed by id. Open transactions are slots in a [`Slab`] whose free
/// list retains each slot's replay-queue capacity, so the steady-state
/// open/close churn allocates nothing.
pub struct Directory {
    cores: usize,
    lines: LineInterner,
    /// Sharer/owner state, indexed by [`LineId`].
    entries: Vec<DirEntry>,
    /// Open-transaction slab slot per line ([`NO_TRANS`] when idle).
    trans_idx: Vec<u32>,
    trans: Slab<Transaction>,
    open_trans: usize,
    l3: L3Cache,
    dram: DelayQueue<LineId>,
    dram_busy_until: Cycle,
    dram_latency: u64,
    dram_gap: u64,
    replays: VecDeque<Replay>,
    tracer: Tracer,
    /// Statistics.
    pub stats: DirStats,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Directory")
            .field("cores", &self.cores)
            .field("entries", &self.lines.len())
            .field("open_transactions", &self.open_trans)
            .finish()
    }
}

impl Directory {
    /// Creates a directory for `cores` cores with an L3 of the given
    /// geometry and DRAM latency.
    pub fn new(
        cores: usize,
        l3_sets: usize,
        l3_ways: usize,
        dram_latency: u64,
        dram_max_inflight: usize,
    ) -> Self {
        assert!(cores <= 64, "sharer bitset holds at most 64 cores");
        // A simple bandwidth model: with N permitted in-flight requests and
        // latency L, a new request can start every L/N cycles.
        let dram_gap = (dram_latency / dram_max_inflight.max(1) as u64).max(1);
        Directory {
            cores,
            lines: LineInterner::new(),
            entries: Vec::new(),
            trans_idx: Vec::new(),
            trans: Slab::new(),
            open_trans: 0,
            l3: L3Cache::new(l3_sets, l3_ways),
            dram: DelayQueue::new(),
            dram_busy_until: Cycle::ZERO,
            dram_latency,
            dram_gap,
            replays: VecDeque::new(),
            tracer: Tracer::default(),
            stats: DirStats::default(),
        }
    }

    /// Interns `line`, growing the dense per-line arrays on first touch.
    #[inline]
    fn intern(&mut self, line: LineAddr) -> LineId {
        let id = self.lines.intern(line);
        if self.entries.len() < self.lines.len() {
            self.entries.push(DirEntry::default());
            self.trans_idx.push(NO_TRANS);
        }
        id
    }

    /// The open transaction on `id`, if any.
    #[inline]
    fn tr(&self, id: LineId) -> Option<&Transaction> {
        let slot = self.trans_idx[id.index()];
        (slot != NO_TRANS).then(|| self.trans.get(slot))
    }

    /// Mutable access to the open transaction on `id`, if any.
    #[inline]
    fn tr_mut(&mut self, id: LineId) -> Option<&mut Transaction> {
        let slot = self.trans_idx[id.index()];
        (slot != NO_TRANS).then(|| self.trans.get_mut(slot))
    }

    /// Opens a transaction on `id` (reusing a warm slab slot) and returns
    /// it for field initialization. The slot's queued-replay buffer is
    /// empty but keeps its capacity from previous occupants.
    #[inline]
    fn open_transaction(&mut self, id: LineId) -> &mut Transaction {
        debug_assert_eq!(self.trans_idx[id.index()], NO_TRANS);
        let slot = self.trans.alloc();
        self.trans_idx[id.index()] = slot;
        self.open_trans += 1;
        let t = self.trans.get_mut(slot);
        debug_assert!(t.queued.is_empty());
        t
    }

    /// Arms structured L3/DRAM access tracing with a ring of `cap`
    /// records.
    pub fn trace_enable(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Drains the buffered trace records, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.take()
    }

    /// Handles one inbound message.
    pub fn handle(&mut self, msg: Msg, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        match msg {
            Msg::Req {
                core,
                line,
                kind,
                prefetch,
                // MESI has no logical clock; the field rides along as 0.
                pts: _,
            } => {
                let id = self.intern(line);
                if let Some(t) = self.tr_mut(id) {
                    t.queued.push_back((core, kind, prefetch));
                } else {
                    self.start(core, id, kind, prefetch, net, mem, now);
                }
            }
            Msg::FwdResp {
                core,
                line,
                data,
                relinquished,
                lease: _,
            } => {
                let id = self.intern(line);
                self.on_fwd_resp(core, id, data, relinquished, net, mem, now);
            }
            Msg::InvAck { core, line } => {
                let id = self.intern(line);
                self.on_inv_ack(core, id, net, mem, now);
            }
            Msg::Evict {
                core,
                line,
                data,
                lease: _,
            } => {
                let id = self.intern(line);
                self.on_evict(core, id, data, net, mem);
            }
            Msg::Grant { .. } | Msg::Fwd { .. } => {
                unreachable!("directory received a directory-originated message")
            }
        }
    }

    /// Completes DRAM fetches that are due; must be called every cycle.
    pub fn tick(&mut self, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        while let Some(id) = self.dram.pop_due(now) {
            let line = self.lines.addr(id);
            let mut data = net.alloc_data();
            mem.read_into(line, &mut data);
            self.fill_l3(line, &data);
            if self.tr(id).is_some_and(|t| t.waiting_mem) {
                if let Some(t) = self.tr_mut(id) {
                    t.waiting_mem = false;
                }
                self.grant_with_data(id, Some(data), net, now);
            } else {
                net.recycle_data(data);
            }
        }
    }

    /// Whether no transaction is open and no DRAM fetch pending (used by
    /// drain loops and tests).
    pub fn idle(&self) -> bool {
        self.open_trans == 0 && self.dram.is_empty()
    }

    /// Completion cycle of the earliest pending DRAM fetch.
    pub fn next_dram_due(&self) -> Option<Cycle> {
        self.dram.next_due()
    }

    /// Number of open transactions (watchdog diagnostics).
    pub fn open_transactions(&self) -> usize {
        self.open_trans
    }

    /// Debug description of the directory state for one line (deadlock
    /// diagnostics).
    pub fn debug_line(&self, line: LineAddr) -> String {
        let id = self.lines.get(line);
        let e = id.map(|id| &self.entries[id.index()]);
        let t = id.and_then(|id| self.tr(id));
        format!(
            "entry={:?} trans={:?}",
            e.map(|e| (e.owner, e.sharers)),
            t.map(|t| (
                t.requester,
                t.kind,
                t.pending_acks,
                t.waiting_owner,
                t.waiting_mem,
                t.queued.len()
            ))
        )
    }

    /// Exports statistics.
    pub fn export_stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("gets", self.stats.gets as f64);
        s.set("getm", self.stats.getm as f64);
        s.set("fwds", self.stats.fwds as f64);
        s.set("invs", self.stats.invs as f64);
        s.set("l3_hits", self.stats.l3_hits as f64);
        s.set("l3_misses", self.stats.l3_misses as f64);
        s.set("relinquishes", self.stats.relinquishes as f64);
        s.set("writebacks", self.stats.writebacks as f64);
        s
    }

    fn start(
        &mut self,
        core: CoreId,
        id: LineId,
        kind: ReqKind,
        prefetch: bool,
        net: &mut Network,
        mem: &mut MainMemory,
        now: Cycle,
    ) {
        debug_assert_eq!(self.trans_idx[id.index()], NO_TRANS);
        let line = self.lines.addr(id);
        // The sharer state is read here and mutated in place (through the
        // dense entry slot) at grant time — no copy-then-writeback.
        let entry = self.entries[id.index()];
        match kind {
            ReqKind::GetS => self.stats.gets += 1,
            ReqKind::GetM => self.stats.getm += 1,
        }
        // Owner present (and not the requester): forward.
        if let Some(owner) = entry.owner {
            if owner != core {
                let fwd_kind = match kind {
                    ReqKind::GetS => FwdKind::Downgrade,
                    ReqKind::GetM => FwdKind::Inv,
                };
                self.stats.fwds += 1;
                let t = self.open_transaction(id);
                t.requester = core;
                t.kind = kind;
                t.prefetch = prefetch;
                t.pending_acks = 0;
                t.waiting_owner = true;
                t.waiting_mem = false;
                t.perm_only = false;
                net.send(
                    Node::Dir,
                    Node::Core(owner),
                    now,
                    Msg::Fwd {
                        line,
                        kind: fwd_kind,
                        to_owner: true,
                    },
                );
                return;
            }
            // Redundant request from the owner itself: permission-only.
            self.send_grant(core, line, Mesi::Modified, None, kind, prefetch, net, now);
            return;
        }

        match kind {
            ReqKind::GetM => {
                let perm_only = entry.is_sharer(core);
                let mut acks = 0;
                for c in 0..self.cores {
                    let cid = CoreId::new(c as u16);
                    if cid != core && entry.is_sharer(cid) {
                        self.stats.invs += 1;
                        acks += 1;
                        net.send(
                            Node::Dir,
                            Node::Core(cid),
                            now,
                            Msg::Fwd {
                                line,
                                kind: FwdKind::Inv,
                                to_owner: false,
                            },
                        );
                    }
                }
                let t = self.open_transaction(id);
                t.requester = core;
                t.kind = kind;
                t.prefetch = prefetch;
                t.pending_acks = acks;
                t.waiting_owner = false;
                t.waiting_mem = false;
                t.perm_only = perm_only;
                if acks == 0 {
                    self.grant_after_invs(id, net, mem, now);
                }
            }
            ReqKind::GetS => {
                let t = self.open_transaction(id);
                t.requester = core;
                t.kind = kind;
                t.prefetch = prefetch;
                t.pending_acks = 0;
                t.waiting_owner = false;
                t.waiting_mem = false;
                t.perm_only = entry.is_sharer(core);
                self.fetch_then_grant(id, net, mem, now);
            }
        }
    }

    /// GetM path once all sharer invalidations are accounted for.
    fn grant_after_invs(&mut self, id: LineId, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        let perm_only = self.tr(id).expect("transaction open").perm_only;
        if perm_only {
            self.grant_with_data(id, None, net, now);
        } else {
            self.fetch_then_grant(id, net, mem, now);
        }
    }

    /// Supplies data from L3 (immediately) or DRAM (after the latency),
    /// then grants.
    fn fetch_then_grant(&mut self, id: LineId, net: &mut Network, _mem: &mut MainMemory, now: Cycle) {
        let t = self.tr(id).expect("transaction open");
        if t.perm_only && t.kind == ReqKind::GetS {
            // Requester already a sharer (e.g. redundant prefetch).
            self.grant_with_data(id, None, net, now);
            return;
        }
        let line = self.lines.addr(id);
        if let Some((set, way)) = self.l3.lookup(line) {
            self.stats.l3_hits += 1;
            self.tracer.emit(
                now,
                0,
                TraceEvent::DramAccess {
                    line: line.raw(),
                    l3_hit: true,
                },
            );
            self.l3.touch(set, way);
            let data = net.alloc_data_copy(self.l3.data(set, way));
            self.grant_with_data(id, Some(data), net, now);
        } else {
            self.stats.l3_misses += 1;
            let start = now.max(self.dram_busy_until);
            self.dram_busy_until = start + self.dram_gap;
            self.dram.push(start + self.dram_latency, id);
            let done = start + self.dram_latency;
            self.tracer.emit(
                now,
                done.since(now),
                TraceEvent::DramAccess {
                    line: line.raw(),
                    l3_hit: false,
                },
            );
            self.tr_mut(id).expect("transaction open").waiting_mem = true;
        }
    }

    /// Sends the grant for the open transaction on `line` and updates the
    /// sharing state, then replays queued requests.
    fn grant_with_data(
        &mut self,
        id: LineId,
        data: Option<Box<LineData>>,
        net: &mut Network,
        now: Cycle,
    ) {
        let line = self.lines.addr(id);
        let t = self.tr(id).expect("transaction open");
        let (requester, kind, prefetch) = (t.requester, t.kind, t.prefetch);
        let entry = &mut self.entries[id.index()];
        let state = match kind {
            ReqKind::GetM => {
                entry.owner = Some(requester);
                entry.sharers = 0;
                Mesi::Modified
            }
            ReqKind::GetS => {
                if entry.idle_empty() {
                    // Unshared: grant Exclusive.
                    entry.owner = Some(requester);
                    Mesi::Exclusive
                } else {
                    entry.add_sharer(requester);
                    Mesi::Shared
                }
            }
        };
        self.send_grant(requester, line, state, data, kind, prefetch, net, now);
        self.complete(id);
    }

    #[allow(clippy::too_many_arguments)]
    fn send_grant(
        &mut self,
        core: CoreId,
        line: LineAddr,
        state: Mesi,
        data: Option<Box<LineData>>,
        kind: ReqKind,
        prefetch: bool,
        net: &mut Network,
        now: Cycle,
    ) {
        net.send(
            Node::Dir,
            Node::Core(core),
            now,
            Msg::Grant {
                line,
                state,
                data,
                kind,
                prefetch,
                lease: None,
            },
        );
    }

    fn on_fwd_resp(
        &mut self,
        from: CoreId,
        id: LineId,
        data: Option<Box<LineData>>,
        relinquished: bool,
        net: &mut Network,
        mem: &mut MainMemory,
        now: Cycle,
    ) {
        let line = self.lines.addr(id);
        let kind = match self.tr_mut(id) {
            Some(t) => {
                t.waiting_owner = false;
                t.kind
            }
            None => {
                // Stale response (transaction aborted) — apply data, done.
                if let Some(d) = data {
                    self.write_back(line, &d, mem);
                    net.recycle_data(d);
                }
                return;
            }
        };
        if relinquished {
            self.stats.relinquishes += 1;
        }
        if let Some(d) = &data {
            self.write_back(line, d, mem);
        }
        let entry = &mut self.entries[id.index()];
        // The old owner is no longer the owner.
        entry.owner = None;
        entry.remove_sharer(from);
        match kind {
            ReqKind::GetS if !relinquished => {
                // Normal downgrade: the old owner retains a shared copy.
                entry.add_sharer(from);
            }
            _ => {}
        }
        match data {
            Some(d) => self.grant_with_data(id, Some(d), net, now),
            // The owner raced an eviction; its PutM arrived earlier on the
            // same FIFO channel, so L3/memory hold current data.
            None => self.fetch_then_grant(id, net, mem, now),
        }
    }

    fn on_inv_ack(
        &mut self,
        from: CoreId,
        id: LineId,
        net: &mut Network,
        mem: &mut MainMemory,
        now: Cycle,
    ) {
        self.entries[id.index()].remove_sharer(from);
        let Some(t) = self.tr_mut(id) else {
            return;
        };
        debug_assert!(t.pending_acks > 0, "unexpected InvAck");
        t.pending_acks -= 1;
        if t.pending_acks == 0 {
            self.grant_after_invs(id, net, mem, now);
        }
    }

    fn on_evict(
        &mut self,
        from: CoreId,
        id: LineId,
        data: Option<Box<LineData>>,
        net: &mut Network,
        mem: &mut MainMemory,
    ) {
        if let Some(d) = data {
            self.stats.writebacks += 1;
            let line = self.lines.addr(id);
            self.write_back(line, &d, mem);
            net.recycle_data(d);
        }
        let e = &mut self.entries[id.index()];
        if e.owner == Some(from) {
            e.owner = None;
        }
        e.remove_sharer(from);
    }

    /// Queues the requests that waited on the completed transaction for
    /// replay, then releases the slab slot (its replay buffer keeps its
    /// capacity for the next occupant). The memory system feeds the
    /// replays back through [`Directory::handle`] in the same cycle, which
    /// re-serializes them correctly if the first replay opens a new
    /// transaction.
    fn complete(&mut self, id: LineId) {
        let slot = self.trans_idx[id.index()];
        debug_assert_ne!(slot, NO_TRANS, "transaction open");
        self.trans_idx[id.index()] = NO_TRANS;
        self.open_trans -= 1;
        let line = self.lines.addr(id);
        let t = self.trans.get_mut(slot);
        while let Some((c, k, p)) = t.queued.pop_front() {
            self.replays.push_back(Replay {
                core: c,
                line,
                kind: k,
                prefetch: p,
                pts: 0,
            });
        }
        self.trans.release(slot);
    }

    /// Pops the oldest pending replay (filled by `complete`) — the memory
    /// system feeds each back through [`Directory::handle`] in the same
    /// cycle. Popping one at a time is order-equivalent to draining the
    /// batch: replays produced while handling one go behind the rest.
    pub fn pop_replay(&mut self) -> Option<Replay> {
        self.replays.pop_front()
    }

    /// Takes pending replays (filled by `complete`) — batch form of
    /// [`Directory::pop_replay`] for tests.
    pub fn take_replays(&mut self) -> Vec<Replay> {
        self.replays.drain(..).collect()
    }

    fn write_back(&mut self, line: LineAddr, data: &LineData, mem: &mut MainMemory) {
        mem.write(line, data);
        self.fill_l3(line, data);
    }

    fn fill_l3(&mut self, line: LineAddr, data: &LineData) {
        if let Some((set, way)) = self.l3.lookup(line) {
            *self.l3.data_mut(set, way) = *data;
            self.l3.touch(set, way);
        } else {
            // L3 is write-through w.r.t. memory, so eviction is a silent
            // drop and allocation never needs a write-back.
            let (set, way) = self.l3.insert(line);
            *self.l3.data_mut(set, way) = *data;
        }
    }
}

impl CoherenceBackend for Directory {
    fn handle(&mut self, msg: Msg, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        Directory::handle(self, msg, net, mem, now)
    }
    fn tick(&mut self, net: &mut Network, mem: &mut MainMemory, now: Cycle) {
        Directory::tick(self, net, mem, now)
    }
    fn idle(&self) -> bool {
        Directory::idle(self)
    }
    fn next_dram_due(&self) -> Option<Cycle> {
        Directory::next_dram_due(self)
    }
    fn open_transactions(&self) -> usize {
        Directory::open_transactions(self)
    }
    fn debug_line(&self, line: LineAddr) -> String {
        Directory::debug_line(self, line)
    }
    fn export_stats(&self) -> StatSet {
        Directory::export_stats(self)
    }
    fn pop_replay(&mut self) -> Option<Replay> {
        Directory::pop_replay(self)
    }
    fn trace_enable(&mut self, cap: usize) {
        Directory::trace_enable(self, cap)
    }
    fn take_trace(&mut self) -> Vec<TraceRecord> {
        Directory::take_trace(self)
    }
}

impl Schedulable for Directory {
    fn next_work(&self, now: Cycle) -> Option<Cycle> {
        // Replays are drained by the memory system within the same tick
        // they are produced, so they are normally never pending between
        // ticks; claim work defensively if any are.
        if !self.replays.is_empty() {
            return Some(now);
        }
        // Open transactions advance only on inbound messages (tracked by
        // the network) or DRAM completions; the tick itself only pops the
        // DRAM queue.
        self.dram.next_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tus_sim::SimRng;

    fn setup(cores: usize) -> (Directory, Network, MainMemory) {
        let dir = Directory::new(cores.max(3), 16, 4, 100, 4);
        let net = Network::new(cores.max(3), crate::net::NetLatency { hop: 1 }, 0, SimRng::seed(1));
        (dir, net, MainMemory::new())
    }

    /// Runs the clock forward, delivering directory-bound messages and
    /// collecting core-bound ones.
    fn pump(
        dir: &mut Directory,
        net: &mut Network,
        mem: &mut MainMemory,
        until: u64,
        cores: u16,
    ) -> Vec<(CoreId, Msg)> {
        let mut out = Vec::new();
        for t in 0..until {
            let now = Cycle::new(t);
            dir.tick(net, mem, now);
            while let Some((_src, msg)) = net.recv(Node::Dir, now) {
                dir.handle(msg, net, mem, now);
            }
            for r in dir.take_replays() {
                dir.handle(
                    Msg::Req {
                        core: r.core,
                        line: r.line,
                        kind: r.kind,
                        prefetch: r.prefetch,
                        pts: r.pts,
                    },
                    net,
                    mem,
                    now,
                );
            }
            for c in 0..cores {
                while let Some((_src, msg)) = net.recv(Node::Core(CoreId::new(c)), now) {
                    out.push((CoreId::new(c), msg));
                }
            }
        }
        out
    }

    fn req(core: u16, line: u64, kind: ReqKind) -> Msg {
        Msg::Req {
            core: CoreId::new(core),
            line: LineAddr::new(line),
            kind,
            prefetch: false,
            pts: 0,
        }
    }

    #[test]
    fn first_gets_grants_exclusive_from_dram() {
        let (mut dir, mut net, mut mem) = setup(2);
        let mut d = [0u8; 64];
        d[0] = 9;
        mem.write(LineAddr::new(5), &d);
        dir.handle(req(0, 5, ReqKind::GetS), &mut net, &mut mem, Cycle::ZERO);
        let msgs = pump(&mut dir, &mut net, &mut mem, 200, 3);
        assert_eq!(msgs.len(), 1);
        let (to, m) = &msgs[0];
        assert_eq!(*to, CoreId::new(0));
        match m {
            Msg::Grant { state, data, .. } => {
                assert_eq!(*state, Mesi::Exclusive);
                assert_eq!(data.as_ref().expect("data")[0], 9);
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(dir.stats.l3_misses, 1);
        assert!(dir.idle());
    }

    #[test]
    fn second_gets_grants_shared_from_l3() {
        let (mut dir, mut net, mut mem) = setup(2);
        dir.handle(req(0, 5, ReqKind::GetS), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        // Core 1 asks: owner is core 0 (E) -> forward downgrade.
        dir.handle(req(1, 5, ReqKind::GetS), &mut net, &mut mem, Cycle::new(200));
        let msgs = pump(&mut dir, &mut net, &mut mem, 300, 3);
        assert!(matches!(
            &msgs[..],
            [(c, Msg::Fwd { kind: FwdKind::Downgrade, to_owner: true, .. })] if *c == CoreId::new(0)
        ));
        assert_eq!(dir.stats.fwds, 1);
    }

    #[test]
    fn getm_invalidates_sharers_then_grants_perm_only() {
        let (mut dir, mut net, mut mem) = setup(3);
        // Make cores 0 and 1 sharers, then let core 0 upgrade.
        dir.handle(req(0, 7, ReqKind::GetS), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        // Owner(E)=core0; core1 GetS forwards; have core0 answer.
        dir.handle(req(1, 7, ReqKind::GetS), &mut net, &mut mem, Cycle::new(200));
        let msgs = pump(&mut dir, &mut net, &mut mem, 210, 3);
        assert_eq!(msgs.len(), 1); // the Fwd
        dir.handle(
            Msg::FwdResp {
                core: CoreId::new(0),
                line: LineAddr::new(7),
                data: Some(Box::new([3u8; 64])),
                relinquished: false,
                lease: None,
            },
            &mut net,
            &mut mem,
            Cycle::new(210),
        );
        let msgs = pump(&mut dir, &mut net, &mut mem, 400, 3);
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(1)
            && matches!(m, Msg::Grant { state: Mesi::Shared, .. })));
        // Now core 0 (a sharer) upgrades: core 1 must get an Inv; grant is
        // permission-only.
        dir.handle(req(0, 7, ReqKind::GetM), &mut net, &mut mem, Cycle::new(400));
        let msgs = pump(&mut dir, &mut net, &mut mem, 410, 3);
        assert!(matches!(
            &msgs[..],
            [(c, Msg::Fwd { kind: FwdKind::Inv, to_owner: false, .. })] if *c == CoreId::new(1)
        ));
        dir.handle(
            Msg::InvAck {
                core: CoreId::new(1),
                line: LineAddr::new(7),
            },
            &mut net,
            &mut mem,
            Cycle::new(410),
        );
        let msgs = pump(&mut dir, &mut net, &mut mem, 500, 3);
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(0)
            && matches!(m, Msg::Grant { state: Mesi::Modified, data: None, .. })));
        assert!(dir.idle());
    }

    #[test]
    fn requests_to_busy_line_queue_and_replay() {
        let (mut dir, mut net, mut mem) = setup(2);
        dir.handle(req(0, 9, ReqKind::GetM), &mut net, &mut mem, Cycle::ZERO);
        // Second request while the first is fetching from DRAM.
        dir.handle(req(1, 9, ReqKind::GetM), &mut net, &mut mem, Cycle::new(1));
        assert_eq!(dir.open_transactions(), 1);
        let msgs = pump(&mut dir, &mut net, &mut mem, 150, 3);
        // Core 0 granted M, then the replayed request forwards an Inv to
        // core 0 on behalf of core 1.
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(0)
            && matches!(m, Msg::Grant { state: Mesi::Modified, .. })));
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(0)
            && matches!(m, Msg::Fwd { kind: FwdKind::Inv, to_owner: true, .. })));
    }

    #[test]
    fn relinquished_gets_leaves_old_owner_without_copy() {
        let (mut dir, mut net, mut mem) = setup(2);
        dir.handle(req(0, 11, ReqKind::GetM), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        dir.handle(req(1, 11, ReqKind::GetS), &mut net, &mut mem, Cycle::new(200));
        pump(&mut dir, &mut net, &mut mem, 210, 3);
        dir.handle(
            Msg::FwdResp {
                core: CoreId::new(0),
                line: LineAddr::new(11),
                data: Some(Box::new([5u8; 64])),
                relinquished: true,
                lease: None,
            },
            &mut net,
            &mut mem,
            Cycle::new(210),
        );
        let msgs = pump(&mut dir, &mut net, &mut mem, 400, 3);
        // Relinquished: old owner keeps nothing, so the requester is alone
        // and gets Exclusive.
        assert!(msgs.iter().any(|(c, m)| *c == CoreId::new(1)
            && matches!(m, Msg::Grant { state: Mesi::Exclusive, .. })));
        assert_eq!(dir.stats.relinquishes, 1);
    }

    #[test]
    fn evict_with_data_updates_memory() {
        let (mut dir, mut net, mut mem) = setup(1);
        dir.handle(req(0, 13, ReqKind::GetM), &mut net, &mut mem, Cycle::ZERO);
        pump(&mut dir, &mut net, &mut mem, 200, 3);
        dir.handle(
            Msg::Evict {
                core: CoreId::new(0),
                line: LineAddr::new(13),
                data: Some(Box::new([0x77u8; 64])),
                lease: None,
            },
            &mut net,
            &mut mem,
            Cycle::new(200),
        );
        assert_eq!(mem.read(LineAddr::new(13))[0], 0x77);
        assert_eq!(dir.stats.writebacks, 1);
        // Next GetS hits L3, no DRAM.
        let misses = dir.stats.l3_misses;
        dir.handle(req(0, 13, ReqKind::GetS), &mut net, &mut mem, Cycle::new(201));
        let msgs = pump(&mut dir, &mut net, &mut mem, 300, 3);
        assert!(msgs
            .iter()
            .any(|(_, m)| matches!(m, Msg::Grant { state: Mesi::Exclusive, .. })));
        assert_eq!(dir.stats.l3_misses, misses);
    }
}
