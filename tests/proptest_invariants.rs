//! Randomized-property tests over the core data structures and, at the
//! top, randomized end-to-end value checking of the full simulator
//! against a sequential oracle.
//!
//! The inputs are generated with the workspace's own deterministic
//! [`SimRng`] (the registry is unreachable offline, so no external
//! property-testing framework): every case is seeded, so a failure
//! message's seed reproduces the exact input.

use tus::{AuthorizationUnit, ConflictDecision, WcbSet, Woq};
use tus_mem::line::{combine, read_value, write_value};
use tus_mem::ByteMask;
use tus_sim::{Addr, Cycle, LineAddr, SimRng};

/// Byte-mask range bookkeeping is exact.
#[test]
fn mask_covers_exactly_what_was_set() {
    for seed in 0..200u64 {
        let mut rng = SimRng::seed(seed);
        let mut m = ByteMask::EMPTY;
        let mut model = [false; 64];
        for _ in 0..rng.index(10) {
            let off = rng.index(64);
            let len = (1 + rng.index(7)).min(64 - off);
            m.set_range(off, len);
            for b in model.iter_mut().skip(off).take(len) {
                *b = true;
            }
        }
        for i in 0..64 {
            assert_eq!(m.covers(i, 1), model[i], "seed {seed}, byte {i}");
        }
        assert_eq!(
            m.count() as usize,
            model.iter().filter(|&&b| b).count(),
            "seed {seed}"
        );
    }
}

/// combine() is exactly a masked byte-wise select.
#[test]
fn combine_selects_masked_bytes() {
    for seed in 0..200u64 {
        let mut rng = SimRng::seed(seed);
        let mask_bits = rng.bits();
        let a = rng.range(0, 256) as u8;
        let b = rng.range(0, 256) as u8;
        let base = [a; 64];
        let written = [b; 64];
        let mut out = base;
        combine(&mut out, &written, ByteMask(mask_bits));
        for (i, &v) in out.iter().enumerate() {
            let expect = if mask_bits & (1 << i) != 0 { b } else { a };
            assert_eq!(v, expect, "seed {seed}, byte {i}");
        }
    }
}

/// Line read/write round-trips at any alignment and size.
#[test]
fn line_value_roundtrip() {
    for seed in 0..200u64 {
        let mut rng = SimRng::seed(seed);
        let off = rng.index(57);
        let size = 1 + rng.index(7);
        let val = rng.bits();
        let mut d = [0u8; 64];
        write_value(&mut d, off, size, val);
        let mask = if size >= 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
        assert_eq!(read_value(&d, off, size), val & mask, "seed {seed}");
    }
}

/// WOQ: entries pop in FIFO group order, each exactly once, and
/// merge_to_tail preserves the entry count while making membership
/// transitively closed.
#[test]
fn woq_fifo_and_merge_invariants() {
    for seed in 0..150u64 {
        let mut rng = SimRng::seed(seed);
        let mut w = Woq::new(64);
        let mut pushed = 0usize;
        for _ in 0..(1 + rng.index(59)) {
            let op = rng.index(3) as u8;
            let arg = rng.index(16);
            match op {
                0 if !w.is_full() => {
                    w.push(LineAddr::new(pushed as u64), pushed % 64, pushed % 12, ByteMask::FULL);
                    pushed += 1;
                }
                1 if !w.is_empty() => {
                    let idx = arg % w.len();
                    w.merge_to_tail(idx);
                    // After a merge, every group present appears as one
                    // contiguous-by-membership class: merged_size of the
                    // merge point equals the count of its group members.
                    let g = w.entry(idx).group;
                    let members = w.iter().filter(|e| e.group == g).count();
                    assert!(members >= w.len() - idx, "seed {seed}");
                }
                2 if !w.is_empty() => {
                    // Ready the whole head group and pop it.
                    let g = w.head_group().expect("nonempty");
                    let coords: Vec<_> = w
                        .iter()
                        .filter(|e| e.group == g)
                        .map(|e| (e.set, e.way))
                        .collect();
                    for (s, wy) in coords {
                        w.mark_ready(s, wy);
                    }
                    assert!(w.head_group_ready(), "seed {seed}");
                    let popped = w.pop_head_group();
                    assert!(!popped.is_empty(), "seed {seed}");
                    assert!(popped.iter().all(|e| e.group == g), "seed {seed}");
                    assert!(w.iter().all(|e| e.group != g), "seed {seed}");
                }
                _ => {}
            }
        }
    }
}

/// Authorization unit: the decision is exactly "delay iff the core is
/// ready on every older-or-same-group entry with lex ≤ the target's",
/// under the *total* lex order (sub-address ties broken by the full
/// line address).
#[test]
fn auth_unit_decision_matches_definition() {
    for seed in 0..200u64 {
        let mut rng = SimRng::seed(seed);
        let n = 1 + rng.index(19);
        let lines: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.range(0, 32), rng.chance(0.5)))
            .collect();
        let target = rng.index(n);
        let lex_bits = 1 + rng.index(7) as u32;
        let unit = AuthorizationUnit::new(lex_bits);
        let mut w = Woq::new(64);
        for (i, (line, ready)) in lines.iter().enumerate() {
            w.push(LineAddr::new(*line), i, 0, ByteMask::FULL);
            if *ready {
                w.mark_ready(i, 0);
            }
        }
        // The target must be ready (a conflict implies held permission).
        w.mark_ready(target, 0);
        let got = unit.decide(&w, target);
        let tl = unit.total_lex(w.entry(target).line);
        let tg = w.entry(target).group;
        let expect_delay = w.iter().enumerate().all(|(i, e)| {
            let relevant = i <= target || e.group == tg;
            !relevant || unit.total_lex(e.line) > tl || e.ready
        });
        assert_eq!(got == ConflictDecision::Delay, expect_delay, "seed {seed}");
    }
}

/// WCB forwarding returns exactly the bytes of the latest coalesced
/// stores.
#[test]
fn wcb_forwarding_matches_model() {
    for seed in 0..150u64 {
        let mut rng = SimRng::seed(seed);
        let mut w = WcbSet::new(4);
        let mut model = std::collections::HashMap::<u64, u8>::new();
        let base = 0x4000u64;
        for i in 0..(1 + rng.index(29)) {
            // Two lines' worth of slots, 8-byte aligned so sizes fit.
            let slot = rng.range(0, 16);
            let size = 1 + rng.index(7);
            let val = rng.bits();
            let addr = base + slot * 8;
            if w.write(Addr::new(addr), size, val, Cycle::new(i as u64)).is_ok() {
                for b in 0..size {
                    model.insert(addr + b as u64, val.to_le_bytes()[b]);
                }
            }
        }
        for slot in 0..16u64 {
            let addr = base + slot * 8;
            if let Some(v) = w.forward(Addr::new(addr), 8) {
                // Full-cover hit: every byte must match the model.
                for b in 0..8u64 {
                    let expect = model.get(&(addr + b)).copied();
                    assert_eq!(
                        Some(v.to_le_bytes()[b as usize]),
                        expect,
                        "seed {seed}, byte {b}"
                    );
                }
            }
        }
    }
}

/// End-to-end randomized check: a random single-core program under
/// TUS returns sequential values (slow — few cases).
#[test]
fn full_system_matches_sequential_oracle() {
    use tus::System;
    use tus_cpu::{TraceInst, VecTrace};
    use tus_sim::{PolicyKind, SimConfig};

    for seed in (0..5000u64).step_by(417) {
        let mut rng = SimRng::seed(seed);
        let mut insts = Vec::new();
        let mut expected = Vec::new();
        let mut mem = std::collections::HashMap::<u64, u64>::new();
        for i in 0..250u64 {
            let a = 0xA_0000 + rng.range(0, 16) * 8;
            if rng.chance(0.5) {
                mem.insert(a, i + 1);
                insts.push(TraceInst::store(Addr::new(a), 8, i + 1));
            } else {
                expected.push(mem.get(&a).copied().unwrap_or(0));
                insts.push(TraceInst::load(Addr::new(a), 8));
            }
        }
        let cfg = SimConfig::builder()
            .policy(PolicyKind::Tus)
            .sb_entries(8)
            .scale_caches_down(64)
            .build();
        let mut sys = System::new(&cfg, vec![Box::new(VecTrace::new(insts))], seed);
        sys.core_mut(0).record_loads(true);
        sys.run_to_completion(5_000_000);
        assert_eq!(sys.core(0).loaded_values(), &expected[..], "seed {seed}");
    }
}
