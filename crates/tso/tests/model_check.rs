//! Oracle and soundness tests for the bounded model checker.
//!
//! Three legs, mirroring how much trust `tus-harness check` deserves:
//!
//! 1. **Litmus oracles** — on SB, MP, LB and IRIW the enumerated
//!    reachable set of *every* policy must equal the known x86-TSO
//!    outcome set, written out here by hand (not read back from
//!    `refmodel`, which the explorer is diffed against elsewhere — an
//!    independent bug in both would otherwise cancel out).
//! 2. **Seeded-fuzz cross-check** — on random generator programs, every
//!    outcome the sampling fuzzer's simulator runs observe must lie
//!    inside the explorer's enumerated set: exhaustive ⊇ sampled.
//! 3. **Pruning soundness** — store-buffer reduction and lazy-TSO are
//!    exploration optimizations; with them on vs. off the enumerated
//!    sets must be identical on 50 random small programs.

use std::collections::BTreeSet;

use tus_sim::{CoherenceKind, KernelKind, PolicyKind, SimRng};
use tus_tso::check::{explore_policy, CheckConfig};
use tus_tso::conformance::try_run_once_matrix;
use tus_tso::fuzz::generate_case;
use tus_tso::litmus::all_litmus_tests;
use tus_tso::prog::{Outcome, Program};
use tus_tso::RunVerdict;

/// The litmus library's program for `name`.
fn litmus_program(name: &str) -> Program {
    all_litmus_tests()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("litmus test {name} in the library"))
        .program
}

/// Bounds wide enough for the 4-thread IRIW oracle; model-only (the
/// simulator cross-check has its own leg below).
fn cfg() -> CheckConfig {
    CheckConfig { max_threads: 4, sim_seeds: 0, ..CheckConfig::default() }
}

/// Asserts every policy's enumerated set equals `expected` exactly.
///
/// The oracle tests below carry
/// `cfg_attr(feature = "bug-woq-reorder", ignore)`: under fault
/// injection the TUS machine deliberately reaches MP's forbidden
/// outcome, and *catching* that divergence is the injected-bug CI
/// job's assertion (`tus-harness check --litmus MP` must exit 1), not
/// a failure of these tests.
fn assert_exact(name: &str, expected: &BTreeSet<Outcome>) {
    let prog = litmus_program(name);
    for policy in PolicyKind::ALL {
        let (got, _) = explore_policy(&prog, policy, &cfg())
            .unwrap_or_else(|b| panic!("{name}/{}: {b}", policy.label()));
        assert_eq!(
            &got,
            expected,
            "{name} under {}: enumerated set diverges from the hand-written TSO oracle",
            policy.label()
        );
    }
}

fn outcome(regs: Vec<Vec<u64>>, mem: Vec<u64>) -> Outcome {
    Outcome { regs, mem }
}

/// SB (Dekker): both stores always land; each thread's single load may
/// read 0 or 1 independently — all four combinations are TSO-allowed.
#[test]
#[cfg_attr(feature = "bug-woq-reorder", ignore = "fault injection makes TUS diverge by design")]
fn sb_oracle_exact_set() {
    let mut expected = BTreeSet::new();
    for a in 0..=1u64 {
        for b in 0..=1u64 {
            expected.insert(outcome(vec![vec![a], vec![b]], vec![1, 1]));
        }
    }
    assert_eq!(expected.len(), 4);
    assert_exact("SB", &expected);
}

/// MP (message passing): once the flag (`x1`) reads 1 the data (`x0`)
/// must read 1 — `[1, 0]` is the one forbidden combination.
#[test]
#[cfg_attr(feature = "bug-woq-reorder", ignore = "fault injection makes TUS diverge by design")]
fn mp_oracle_exact_set() {
    let mut expected = BTreeSet::new();
    for flag in 0..=1u64 {
        for data in 0..=1u64 {
            if flag == 1 && data == 0 {
                continue;
            }
            expected.insert(outcome(vec![vec![], vec![flag, data]], vec![1, 1]));
        }
    }
    assert_eq!(expected.len(), 3);
    assert_exact("MP", &expected);
}

/// LB (load buffering): loads never read from the future, so both loads
/// observing 1 is forbidden; the other three combinations are allowed.
#[test]
#[cfg_attr(feature = "bug-woq-reorder", ignore = "fault injection makes TUS diverge by design")]
fn lb_oracle_exact_set() {
    let mut expected = BTreeSet::new();
    for a in 0..=1u64 {
        for b in 0..=1u64 {
            if a == 1 && b == 1 {
                continue;
            }
            expected.insert(outcome(vec![vec![a], vec![b]], vec![1, 1]));
        }
    }
    assert_eq!(expected.len(), 3);
    assert_exact("LB", &expected);
}

/// IRIW: the two readers must agree on the order of the two independent
/// writes — of the 16 load combinations only the contradictory pair
/// (T2 sees x0 before x1, T3 sees x1 before x0) is forbidden.
#[test]
#[cfg_attr(feature = "bug-woq-reorder", ignore = "fault injection makes TUS diverge by design")]
fn iriw_oracle_exact_set() {
    let mut expected = BTreeSet::new();
    for a in 0..=1u64 {
        for b in 0..=1u64 {
            for c in 0..=1u64 {
                for d in 0..=1u64 {
                    if a == 1 && b == 0 && c == 1 && d == 0 {
                        continue;
                    }
                    expected.insert(outcome(
                        vec![vec![], vec![], vec![a, b], vec![c, d]],
                        vec![1, 1],
                    ));
                }
            }
        }
    }
    assert_eq!(expected.len(), 15);
    assert_exact("IRIW", &expected);
}

/// A generator case within the default check bounds, rejection-sampled
/// like `tus-harness check --fuzz` does.
fn bounded_case(base_seed: u64, skip: &mut u64) -> tus_tso::fuzz::FuzzCase {
    loop {
        let mut rng = SimRng::seed(base_seed).fork(skip.wrapping_add(1));
        *skip += 1;
        let case = generate_case(&mut rng);
        if case.program.threads.len() <= 3 && case.program.ops() <= 8 {
            return case;
        }
    }
}

/// Exhaustive ⊇ sampled: every outcome the real simulator produces on a
/// random program (any policy, several timing seeds) is in the
/// explorer's enumerated set for that policy.
#[test]
fn explorer_set_contains_every_fuzzer_observation() {
    let cfg = CheckConfig { sim_seeds: 0, ..CheckConfig::default() };
    let mut skip = 0;
    for _ in 0..8 {
        let case = bounded_case(11, &mut skip);
        for policy in PolicyKind::ALL {
            let (enumerated, _) = explore_policy(&case.program, policy, &cfg)
                .unwrap_or_else(|b| panic!("in-bound program exceeded a bound: {b}"));
            for seed in 0..6 {
                match try_run_once_matrix(
                    &case.program,
                    &case.addrs,
                    policy,
                    seed,
                    KernelKind::default(),
                    CoherenceKind::default(),
                ) {
                    RunVerdict::Outcome(o) => assert!(
                        enumerated.contains(&o),
                        "policy {} seed {seed}: simulator outcome {o} escapes the \
                         enumerated set of\n{}",
                        policy.label(),
                        case
                    ),
                    other => panic!("simulator failed to produce an outcome: {other:?}"),
                }
            }
        }
    }
}

/// Store-buffer reduction and lazy-TSO change how much is explored,
/// never what is reachable: on 50 random small programs the enumerated
/// sets with both prunings on and both off are identical (and the
/// prunings actually engage somewhere across the batch).
#[test]
fn prunings_are_outcome_preserving_on_random_programs() {
    let pruned_cfg = CheckConfig { sim_seeds: 0, ..CheckConfig::default() };
    let exhaustive_cfg =
        CheckConfig { reduction: false, lazy: false, sim_seeds: 0, ..CheckConfig::default() };
    let mut skip = 0;
    let (mut total_pruned, mut total_levels) = (0u64, 0u32);
    for i in 0..50 {
        let case = bounded_case(23, &mut skip);
        for policy in PolicyKind::ALL {
            let (fast, stats) = explore_policy(&case.program, policy, &pruned_cfg)
                .unwrap_or_else(|b| panic!("program {i} (pruned): {b}"));
            let (slow, _) = explore_policy(&case.program, policy, &exhaustive_cfg)
                .unwrap_or_else(|b| panic!("program {i} (exhaustive): {b}"));
            assert_eq!(
                fast, slow,
                "program {i} under {}: prunings changed the reachable set of\n{}",
                policy.label(),
                case
            );
            total_pruned += stats.pruned;
            total_levels = total_levels.max(stats.levels);
        }
    }
    assert!(total_pruned > 0, "the reduction never engaged across 50 programs");
    assert!(total_levels >= 2, "lazy deepening never went past SC across 50 programs");
}
