//! `tus-harness` — regenerate the paper's tables and figures.
//!
//! ```text
//! tus-harness <experiment> [--quick|--full] [--seed N] [--out DIR]
//!             [--parallel-cap N]
//!
//! experiments: table1 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15
//!              intext ablation all
//! ```

use tus_harness::experiments::{self, Options};
use tus_harness::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: tus-harness <experiment> [--quick|--full] [--seed N] [--out DIR] [--parallel-cap N]\n\
         experiments: table1 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 intext ablation all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opt = Options::default();
    let mut cmd = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opt.scale = Scale::Quick,
            "--full" => opt.scale = Scale::Full,
            "--seed" => {
                opt.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => opt.out = it.next().unwrap_or_else(|| usage()).into(),
            "--parallel-cap" => {
                opt.parallel_cap = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            c if cmd.is_none() && !c.starts_with('-') => cmd = Some(c.to_owned()),
            _ => usage(),
        }
    }
    let started = std::time::Instant::now();
    match cmd.as_deref() {
        Some("table1") => experiments::table1(&opt),
        Some("fig08") => experiments::fig08(&opt),
        Some("fig09") => experiments::fig09(&opt),
        Some("fig10") => experiments::fig10(&opt),
        Some("fig11") => experiments::fig11(&opt),
        Some("fig12") => experiments::fig12(&opt),
        Some("fig13") => experiments::fig13(&opt),
        Some("fig14") => experiments::fig14(&opt),
        Some("fig15") => experiments::fig15(&opt),
        Some("intext") => experiments::intext(&opt),
        Some("ablation") => experiments::ablation(&opt),
        Some("all") => experiments::all(&opt),
        _ => usage(),
    }
    eprintln!("[{:.1}s]", started.elapsed().as_secs_f64());
}
