//! Benchmark support for the TUS reproduction.
//!
//! The actual Criterion benchmarks live under `benches/`:
//!
//! * `figures` — one benchmark per paper table/figure, running the same
//!   experiment code as `tus-harness` at smoke-test scale so `cargo
//!   bench` regenerates every result quickly and tracks simulator
//!   performance over time.
//! * `microbench` — hot-path microbenchmarks: WOQ search/merge, WCB
//!   coalescing, SB forwarding, litmus enumeration, and raw simulation
//!   throughput per policy.
//!
//! This library exposes the shared helpers.

use tus_harness::{run, RunResult, RunSpec, Scale};
use tus_sim::PolicyKind;

/// Runs one short measurement of `workload` under `policy` (shared by the
/// benches).
pub fn short_run(workload: &str, policy: PolicyKind, sb: usize, insts: u64) -> RunResult {
    let w = tus_workloads::by_name(workload).expect("workload exists");
    let spec = RunSpec {
        warmup: 0,
        insts,
        ..RunSpec::new(w, policy, sb, Scale::Quick)
    };
    run(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_completes() {
        let r = short_run("502.gcc1-like", PolicyKind::Tus, 114, 5_000);
        assert!(r.cycles > 0.0);
    }
}
